//! The common output type of all generators.

use srpq_common::{LabelInterner, StreamTuple};

/// A generated streaming graph: an ordered tuple sequence plus the label
/// vocabulary it speaks.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name ("so", "ldbc", "yago", "gmark").
    pub name: String,
    /// Streaming graph tuples in non-decreasing timestamp order.
    pub tuples: Vec<StreamTuple>,
    /// Label vocabulary (Σ).
    pub labels: LabelInterner,
    /// Upper bound on vertex ids used (vertex id space is `0..n_vertices`).
    pub n_vertices: u32,
}

impl Dataset {
    /// Validates the stream invariants: timestamps non-decreasing,
    /// vertex ids within bounds, labels interned.
    pub fn validate(&self) -> Result<(), String> {
        let mut last = i64::MIN;
        for (i, t) in self.tuples.iter().enumerate() {
            if t.ts.0 < last {
                return Err(format!("tuple {i} goes back in time"));
            }
            last = t.ts.0;
            if t.edge.src.0 >= self.n_vertices || t.edge.dst.0 >= self.n_vertices {
                return Err(format!("tuple {i} vertex out of range"));
            }
            if self.labels.resolve(t.label).is_none() {
                return Err(format!("tuple {i} label not interned"));
            }
        }
        Ok(())
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Timestamp span `(first, last)` of the stream, if non-empty.
    pub fn time_span(&self) -> Option<(i64, i64)> {
        match (self.tuples.first(), self.tuples.last()) {
            (Some(a), Some(b)) => Some((a.ts.0, b.ts.0)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srpq_common::{Label, Timestamp, VertexId};

    #[test]
    fn validate_catches_time_travel() {
        let mut labels = LabelInterner::new();
        let a = labels.intern("a");
        let ds = Dataset {
            name: "bad".into(),
            tuples: vec![
                StreamTuple::insert(Timestamp(5), VertexId(0), VertexId(1), a),
                StreamTuple::insert(Timestamp(4), VertexId(0), VertexId(1), a),
            ],
            labels,
            n_vertices: 2,
        };
        assert!(ds.validate().is_err());
    }

    #[test]
    fn validate_catches_unknown_label() {
        let labels = LabelInterner::new();
        let ds = Dataset {
            name: "bad".into(),
            tuples: vec![StreamTuple::insert(
                Timestamp(1),
                VertexId(0),
                VertexId(1),
                Label(7),
            )],
            labels,
            n_vertices: 2,
        };
        assert!(ds.validate().is_err());
    }

    #[test]
    fn span_and_len() {
        let mut labels = LabelInterner::new();
        let a = labels.intern("a");
        let ds = Dataset {
            name: "ok".into(),
            tuples: vec![
                StreamTuple::insert(Timestamp(1), VertexId(0), VertexId(1), a),
                StreamTuple::insert(Timestamp(9), VertexId(1), VertexId(0), a),
            ],
            labels,
            n_vertices: 2,
        };
        ds.validate().unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.time_span(), Some((1, 9)));
    }
}
