//! LDBC SNB-like update stream.
//!
//! The LDBC Social Network Benchmark update stream (§5.1.2) interleaves
//! person and message activity. The property the paper leans on is the
//! *heterogeneous schema*: persons `knows` persons and comments
//! `replyOf` messages are the only recursive relations, while `likes`
//! and `hasCreator` cross entity types — so Kleene-starred labels only
//! traverse two sub-graphs and trees stay small (LDBC is the paper's
//! fastest dataset in Figure 4).
//!
//! The simulation maintains person / post / comment populations and
//! emits events with an LDBC-flavoured mix:
//!
//! * `add person` (rare) — joins the `knows` graph with a few edges;
//! * `add post` — author `hasCreator` edge;
//! * `add comment` — `replyOf` a recent message + `hasCreator`;
//! * `like` — person `likes` a recent message;
//! * `new friendship` — `knows` edge between persons (both directions,
//!   as LDBC's knows is symmetric).

use crate::dataset::Dataset;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srpq_common::{LabelInterner, StreamTuple, Timestamp, VertexId};

/// Configuration for the LDBC-like generator.
#[derive(Debug, Clone)]
pub struct LdbcConfig {
    /// Number of update events to emit (each event produces 1–3 tuples).
    pub n_events: usize,
    /// Initial number of persons.
    pub seed_persons: u32,
    /// Total time span of the stream.
    pub duration: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LdbcConfig {
    fn default() -> Self {
        LdbcConfig {
            n_events: 25_000,
            seed_persons: 500,
            duration: 100_000,
            seed: 0x1dbc,
        }
    }
}

/// Generates the stream.
pub fn generate(cfg: &LdbcConfig) -> Dataset {
    assert!(cfg.seed_persons >= 2);
    assert!(cfg.n_events > 0);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut labels = LabelInterner::new();
    let knows = labels.intern("knows");
    let reply_of = labels.intern("replyOf");
    let has_creator = labels.intern("hasCreator");
    let likes = labels.intern("likes");

    let mut next_vertex: u32 = 0;
    let fresh = |next: &mut u32| {
        let v = *next;
        *next += 1;
        VertexId(v)
    };
    let mut persons: Vec<VertexId> = (0..cfg.seed_persons)
        .map(|_| fresh(&mut next_vertex))
        .collect();
    // Messages = posts + comments; comments can reply to either.
    let mut messages: Vec<VertexId> = Vec::new();

    let mut tuples = Vec::with_capacity(cfg.n_events * 2);
    let mut now = 0i64;
    let mean_gap = (cfg.duration as f64 / cfg.n_events as f64).max(0.0);

    // Recent-biased pick: LDBC activity clusters on recent content.
    fn pick_recent<R: Rng>(rng: &mut R, pool: &[VertexId]) -> VertexId {
        debug_assert!(!pool.is_empty());
        let n = pool.len();
        let window = (n / 4).max(1);
        pool[n - 1 - rng.gen_range(0..window)]
    }

    for _ in 0..cfg.n_events {
        now += rng.gen_range(0.0..=2.0 * mean_gap) as i64;
        let ts = Timestamp(now);
        let roll: f64 = rng.gen();
        if roll < 0.05 {
            // New person joins and befriends a couple of members.
            let p = fresh(&mut next_vertex);
            let n_friends = rng.gen_range(1..=3usize);
            for _ in 0..n_friends {
                let q = persons[rng.gen_range(0..persons.len())];
                if q != p {
                    tuples.push(StreamTuple::insert(ts, p, q, knows));
                    tuples.push(StreamTuple::insert(ts, q, p, knows));
                }
            }
            persons.push(p);
        } else if roll < 0.20 {
            // New friendship between existing persons (symmetric).
            let p = persons[rng.gen_range(0..persons.len())];
            let q = persons[rng.gen_range(0..persons.len())];
            if p != q {
                tuples.push(StreamTuple::insert(ts, p, q, knows));
                tuples.push(StreamTuple::insert(ts, q, p, knows));
            }
        } else if roll < 0.35 {
            // New post.
            let m = fresh(&mut next_vertex);
            let author = persons[rng.gen_range(0..persons.len())];
            tuples.push(StreamTuple::insert(ts, m, author, has_creator));
            messages.push(m);
        } else if roll < 0.70 && !messages.is_empty() {
            // New comment replying to a recent message.
            let c = fresh(&mut next_vertex);
            let target = pick_recent(&mut rng, &messages);
            let author = persons[rng.gen_range(0..persons.len())];
            tuples.push(StreamTuple::insert(ts, c, target, reply_of));
            tuples.push(StreamTuple::insert(ts, c, author, has_creator));
            messages.push(c);
        } else if !messages.is_empty() {
            // Like.
            let p = persons[rng.gen_range(0..persons.len())];
            let m = pick_recent(&mut rng, &messages);
            tuples.push(StreamTuple::insert(ts, p, m, likes));
        } else {
            // Bootstrap: no messages yet — post instead.
            let m = fresh(&mut next_vertex);
            let author = persons[rng.gen_range(0..persons.len())];
            tuples.push(StreamTuple::insert(ts, m, author, has_creator));
            messages.push(m);
        }
    }

    Dataset {
        name: "ldbc".into(),
        tuples,
        labels,
        n_vertices: next_vertex,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LdbcConfig {
        LdbcConfig {
            n_events: 5_000,
            seed_persons: 100,
            duration: 20_000,
            seed: 11,
        }
    }

    #[test]
    fn stream_is_valid_and_deterministic() {
        let a = generate(&small());
        a.validate().unwrap();
        let b = generate(&small());
        assert_eq!(a.tuples, b.tuples);
        assert_eq!(a.labels.len(), 4);
    }

    #[test]
    fn reply_chains_are_recursive() {
        // replyOf edges should form chains of depth > 1 (comment on
        // comment), which is what makes replyOf* meaningful.
        let ds = generate(&small());
        let reply_of = ds.labels.get("replyOf").unwrap();
        let mut targets = std::collections::HashSet::new();
        let mut sources = std::collections::HashSet::new();
        for t in &ds.tuples {
            if t.label == reply_of {
                sources.insert(t.edge.src);
                targets.insert(t.edge.dst);
            }
        }
        let chained = sources.intersection(&targets).count();
        assert!(chained > 10, "only {chained} chained replies");
    }

    #[test]
    fn knows_is_symmetric() {
        let ds = generate(&small());
        let knows = ds.labels.get("knows").unwrap();
        let edges: std::collections::HashSet<(u32, u32)> = ds
            .tuples
            .iter()
            .filter(|t| t.label == knows)
            .map(|t| (t.edge.src.0, t.edge.dst.0))
            .collect();
        for &(a, b) in &edges {
            assert!(edges.contains(&(b, a)), "missing reverse of ({a},{b})");
        }
    }

    #[test]
    fn has_creator_points_to_persons_only() {
        // Creators are persons: vertices created as persons. Persons are
        // the seed block plus the 5%-event additions; messages never
        // appear as a hasCreator target's source... simplest check:
        // hasCreator targets must never be replyOf sources or targets
        // that are messages. We verify targets have no outgoing
        // hasCreator edges (persons don't create creators).
        let ds = generate(&small());
        let has_creator = ds.labels.get("hasCreator").unwrap();
        let creators: std::collections::HashSet<u32> = ds
            .tuples
            .iter()
            .filter(|t| t.label == has_creator)
            .map(|t| t.edge.dst.0)
            .collect();
        for t in &ds.tuples {
            if t.label == has_creator {
                assert!(
                    !creators.contains(&t.edge.src.0),
                    "a person authored content AND is content"
                );
            }
        }
    }
}
