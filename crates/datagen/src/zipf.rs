//! A small Zipf sampler (rank-frequency `p(r) ∝ 1/r^s`).
//!
//! `rand` 0.8 ships no Zipf distribution without the `rand_distr`
//! add-on, and our needs are modest (label and vertex popularity
//! skews), so we precompute the cumulative mass and binary-search it.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s` (`s = 0` is
    /// uniform; larger `s` is more skewed). Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 1..=n {
            total += 1.0 / (r as f64).powf(s);
            cumulative.push(total);
        }
        // Normalize to [0, 1].
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Zipf { cumulative }
    }

    /// Samples a rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution is degenerate (single rank).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn skewed_when_s_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should dominate rank 50 by roughly 50×.
        assert!(counts[0] > 10 * counts[50].max(1));
        // All samples in range (implicitly: no panic).
    }

    #[test]
    fn sample_always_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }
}
