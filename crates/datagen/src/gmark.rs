//! gMark-like schema-driven graph and query workload generator (§5.1.2).
//!
//! gMark generates graphs from a schema: node types with instance
//! counts, and predicates with source/target types and out-degree
//! distributions. The paper uses a pre-configured schema mimicking LDBC
//! SNB to build a 100M-vertex graph and a workload of 100 synthetic
//! RPQs with sizes 2–20 (Figures 7–9). We reproduce the construction
//! recipe at laptop scale:
//!
//! * [`generate`] — edges per predicate per source node, degree drawn
//!   from uniform / Zipf / Gaussian distributions, timestamps assigned
//!   at a fixed rate over a shuffled edge order (as the paper does for
//!   static graphs);
//! * [`generate_queries`] — random RPQs built by grouping labels into
//!   concatenations/alternations of size ≤ 3, each group starred (`*`
//!   or `+`) with probability 50% (the paper's exact recipe). Query
//!   size counts labels plus stars.

use crate::dataset::Dataset;
use crate::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use srpq_common::{LabelInterner, StreamTuple, Timestamp, VertexId};

/// An out-degree distribution for a predicate.
#[derive(Debug, Clone)]
pub enum DegreeDist {
    /// Uniform in `min..=max`.
    Uniform {
        /// Minimum degree.
        min: u32,
        /// Maximum degree.
        max: u32,
    },
    /// Zipf-shaped over `0..=max` (rank 0 maps to `max`).
    Zipf {
        /// Maximum degree.
        max: u32,
        /// Skew exponent.
        s: f64,
    },
    /// Gaussian with the given mean and standard deviation, clamped at 0.
    Gaussian {
        /// Mean degree.
        mean: f64,
        /// Standard deviation.
        std: f64,
    },
}

impl DegreeDist {
    fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        match *self {
            DegreeDist::Uniform { min, max } => rng.gen_range(min..=max),
            DegreeDist::Zipf { max, s } => {
                let z = Zipf::new(max as usize + 1, s);
                (max as usize - z.sample(rng)) as u32
            }
            DegreeDist::Gaussian { mean, std } => {
                // Box–Muller; clamp at zero.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen();
                let n = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mean + std * n).max(0.0).round() as u32
            }
        }
    }
}

/// A node type: a name and an instance count.
#[derive(Debug, Clone)]
pub struct NodeType {
    /// Type name (e.g. "person").
    pub name: String,
    /// Number of instances.
    pub count: u32,
}

/// A predicate: labelled edges from one node type to another.
#[derive(Debug, Clone)]
pub struct Predicate {
    /// Edge label.
    pub name: String,
    /// Source node type (index into the schema's `node_types`).
    pub src_type: usize,
    /// Target node type (index into the schema's `node_types`).
    pub dst_type: usize,
    /// Out-degree distribution per source instance.
    pub out_degree: DegreeDist,
}

/// A gMark schema.
#[derive(Debug, Clone)]
pub struct GmarkSchema {
    /// Node types.
    pub node_types: Vec<NodeType>,
    /// Predicates.
    pub predicates: Vec<Predicate>,
}

impl GmarkSchema {
    /// The pre-configured LDBC-SNB-flavoured schema the paper uses,
    /// scaled by `scale` (node counts multiply by it).
    pub fn ldbc_like(scale: u32) -> GmarkSchema {
        let s = scale.max(1);
        let node_types = vec![
            NodeType {
                name: "person".into(),
                count: 200 * s,
            },
            NodeType {
                name: "post".into(),
                count: 400 * s,
            },
            NodeType {
                name: "comment".into(),
                count: 800 * s,
            },
            NodeType {
                name: "forum".into(),
                count: 40 * s,
            },
            NodeType {
                name: "tag".into(),
                count: 60 * s,
            },
        ];
        let (person, post, comment, forum, tag) = (0, 1, 2, 3, 4);
        let predicates = vec![
            Predicate {
                name: "knows".into(),
                src_type: person,
                dst_type: person,
                out_degree: DegreeDist::Zipf { max: 20, s: 1.0 },
            },
            Predicate {
                name: "hasCreator".into(),
                src_type: comment,
                dst_type: person,
                out_degree: DegreeDist::Uniform { min: 1, max: 1 },
            },
            Predicate {
                name: "postedBy".into(),
                src_type: post,
                dst_type: person,
                out_degree: DegreeDist::Uniform { min: 1, max: 1 },
            },
            Predicate {
                name: "likes".into(),
                src_type: person,
                dst_type: post,
                out_degree: DegreeDist::Gaussian {
                    mean: 4.0,
                    std: 2.0,
                },
            },
            Predicate {
                name: "replyOf".into(),
                src_type: comment,
                dst_type: comment,
                out_degree: DegreeDist::Uniform { min: 0, max: 1 },
            },
            Predicate {
                name: "replyOfPost".into(),
                src_type: comment,
                dst_type: post,
                out_degree: DegreeDist::Uniform { min: 0, max: 1 },
            },
            Predicate {
                name: "hasTag".into(),
                src_type: post,
                dst_type: tag,
                out_degree: DegreeDist::Uniform { min: 1, max: 3 },
            },
            Predicate {
                name: "hasMember".into(),
                src_type: forum,
                dst_type: person,
                out_degree: DegreeDist::Zipf { max: 30, s: 0.8 },
            },
            Predicate {
                name: "containerOf".into(),
                src_type: forum,
                dst_type: post,
                out_degree: DegreeDist::Zipf { max: 25, s: 0.8 },
            },
            Predicate {
                name: "hasInterest".into(),
                src_type: person,
                dst_type: tag,
                out_degree: DegreeDist::Uniform { min: 0, max: 4 },
            },
        ];
        GmarkSchema {
            node_types,
            predicates,
        }
    }

    /// All predicate names.
    pub fn labels(&self) -> Vec<&str> {
        self.predicates.iter().map(|p| p.name.as_str()).collect()
    }
}

/// Generates a streaming graph from a schema. Edge order is shuffled and
/// timestamps assigned at a fixed rate (1 unit per edge), as the paper
/// does when emulating streams over static graphs.
pub fn generate(schema: &GmarkSchema, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut labels = LabelInterner::new();

    // Assign contiguous vertex id ranges per node type.
    let mut base = Vec::with_capacity(schema.node_types.len());
    let mut next = 0u32;
    for nt in &schema.node_types {
        base.push(next);
        next += nt.count;
    }
    let n_vertices = next;

    let mut edges: Vec<(VertexId, VertexId, srpq_common::Label)> = Vec::new();
    for pred in &schema.predicates {
        let label = labels.intern(&pred.name);
        let src_base = base[pred.src_type];
        let src_count = schema.node_types[pred.src_type].count;
        let dst_base = base[pred.dst_type];
        let dst_count = schema.node_types[pred.dst_type].count;
        for i in 0..src_count {
            let src = VertexId(src_base + i);
            let d = pred.out_degree.sample(&mut rng);
            for _ in 0..d {
                let mut dst = VertexId(dst_base + rng.gen_range(0..dst_count));
                if dst == src {
                    if dst_count == 1 {
                        continue;
                    }
                    dst = VertexId(dst_base + (dst.0 - dst_base + 1) % dst_count);
                }
                edges.push((src, dst, label));
            }
        }
    }
    edges.shuffle(&mut rng);

    let tuples = edges
        .into_iter()
        .enumerate()
        .map(|(i, (src, dst, label))| StreamTuple::insert(Timestamp(i as i64 + 1), src, dst, label))
        .collect();

    Dataset {
        name: "gmark".into(),
        tuples,
        labels,
        n_vertices,
    }
}

/// A generated synthetic RPQ.
#[derive(Debug, Clone)]
pub struct SyntheticQuery {
    /// Surface-syntax expression (parseable by `srpq_automata::parse`).
    pub expr: String,
    /// Query size |Q_R| (labels + stars), per §5.1.2.
    pub size: usize,
}

/// Generates `n` random RPQs over `labels` with sizes in
/// `min_size..=max_size`, following the paper's recipe: groups of ≤ 3
/// labels combined by concatenation or alternation, each group starred
/// (`*` or `+`) with probability 50%.
pub fn generate_queries(
    labels: &[&str],
    n: usize,
    min_size: usize,
    max_size: usize,
    seed: u64,
) -> Vec<SyntheticQuery> {
    assert!(!labels.is_empty());
    assert!(min_size >= 1 && max_size >= min_size);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let target = rng.gen_range(min_size..=max_size);
        let mut size = 0usize;
        let mut parts: Vec<String> = Vec::new();
        while size < target {
            let group_len = rng.gen_range(1..=3usize).min(target - size);
            let chosen: Vec<&str> = (0..group_len)
                .map(|_| labels[rng.gen_range(0..labels.len())])
                .collect();
            size += group_len;
            let alternation = group_len > 1 && rng.gen_bool(0.5);
            let body = if alternation {
                chosen.join(" | ")
            } else {
                chosen.join(" ")
            };
            let starred = size < target && rng.gen_bool(0.5);
            let part = if starred {
                size += 1;
                let op = if rng.gen_bool(0.5) { "*" } else { "+" };
                format!("({body}){op}")
            } else if alternation {
                format!("({body})")
            } else {
                body
            };
            parts.push(part);
        }
        if size < min_size || size > max_size {
            continue;
        }
        out.push(SyntheticQuery {
            expr: parts.join(" "),
            size,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use srpq_automata::parse;

    #[test]
    fn ldbc_like_schema_generates_valid_stream() {
        let schema = GmarkSchema::ldbc_like(1);
        let ds = generate(&schema, 21);
        ds.validate().unwrap();
        assert!(ds.len() > 1_000, "too few edges: {}", ds.len());
        assert_eq!(ds.labels.len(), schema.predicates.len());
    }

    #[test]
    fn scale_multiplies_size() {
        let a = generate(&GmarkSchema::ldbc_like(1), 3).len();
        let b = generate(&GmarkSchema::ldbc_like(4), 3).len();
        assert!(b > 3 * a, "{b} not ≫ {a}");
    }

    #[test]
    fn type_ranges_respected() {
        let schema = GmarkSchema::ldbc_like(1);
        let ds = generate(&schema, 5);
        let knows = ds.labels.get("knows").unwrap();
        // knows edges must connect persons (ids 0..200).
        for t in &ds.tuples {
            if t.label == knows {
                assert!(t.edge.src.0 < 200 && t.edge.dst.0 < 200);
            }
        }
    }

    #[test]
    fn queries_parse_and_have_declared_size() {
        let labels = ["a", "b", "c", "d"];
        let queries = generate_queries(&labels, 100, 2, 20, 42);
        assert_eq!(queries.len(), 100);
        for q in &queries {
            let regex = parse(&q.expr).unwrap_or_else(|e| panic!("{}: {e}", q.expr));
            assert_eq!(regex.size(), q.size, "size mismatch for {}", q.expr);
            assert!((2..=20).contains(&q.size));
        }
    }

    #[test]
    fn query_sizes_cover_the_range() {
        let labels = ["a", "b", "c"];
        let queries = generate_queries(&labels, 200, 2, 20, 7);
        let sizes: std::collections::HashSet<usize> = queries.iter().map(|q| q.size).collect();
        assert!(sizes.len() >= 12, "only {} distinct sizes", sizes.len());
    }

    #[test]
    fn roughly_half_the_groups_are_starred() {
        let labels = ["a", "b"];
        let queries = generate_queries(&labels, 300, 4, 12, 99);
        let starred = queries
            .iter()
            .filter(|q| q.expr.contains(")*") || q.expr.contains(")+"))
            .count();
        assert!(
            starred > queries.len() / 4,
            "too few starred queries: {starred}"
        );
    }

    #[test]
    fn degree_distributions_sample_sanely() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let u = DegreeDist::Uniform { min: 1, max: 3 }.sample(&mut rng);
            assert!((1..=3).contains(&u));
            let z = DegreeDist::Zipf { max: 10, s: 1.0 }.sample(&mut rng);
            assert!(z <= 10);
            let _g = DegreeDist::Gaussian {
                mean: 4.0,
                std: 2.0,
            }
            .sample(&mut rng);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let schema = GmarkSchema::ldbc_like(1);
        assert_eq!(generate(&schema, 9).tuples, generate(&schema, 9).tuples);
    }
}
