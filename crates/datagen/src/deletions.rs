//! Negative-tuple injection (§5.4, Figure 10).
//!
//! "We generate explicit deletions by reinserting a previously consumed
//! edge as a negative tuple and varying the ratio of negative tuples in
//! the stream." [`inject_deletions`] does exactly that: with probability
//! `ratio` per position, a previously seen insertion is re-emitted as a
//! deletion at the current timestamp.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srpq_common::StreamTuple;

/// Injects explicit deletions into an insertion-only stream. `ratio` is
/// the fraction of *output* tuples that are deletions (0.0–0.5).
/// Deletions pick a uniformly random previously inserted edge and carry
/// the timestamp of the preceding tuple (keeping the stream ordered).
pub fn inject_deletions(stream: &[StreamTuple], ratio: f64, seed: u64) -> Vec<StreamTuple> {
    assert!((0.0..=0.5).contains(&ratio), "ratio must be in [0, 0.5]");
    if ratio == 0.0 {
        return stream.to_vec();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity((stream.len() as f64 * (1.0 + ratio)) as usize);
    let mut seen: Vec<StreamTuple> = Vec::with_capacity(stream.len());
    // Per-insert probability yielding the requested output fraction:
    // d = p·n deletions over n+d tuples ⇒ p = ratio / (1 − ratio).
    let p = ratio / (1.0 - ratio);
    for t in stream {
        out.push(*t);
        if t.is_insert() {
            seen.push(*t);
        }
        if !seen.is_empty() && rng.gen_bool(p.min(1.0)) {
            let victim = seen[rng.gen_range(0..seen.len())];
            out.push(StreamTuple::delete(
                t.ts,
                victim.edge.src,
                victim.edge.dst,
                victim.label,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use srpq_common::{Label, Op, Timestamp, VertexId};

    fn base_stream(n: usize) -> Vec<StreamTuple> {
        (0..n)
            .map(|i| {
                StreamTuple::insert(
                    Timestamp(i as i64),
                    VertexId(i as u32),
                    VertexId(i as u32 + 1),
                    Label(0),
                )
            })
            .collect()
    }

    #[test]
    fn zero_ratio_is_identity() {
        let s = base_stream(100);
        assert_eq!(inject_deletions(&s, 0.0, 1), s);
    }

    #[test]
    fn ratio_is_approximated() {
        let s = base_stream(20_000);
        let out = inject_deletions(&s, 0.10, 42);
        let dels = out.iter().filter(|t| t.op == Op::Delete).count();
        let frac = dels as f64 / out.len() as f64;
        assert!((0.08..0.12).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn deletions_reference_prior_insertions() {
        let s = base_stream(1_000);
        let out = inject_deletions(&s, 0.2, 7);
        let mut seen = std::collections::HashSet::new();
        for t in &out {
            match t.op {
                Op::Insert => {
                    seen.insert((t.edge, t.label));
                }
                Op::Delete => {
                    assert!(
                        seen.contains(&(t.edge, t.label)),
                        "deletion of never-inserted edge"
                    );
                }
            }
        }
    }

    #[test]
    fn timestamps_stay_ordered() {
        let s = base_stream(1_000);
        let out = inject_deletions(&s, 0.3, 9);
        let mut last = i64::MIN;
        for t in &out {
            assert!(t.ts.0 >= last);
            last = t.ts.0;
        }
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn excessive_ratio_rejected() {
        inject_deletions(&base_stream(10), 0.9, 1);
    }
}
