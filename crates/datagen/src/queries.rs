//! The Table 2 real-world query workload with Table 3 label bindings.
//!
//! The paper takes the 10 most common recursive query shapes from the
//! Wikidata query logs (covering > 99% of recursive queries) plus the
//! most common non-recursive shape (Q11), and instantiates the label
//! variables per dataset. `k = 3` for the variable-arity queries, as in
//! the paper (the SO graph has exactly three labels).

/// Which dataset family a workload binds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// StackOverflow-like (3 labels, homogeneous, cyclic).
    So,
    /// LDBC-SNB-like (4 labels; only `knows` / `replyOf` recursive).
    Ldbc,
    /// Yago2s-like (~100 labels, sparse).
    Yago,
}

/// A named query: `(name, surface-syntax expression)`.
pub type NamedQuery = (&'static str, String);

/// Instantiates the Table 2 templates over the given label variables.
/// `labels[0]` is `a`, `labels[1]` is `b`, `labels[2]` is `c`; the
/// variable-arity queries (Q4, Q9, Q10, Q11) use all provided labels.
/// Panics unless at least 3 labels are provided.
pub fn table2_queries(labels: &[&str]) -> Vec<NamedQuery> {
    assert!(labels.len() >= 3, "Table 2 templates need ≥ 3 labels");
    let (a, b, c) = (labels[0], labels[1], labels[2]);
    let alt = labels.join(" | ");
    let cat = labels.join(" ");
    vec![
        ("Q1", format!("{a}*")),
        ("Q2", format!("{a} {b}*")),
        ("Q3", format!("{a} {b}* {c}*")),
        ("Q4", format!("({alt})*")),
        ("Q5", format!("{a} {b}* {c}")),
        ("Q6", format!("{a}* {b}*")),
        ("Q7", format!("{a} {b} {c}*")),
        ("Q8", format!("{a}? {b}*")),
        ("Q9", format!("({alt})+")),
        ("Q10", format!("({alt}) {b}*")),
        ("Q11", cat),
    ]
}

/// The workload for a dataset family, with the Table 3 bindings and the
/// paper's per-dataset restrictions (Figure 4b evaluates Q1, Q2, Q3,
/// Q5, Q6, Q7, Q11 on LDBC — the alternation queries are not
/// meaningful there).
pub fn queries_for(kind: DatasetKind) -> Vec<NamedQuery> {
    match kind {
        DatasetKind::So => table2_queries(&["a2q", "c2a", "c2q"]),
        DatasetKind::Ldbc => {
            let all = table2_queries(&["knows", "replyOf", "hasCreator", "likes"]);
            let keep = ["Q1", "Q2", "Q3", "Q5", "Q6", "Q7", "Q11"];
            all.into_iter()
                .filter(|(name, _)| keep.contains(name))
                .collect()
        }
        DatasetKind::Yago => table2_queries(&["happenedIn", "hasCapital", "participatedIn"]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srpq_automata::{parse, CompiledQuery};
    use srpq_common::LabelInterner;

    #[test]
    fn all_templates_parse_and_compile() {
        for kind in [DatasetKind::So, DatasetKind::Ldbc, DatasetKind::Yago] {
            for (name, expr) in queries_for(kind) {
                parse(&expr).unwrap_or_else(|e| panic!("{name} ({expr}): {e}"));
                let mut labels = LabelInterner::new();
                let q = CompiledQuery::compile(&expr, &mut labels).unwrap();
                assert!(q.k() >= 1, "{name} has no states");
            }
        }
    }

    #[test]
    fn eleven_queries_for_so_and_yago() {
        assert_eq!(queries_for(DatasetKind::So).len(), 11);
        assert_eq!(queries_for(DatasetKind::Yago).len(), 11);
        assert_eq!(queries_for(DatasetKind::Ldbc).len(), 7);
    }

    #[test]
    fn q11_is_the_only_non_recursive() {
        for (name, expr) in queries_for(DatasetKind::So) {
            let recursive = parse(&expr).unwrap().is_recursive();
            if name == "Q11" {
                assert!(!recursive);
            } else {
                assert!(recursive, "{name} should be recursive");
            }
        }
    }

    #[test]
    fn shapes_match_table_2() {
        let qs = table2_queries(&["a", "b", "c"]);
        let get = |n: &str| {
            qs.iter()
                .find(|(name, _)| *name == n)
                .map(|(_, e)| e.clone())
                .unwrap()
        };
        assert_eq!(get("Q1"), "a*");
        assert_eq!(get("Q2"), "a b*");
        assert_eq!(get("Q3"), "a b* c*");
        assert_eq!(get("Q4"), "(a | b | c)*");
        assert_eq!(get("Q5"), "a b* c");
        assert_eq!(get("Q6"), "a* b*");
        assert_eq!(get("Q7"), "a b c*");
        assert_eq!(get("Q8"), "a? b*");
        assert_eq!(get("Q9"), "(a | b | c)+");
        assert_eq!(get("Q10"), "(a | b | c) b*");
        assert_eq!(get("Q11"), "a b c");
    }

    #[test]
    #[should_panic(expected = "≥ 3 labels")]
    fn too_few_labels_rejected() {
        table2_queries(&["a", "b"]);
    }
}
