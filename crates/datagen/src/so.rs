//! StackOverflow-like temporal interaction stream.
//!
//! The real SO graph (§5.1.2): 63M interactions among 2.2M users over 8
//! years; a *single* vertex type, exactly three edge labels (user
//! answered / commented-on-question / commented-on-answer), heavy-tailed
//! activity, and — because every edge connects users to users — a highly
//! cyclic topology where recursive queries touch every edge. Those are
//! the properties that make it the paper's hardest workload (largest Δ,
//! lowest throughput), and they are what this generator reproduces:
//!
//! * three labels `a2q`, `c2a`, `c2q` with the empirical 2:1:1-ish mix;
//! * preferential attachment on *both* endpoints (heavy-tailed in- and
//!   out-degrees, many reciprocal pairs ⇒ short cycles);
//! * timestamps advancing at an irregular but monotone rate.

use crate::dataset::Dataset;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srpq_common::{LabelInterner, StreamTuple, Timestamp, VertexId};

/// Configuration for the SO-like generator.
#[derive(Debug, Clone)]
pub struct SoConfig {
    /// Number of users (vertices).
    pub n_users: u32,
    /// Number of interactions (tuples).
    pub n_edges: usize,
    /// Total time span of the stream in time units.
    pub duration: i64,
    /// RNG seed.
    pub seed: u64,
    /// Probability that an endpoint is drawn by degree (preferential
    /// attachment) rather than uniformly. Default 0.7.
    pub preferential: f64,
}

impl Default for SoConfig {
    fn default() -> Self {
        SoConfig {
            n_users: 2_000,
            n_edges: 50_000,
            duration: 100_000,
            seed: 0x5005_0e11,
            preferential: 0.7,
        }
    }
}

/// Generates the stream.
pub fn generate(cfg: &SoConfig) -> Dataset {
    assert!(cfg.n_users >= 2, "need at least two users");
    assert!(cfg.n_edges > 0);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut labels = LabelInterner::new();
    // The three SO interaction types (Table 3; the paper's row labels
    // for SO/LDBC are swapped — SO is the 3-label graph).
    let a2q = labels.intern("a2q");
    let c2a = labels.intern("c2a");
    let c2q = labels.intern("c2q");
    let label_mix = [(a2q, 0.5), (c2a, 0.25), (c2q, 0.25)];

    // Degree-proportional endpoint pool (each chosen endpoint is pushed
    // back, yielding preferential attachment).
    let mut pool: Vec<u32> = Vec::with_capacity(cfg.n_edges * 2 + 2);
    pool.push(rng.gen_range(0..cfg.n_users));
    pool.push(rng.gen_range(0..cfg.n_users));

    let mut tuples = Vec::with_capacity(cfg.n_edges);
    let mut now = 0i64;
    let mean_gap = (cfg.duration as f64 / cfg.n_edges as f64).max(0.0);
    for _ in 0..cfg.n_edges {
        // Irregular monotone timestamps: 0..2× the mean gap.
        now += rng.gen_range(0.0..=2.0 * mean_gap) as i64;
        let pick = |rng: &mut SmallRng, pool: &Vec<u32>| -> u32 {
            if rng.gen_bool(cfg.preferential) && !pool.is_empty() {
                pool[rng.gen_range(0..pool.len())]
            } else {
                rng.gen_range(0..cfg.n_users)
            }
        };
        let src = pick(&mut rng, &pool);
        let mut dst = pick(&mut rng, &pool);
        if dst == src {
            dst = (dst + 1 + rng.gen_range(0..cfg.n_users - 1)) % cfg.n_users;
        }
        pool.push(src);
        pool.push(dst);
        let roll: f64 = rng.gen();
        let mut acc = 0.0;
        let mut label = a2q;
        for &(l, w) in &label_mix {
            acc += w;
            if roll < acc {
                label = l;
                break;
            }
        }
        tuples.push(StreamTuple::insert(
            Timestamp(now),
            VertexId(src),
            VertexId(dst),
            label,
        ));
    }

    Dataset {
        name: "so".into(),
        tuples,
        labels,
        n_vertices: cfg.n_users,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = SoConfig {
            n_edges: 1_000,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.tuples, b.tuples);
        let c = generate(&SoConfig {
            seed: cfg.seed + 1,
            ..cfg
        });
        assert_ne!(a.tuples, c.tuples);
    }

    #[test]
    fn stream_is_valid() {
        let ds = generate(&SoConfig {
            n_users: 100,
            n_edges: 5_000,
            duration: 10_000,
            seed: 3,
            preferential: 0.7,
        });
        ds.validate().unwrap();
        assert_eq!(ds.len(), 5_000);
        assert_eq!(ds.labels.len(), 3);
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let ds = generate(&SoConfig {
            n_users: 1_000,
            n_edges: 20_000,
            duration: 10_000,
            seed: 9,
            preferential: 0.8,
        });
        let mut deg = vec![0usize; 1_000];
        for t in &ds.tuples {
            deg[t.edge.src.index()] += 1;
            deg[t.edge.dst.index()] += 1;
        }
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = deg[..10].iter().sum();
        let total: usize = deg.iter().sum();
        // Top 1% of users should hold far more than 1% of interactions.
        assert!(
            top10 as f64 > 0.05 * total as f64,
            "top10 {top10} of {total}"
        );
    }

    #[test]
    fn no_self_loops() {
        let ds = generate(&SoConfig {
            n_users: 10,
            n_edges: 2_000,
            duration: 1_000,
            seed: 4,
            preferential: 0.9,
        });
        assert!(ds.tuples.iter().all(|t| t.edge.src != t.edge.dst));
    }

    #[test]
    fn label_mix_roughly_half_a2q() {
        let ds = generate(&SoConfig {
            n_users: 500,
            n_edges: 20_000,
            duration: 10_000,
            seed: 5,
            preferential: 0.7,
        });
        let a2q = ds.labels.get("a2q").unwrap();
        let count = ds.tuples.iter().filter(|t| t.label == a2q).count();
        let frac = count as f64 / ds.len() as f64;
        assert!((0.45..0.55).contains(&frac), "a2q fraction {frac}");
    }
}
