//! Yago2s-like RDF stream.
//!
//! Yago2s (§5.1.2): 220M triples, ~72M subjects, a rich schema of ~100
//! predicates. The paper emulates sliding windows over it by assigning a
//! monotonically non-decreasing timestamp to each triple at a **fixed
//! rate**, so every window holds the same number of edges — that is what
//! makes it the dataset of choice for the window-size scaling (Figure 6)
//! and deletion (Figure 10) experiments.
//!
//! The generator reproduces: ~100 labels with Zipf-distributed
//! frequencies, a sparse topology (bounded average degree, mild subject
//! reuse), and one time unit per edge.

use crate::dataset::Dataset;
use crate::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srpq_common::{LabelInterner, StreamTuple, Timestamp, VertexId};

/// Configuration for the Yago-like generator.
#[derive(Debug, Clone)]
pub struct YagoConfig {
    /// Number of triples (tuples); timestamps are `1..=n_edges`.
    pub n_edges: usize,
    /// Number of entities (vertices).
    pub n_vertices: u32,
    /// Number of predicates (labels). The real schema has ~100.
    pub n_labels: usize,
    /// Zipf exponent for label popularity.
    pub label_skew: f64,
    /// Zipf exponent for subject popularity (sparse reuse).
    pub vertex_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for YagoConfig {
    fn default() -> Self {
        YagoConfig {
            n_edges: 100_000,
            n_vertices: 30_000,
            n_labels: 100,
            label_skew: 1.1,
            vertex_skew: 0.6,
            seed: 0x9a90,
        }
    }
}

/// Generates the stream. Labels are named `p0..p{n}` with `p0` the most
/// frequent; the Table 3 bindings (`happenedIn`, `hasCapital`,
/// `participatedIn`) are provided as aliases of the three most frequent
/// predicates so the Table 2 templates can be instantiated.
pub fn generate(cfg: &YagoConfig) -> Dataset {
    assert!(cfg.n_vertices >= 2);
    assert!(cfg.n_labels >= 3, "need at least the three Table 3 labels");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut labels = LabelInterner::new();
    // The three Table 3 label variables map to the three hottest
    // predicates; the rest get synthetic names.
    let named = ["happenedIn", "hasCapital", "participatedIn"];
    let mut label_ids = Vec::with_capacity(cfg.n_labels);
    for i in 0..cfg.n_labels {
        let l = if i < named.len() {
            labels.intern(named[i])
        } else {
            labels.intern(&format!("p{i}"))
        };
        label_ids.push(l);
    }

    let label_dist = Zipf::new(cfg.n_labels, cfg.label_skew);
    let vertex_dist = Zipf::new(cfg.n_vertices as usize, cfg.vertex_skew);

    let mut tuples = Vec::with_capacity(cfg.n_edges);
    for i in 0..cfg.n_edges {
        let ts = Timestamp(i as i64 + 1); // fixed rate: 1 edge per unit
        let label = label_ids[label_dist.sample(&mut rng)];
        let src = vertex_dist.sample(&mut rng) as u32;
        let mut dst = vertex_dist.sample(&mut rng) as u32;
        if dst == src {
            dst = (dst + 1 + rng.gen_range(0..cfg.n_vertices - 1)) % cfg.n_vertices;
        }
        tuples.push(StreamTuple::insert(ts, VertexId(src), VertexId(dst), label));
    }

    Dataset {
        name: "yago".into(),
        tuples,
        labels,
        n_vertices: cfg.n_vertices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> YagoConfig {
        YagoConfig {
            n_edges: 20_000,
            n_vertices: 5_000,
            n_labels: 100,
            label_skew: 1.1,
            vertex_skew: 0.6,
            seed: 17,
        }
    }

    #[test]
    fn stream_is_valid_and_fixed_rate() {
        let ds = generate(&small());
        ds.validate().unwrap();
        assert_eq!(ds.len(), 20_000);
        // Fixed-rate timestamps: ts == index + 1.
        for (i, t) in ds.tuples.iter().enumerate() {
            assert_eq!(t.ts.0, i as i64 + 1);
        }
    }

    #[test]
    fn has_about_100_labels_with_skew() {
        let ds = generate(&small());
        assert_eq!(ds.labels.len(), 100);
        let happened = ds.labels.get("happenedIn").unwrap();
        let hot = ds.tuples.iter().filter(|t| t.label == happened).count();
        // The hottest predicate should clearly exceed the uniform share.
        assert!(
            hot as f64 > 3.0 * (ds.len() as f64 / 100.0),
            "hot label count {hot}"
        );
    }

    #[test]
    fn table3_labels_present() {
        let ds = generate(&small());
        for name in ["happenedIn", "hasCapital", "participatedIn"] {
            assert!(ds.labels.get(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn sparse_topology() {
        let ds = generate(&small());
        // Average degree bounded: edges / vertices stays small.
        let avg = ds.len() as f64 / ds.n_vertices as f64;
        assert!(avg < 10.0, "too dense: {avg}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&small()).tuples, generate(&small()).tuples);
    }
}
