//! Synthetic streaming graph generators and query workloads.
//!
//! The paper evaluates on StackOverflow (real temporal graph), LDBC SNB
//! update streams, the Yago2s RDF dataset, and gMark-generated graphs.
//! None of those are shippable here, so each module builds a synthetic
//! stand-in reproducing the *qualitative drivers* of the corresponding
//! experiments (see DESIGN.md §3 for the substitution argument):
//!
//! * [`so`] — homogeneous, highly cyclic interaction graph with 3 labels
//!   and heavy-tailed degrees (the paper's most challenging workload);
//! * [`ldbc`] — heterogeneous social-network update stream where only
//!   `knows` and `replyOf` are recursive;
//! * [`yago`] — sparse RDF-like stream with ~100 Zipf-distributed labels
//!   and fixed-rate timestamps (count-based windows);
//! * [`gmark`] — schema-driven generator plus the random RPQ workload
//!   used by Figures 7–9;
//! * [`queries`] — the Table 2 real-world query templates with the
//!   Table 3 per-dataset label bindings;
//! * [`deletions`] — negative-tuple injection for the Figure 10
//!   experiment.
//!
//! Everything is seeded and deterministic.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod dataset;
pub mod deletions;
pub mod gmark;
pub mod ldbc;
pub mod queries;
pub mod so;
pub mod yago;
pub mod zipf;

pub use dataset::Dataset;
pub use deletions::inject_deletions;
pub use queries::{queries_for, table2_queries, DatasetKind};
