//! The durability hook threaded through every engine layer.
//!
//! [`Durable<E>`] wraps an engine with write-ahead logging and periodic
//! checkpointing: `process_batch` appends the batch to the WAL (and
//! fsyncs per the [`SyncPolicy`]) **before** the engine mutates any
//! state, then checkpoints whenever the window has slid
//! `checkpoint_every` times since the last checkpoint, then truncates
//! WAL segments that both predate the checkpoint and lie entirely
//! outside the window.
//!
//! [`Durable::recover`] restores a crashed instance from its directory:
//! load the newest valid checkpoint, rebuild the engine from it
//! ([`CheckpointStrategy::Logical`] replays the checkpointed window
//! content through the engine; [`CheckpointStrategy::Full`] restores
//! the exact Δ-forest arenas), then replay the WAL suffix after the
//! checkpoint with a discarding sink. The restored engine continues the
//! stream with the same results at the same stream timestamps as an
//! uninterrupted run (`tests/recovery_equivalence.rs` pins this with a
//! crash-injection matrix).
//!
//! # Recovery guarantees
//!
//! * **Inputs**: a batch acknowledged under `SyncPolicy::Batch` (or
//!   stricter) is never lost.
//! * **Outputs**: recovery replays the post-checkpoint suffix with a
//!   discarding sink — results already delivered before the crash are
//!   not re-emitted (*at-most-once* delivery for the torn batch; log
//!   the sink downstream if it must be exactly-once).
//! * **State**: under `Full` checkpoints the restored engine state is
//!   bit-faithful for any configuration. Under `Logical` checkpoints the
//!   Δ forest is rebuilt from the live window; with
//!   [`RefreshPolicy::Subtree`](srpq_core::config::RefreshPolicy) node
//!   timestamps are canonical (a pure function of window content), so
//!   the rebuild is exact. Under the laxer refresh policies the lost
//!   instance may have carried *stale* (lower-bound) timestamps that the
//!   rebuild heals to canonical values — the same healing an expiry pass
//!   performs — which can shift *when* a re-derived result surfaces by
//!   at most one slide; the result set is unaffected.

use crate::checkpoint::{self, CheckpointStrategy};
use crate::codec::{corrupt, ByteReader, ByteWriter, PersistError, Result};
use crate::wal::{SyncPolicy, Wal, WalBatch, WalInfo};
use srpq_automata::CompiledQuery;
use srpq_common::{LabelInterner, StreamTuple, Timestamp};
use srpq_core::delta::Forest;
use srpq_core::engine::{Engine, PathSemantics};
use srpq_core::multi::{MultiQueryEngine, MultiSink, NullMultiSink};
use srpq_core::sink::{NullSink, ResultSink};
use srpq_core::{EngineStats, ParallelMultiEngine, ParallelRapqEngine, QueryId};
use srpq_graph::WindowPolicy;
use srpq_obs::{Counter, EventKind, Gauge, Histogram, Obs};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Durability tunables for one [`Durable`] instance.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityConfig {
    /// When the WAL fsyncs (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// What checkpoints store (see [`CheckpointStrategy`]).
    pub strategy: CheckpointStrategy,
    /// Checkpoint every N window slides; `0` disables automatic
    /// checkpoints (the initial manifest checkpoint is still written).
    pub checkpoint_every: u64,
    /// Rotate WAL segments at roughly this size.
    pub segment_bytes: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            sync: SyncPolicy::Batch,
            strategy: CheckpointStrategy::Logical,
            checkpoint_every: 8,
            segment_bytes: 4 << 20,
        }
    }
}

/// What [`Durable::recover`] did.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint that anchored recovery.
    pub checkpoint_seq: u64,
    /// Strategy of that checkpoint.
    pub strategy: CheckpointStrategy,
    /// WAL tuples replayed on top of the checkpoint.
    pub replayed_tuples: u64,
    /// First stream position the caller should feed next (all tuples
    /// `0..resume_seq` are already reflected in the engine).
    pub resume_seq: u64,
    /// Wall-clock milliseconds recovery took.
    pub elapsed_ms: u64,
}

/// Durability counters (mirrored into [`EngineStats`] when the wrapped
/// engine exposes one).
#[derive(Debug, Clone, Copy, Default)]
pub struct DurabilityCounters {
    /// Bytes appended to the WAL over the engine's lifetime.
    pub wal_bytes: u64,
    /// Records appended to the WAL.
    pub wal_appends: u64,
    /// `fsync`s issued.
    pub fsyncs: u64,
    /// Checkpoints written.
    pub checkpoints_written: u64,
    /// Milliseconds the most recent recovery took.
    pub last_recovery_ms: u64,
}

/// An engine that can be checkpointed and restored by [`Durable`].
///
/// Implemented for [`Engine`] (covering `RapqEngine` and `RspqEngine`
/// via [`PathSemantics`]), [`MultiQueryEngine`], and
/// [`ParallelRapqEngine`].
pub trait PersistEngine: Sized {
    /// Discriminant stored in checkpoint headers so a directory cannot
    /// be recovered as the wrong engine kind.
    const KIND: u8;

    /// Stream time of the last processed tuple.
    fn clock(&self) -> Timestamp;

    /// The engine's window policy (drives checkpoint cadence and WAL
    /// truncation).
    fn window_policy(&self) -> WindowPolicy;

    /// Serializes the engine state under `strategy`.
    fn encode_state(&self, strategy: CheckpointStrategy, w: &mut ByteWriter);

    /// Rebuilds an engine from serialized state. `labels` must be the
    /// same interner (or an equal clone) the original run compiled its
    /// queries against — checkpoints store query *text*, and label ids
    /// are interner-relative.
    fn decode_state(
        r: &mut ByteReader,
        strategy: CheckpointStrategy,
        labels: &mut LabelInterner,
    ) -> Result<Self>;

    /// Feeds `batch` through normal processing with a discarding sink
    /// (recovery replay: state advances, outputs are not re-delivered).
    fn replay(&mut self, batch: &[StreamTuple]);

    /// Mutable statistics, when this engine keeps a single
    /// [`EngineStats`] (the durability counters are mirrored there).
    fn durability_stats_mut(&mut self) -> Option<&mut EngineStats>;
}

/// Cached observability handles (see [`Durable::set_obs`]). Metric
/// handles are registered once at attach time so the per-batch path
/// does no registry lookups.
#[derive(Debug)]
struct ObsHooks {
    obs: Obs,
    wal_append_ns: Histogram,
    checkpoint_ns: Histogram,
    wal_bytes: Counter,
    wal_appends: Counter,
    fsyncs: Counter,
    checkpoints: Counter,
    recovery_ms: Gauge,
}

/// A durable engine: WAL + checkpoints wrapped around `E`.
#[derive(Debug)]
pub struct Durable<E: PersistEngine> {
    inner: E,
    wal: Wal,
    dir: PathBuf,
    cfg: DurabilityConfig,
    counters: DurabilityCounters,
    last_ckpt_seq: u64,
    /// Window end at the last checkpoint (`None` until the clock starts).
    last_ckpt_window_end: Option<Timestamp>,
    /// What [`Self::recover`] reported, kept so a later
    /// [`Self::set_obs`] can publish the recovery retroactively.
    last_recovery: Option<RecoveryReport>,
    obs: Option<ObsHooks>,
}

impl<E: PersistEngine> Durable<E> {
    /// Wraps a fresh engine, initializing `dir` with an empty WAL and a
    /// manifest checkpoint at sequence 0. Refuses a directory that
    /// already holds durable state (use [`Self::recover`] for those).
    pub fn create(inner: E, dir: &Path, cfg: DurabilityConfig) -> Result<Durable<E>> {
        std::fs::create_dir_all(dir)?;
        // A corrupt existing checkpoint must surface as an error, not
        // read as "fresh directory" — proceeding would prune the very
        // file whose corruption the user needs to hear about.
        if checkpoint::load_latest(dir)?.is_some() {
            return Err(PersistError::Incompatible(format!(
                "{} already holds durable state; recover it or choose a fresh directory",
                dir.display()
            )));
        }
        let (wal, existing) = Wal::open(dir, cfg.segment_bytes)?;
        if !existing.is_empty() {
            return Err(PersistError::Incompatible(format!(
                "{} holds WAL records but no checkpoint; refusing to overwrite",
                dir.display()
            )));
        }
        let mut me = Durable {
            inner,
            wal,
            dir: dir.to_path_buf(),
            cfg,
            counters: DurabilityCounters::default(),
            last_ckpt_seq: 0,
            last_ckpt_window_end: None,
            last_recovery: None,
            obs: None,
        };
        me.checkpoint()?;
        Ok(me)
    }

    /// Restores a durable engine from `dir`: newest valid checkpoint +
    /// WAL suffix replay. See the module docs for the guarantees.
    pub fn recover(
        dir: &Path,
        labels: &mut LabelInterner,
        cfg: DurabilityConfig,
    ) -> Result<(Durable<E>, RecoveryReport)> {
        let t0 = Instant::now();
        let (header, payload) = checkpoint::load_latest(dir)?.ok_or_else(|| {
            PersistError::Incompatible(format!("{}: no checkpoint to recover from", dir.display()))
        })?;
        if header.kind != E::KIND {
            return Err(PersistError::Incompatible(format!(
                "checkpoint holds engine kind {}, expected {}",
                header.kind,
                E::KIND
            )));
        }
        let mut r = ByteReader::new(&payload);
        let mut inner = E::decode_state(&mut r, header.strategy, labels)?;
        if !r.is_exhausted() {
            return Err(corrupt(format!(
                "checkpoint payload has {} trailing bytes",
                r.remaining()
            )));
        }

        let (wal, batches) = Wal::open(dir, cfg.segment_bytes)?;
        let mut applied = header.seq;
        let mut replayed = 0u64;
        for WalBatch { seq, tuples } in &batches {
            let end = seq + tuples.len() as u64;
            if end <= applied {
                continue;
            }
            if *seq > applied {
                return Err(corrupt(format!(
                    "WAL gap: checkpoint covers {applied}, next record starts at {seq}"
                )));
            }
            let skip = (applied - seq) as usize;
            inner.replay(&tuples[skip..]);
            replayed += (tuples.len() - skip) as u64;
            applied = end;
        }

        let elapsed_ms = t0.elapsed().as_millis() as u64;
        // Lifetime counters continue from what the checkpoint recorded.
        let mut counters = match inner.durability_stats_mut() {
            Some(s) => DurabilityCounters {
                wal_bytes: s.wal_bytes,
                wal_appends: s.wal_appends,
                fsyncs: s.fsyncs,
                checkpoints_written: s.checkpoints_written,
                last_recovery_ms: 0,
            },
            None => DurabilityCounters::default(),
        };
        counters.last_recovery_ms = elapsed_ms;
        let we = window_end_opt(inner.window_policy(), inner.clock());
        let report = RecoveryReport {
            checkpoint_seq: header.seq,
            strategy: header.strategy,
            replayed_tuples: replayed,
            resume_seq: applied,
            elapsed_ms,
        };
        let mut me = Durable {
            inner,
            wal,
            dir: dir.to_path_buf(),
            cfg,
            counters,
            last_ckpt_seq: header.seq,
            last_ckpt_window_end: we,
            last_recovery: Some(report),
            obs: None,
        };
        me.mirror_counters();
        Ok((me, report))
    }

    /// Attaches an observability bundle: WAL-append and checkpoint
    /// latency histograms, WAL/checkpoint counters, the last-recovery
    /// gauge, and checkpoint/recovery journal events. Counters start
    /// from this engine's lifetime totals (a recovered instance reports
    /// its pre-crash history), and a recovery performed before the
    /// attach is published retroactively.
    pub fn set_obs(&mut self, obs: Obs) {
        let r = obs.registry();
        let hooks = ObsHooks {
            wal_append_ns: r.histogram("srpq_stage_wal_append_ns", &[]),
            checkpoint_ns: r.histogram("srpq_checkpoint_ns", &[]),
            wal_bytes: r.counter("srpq_wal_bytes_total", &[]),
            wal_appends: r.counter("srpq_wal_appends_total", &[]),
            fsyncs: r.counter("srpq_wal_fsyncs_total", &[]),
            checkpoints: r.counter("srpq_checkpoints_total", &[]),
            recovery_ms: r.gauge("srpq_recovery_last_ms", &[]),
            obs,
        };
        hooks.wal_bytes.add(self.counters.wal_bytes);
        hooks.wal_appends.add(self.counters.wal_appends);
        hooks.fsyncs.add(self.counters.fsyncs);
        hooks.checkpoints.add(self.counters.checkpoints_written);
        hooks.recovery_ms.set(self.counters.last_recovery_ms);
        if let Some(rep) = self.last_recovery {
            hooks.obs.journal().record(
                EventKind::Recovery,
                format!(
                    "dir={} checkpoint_seq={} replayed={} resume_seq={} elapsed_ms={}",
                    self.dir.display(),
                    rep.checkpoint_seq,
                    rep.replayed_tuples,
                    rep.resume_seq,
                    rep.elapsed_ms
                ),
            );
        }
        self.obs = Some(hooks);
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Mutable access to the wrapped engine. Mutating engine *state*
    /// through this bypasses the WAL; use it for sinks/statistics only.
    pub fn inner_mut(&mut self) -> &mut E {
        &mut self.inner
    }

    /// Unwraps the engine, dropping durability.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Aggregate WAL statistics.
    pub fn wal_info(&self) -> WalInfo {
        self.wal.info()
    }

    /// Durability counters for this engine's lifetime.
    pub fn counters(&self) -> DurabilityCounters {
        self.counters
    }

    /// Sequence number of the most recent checkpoint.
    pub fn last_checkpoint_seq(&self) -> u64 {
        self.last_ckpt_seq
    }

    /// Appends `batch` to the WAL under the configured [`SyncPolicy`].
    /// Must run before the engine sees the batch.
    fn log_batch(&mut self, batch: &[StreamTuple]) -> Result<()> {
        let before = self.counters;
        let t0 = Instant::now();
        self.log_batch_inner(batch)?;
        if let Some(hooks) = &self.obs {
            hooks.wal_append_ns.record(t0.elapsed().as_nanos() as u64);
            hooks
                .wal_bytes
                .add(self.counters.wal_bytes - before.wal_bytes);
            hooks
                .wal_appends
                .add(self.counters.wal_appends - before.wal_appends);
            hooks.fsyncs.add(self.counters.fsyncs - before.fsyncs);
        }
        Ok(())
    }

    fn log_batch_inner(&mut self, batch: &[StreamTuple]) -> Result<()> {
        match self.cfg.sync {
            SyncPolicy::Always => {
                for t in batch {
                    self.counters.wal_bytes += self.wal.append(std::slice::from_ref(t))?;
                    self.counters.wal_appends += 1;
                    if self.wal.sync()? {
                        self.counters.fsyncs += 1;
                    }
                }
            }
            SyncPolicy::Batch => {
                self.counters.wal_bytes += self.wal.append(batch)?;
                self.counters.wal_appends += 1;
                if self.wal.sync()? {
                    self.counters.fsyncs += 1;
                }
            }
            SyncPolicy::None => {
                self.counters.wal_bytes += self.wal.append(batch)?;
                self.counters.wal_appends += 1;
            }
        }
        Ok(())
    }

    /// Post-batch bookkeeping: checkpoint if the window slid far enough,
    /// mirror counters into the engine's statistics.
    fn after_batch(&mut self) -> Result<()> {
        let window = self.inner.window_policy();
        let clock = self.inner.clock();
        if clock != Timestamp::NEG_INFINITY {
            let we = window.window_end(clock);
            match self.last_ckpt_window_end {
                None => self.last_ckpt_window_end = Some(we),
                Some(prev) if self.cfg.checkpoint_every > 0 => {
                    let due = prev.saturating_add(
                        window
                            .slide
                            .saturating_mul(self.cfg.checkpoint_every as i64),
                    );
                    if we >= due {
                        self.checkpoint()?;
                    }
                }
                Some(_) => {}
            }
        }
        self.mirror_counters();
        Ok(())
    }

    /// Writes a checkpoint now, then truncates WAL segments that both
    /// predate it and lie entirely outside the window. Returns the
    /// covered sequence number.
    pub fn checkpoint(&mut self) -> Result<u64> {
        let fsyncs_before = self.counters.fsyncs;
        let t0 = Instant::now();
        // The checkpoint claims coverage of everything logged so far, so
        // the log must be durable first.
        if self.wal.sync()? {
            self.counters.fsyncs += 1;
        }
        let seq = self.wal.next_seq();
        let mut w = ByteWriter::new();
        self.inner.encode_state(self.cfg.strategy, &mut w);
        let bytes = w.into_bytes();
        let payload_bytes = bytes.len();
        checkpoint::write(&self.dir, E::KIND, self.cfg.strategy, seq, &bytes)?;
        self.counters.checkpoints_written += 1;
        self.last_ckpt_seq = seq;
        let window = self.inner.window_policy();
        let clock = self.inner.clock();
        self.last_ckpt_window_end = window_end_opt(window, clock);
        if clock != Timestamp::NEG_INFINITY {
            self.wal.truncate_older(seq, window.watermark(clock))?;
        }
        self.mirror_counters();
        if let Some(hooks) = &self.obs {
            let elapsed = t0.elapsed();
            hooks.checkpoint_ns.record(elapsed.as_nanos() as u64);
            hooks.checkpoints.inc();
            hooks.fsyncs.add(self.counters.fsyncs - fsyncs_before);
            hooks.obs.journal().record(
                EventKind::Checkpoint,
                format!(
                    "seq={seq} strategy={:?} bytes={payload_bytes} elapsed_us={}",
                    self.cfg.strategy,
                    elapsed.as_micros()
                ),
            );
        }
        Ok(seq)
    }

    fn mirror_counters(&mut self) {
        let c = self.counters;
        if let Some(s) = self.inner.durability_stats_mut() {
            s.wal_bytes = c.wal_bytes;
            s.wal_appends = c.wal_appends;
            s.fsyncs = c.fsyncs;
            s.checkpoints_written = c.checkpoints_written;
            s.last_recovery_ms = c.last_recovery_ms;
        }
    }
}

fn window_end_opt(window: WindowPolicy, clock: Timestamp) -> Option<Timestamp> {
    if clock == Timestamp::NEG_INFINITY {
        None
    } else {
        Some(window.window_end(clock))
    }
}

impl Durable<Engine> {
    /// WAL-append then process: the durable ingestion entry point.
    pub fn process_batch<S: ResultSink>(
        &mut self,
        batch: &[StreamTuple],
        sink: &mut S,
    ) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.log_batch(batch)?;
        self.inner.process_batch(batch, sink);
        self.after_batch()
    }
}

impl Durable<ParallelRapqEngine> {
    /// WAL-append then process: the durable ingestion entry point.
    pub fn process_batch<S: ResultSink>(
        &mut self,
        batch: &[StreamTuple],
        sink: &mut S,
    ) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.log_batch(batch)?;
        self.inner.process_batch(batch, sink);
        self.after_batch()
    }
}

impl Durable<MultiQueryEngine> {
    /// WAL-append then process: the durable ingestion entry point.
    pub fn process_batch<S: MultiSink>(
        &mut self,
        batch: &[StreamTuple],
        sink: &mut S,
    ) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.log_batch(batch)?;
        self.inner.process_batch(batch, sink);
        self.after_batch()
    }
}

impl Durable<ParallelMultiEngine> {
    /// WAL-append then process: the durable ingestion entry point
    /// (evaluation fans out over the engine's worker pool).
    pub fn process_batch<S: MultiSink>(
        &mut self,
        batch: &[StreamTuple],
        sink: &mut S,
    ) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.log_batch(batch)?;
        self.inner.process_batch(batch, sink);
        self.after_batch()
    }
}

// ---------------------------------------------------------------------
// PersistEngine implementations
// ---------------------------------------------------------------------

fn encode_semantics(w: &mut ByteWriter, s: PathSemantics) {
    w.u8(match s {
        PathSemantics::Arbitrary => 0,
        PathSemantics::Simple => 1,
    });
}

fn decode_semantics(r: &mut ByteReader) -> Result<PathSemantics> {
    match r.u8()? {
        0 => Ok(PathSemantics::Arbitrary),
        1 => Ok(PathSemantics::Simple),
        other => Err(corrupt(format!("unknown path semantics {other}"))),
    }
}

fn compile(regex: &str, labels: &mut LabelInterner) -> Result<CompiledQuery> {
    CompiledQuery::compile(regex, labels)
        .map_err(|e| PersistError::Incompatible(format!("stored query {regex:?}: {e}")))
}

/// Turns a checkpointed edge list back into insert tuples (already in
/// timestamp order).
fn edges_to_tuples(edges: &checkpoint::EdgeList) -> Vec<StreamTuple> {
    edges
        .iter()
        .map(|&(u, v, l, ts)| StreamTuple::insert(ts, u, v, l))
        .collect()
}

impl PersistEngine for Engine {
    const KIND: u8 = 1;

    fn clock(&self) -> Timestamp {
        self.now()
    }

    fn window_policy(&self) -> WindowPolicy {
        self.config().window
    }

    fn encode_state(&self, strategy: CheckpointStrategy, w: &mut ByteWriter) {
        encode_semantics(w, self.semantics());
        w.str(&self.query().regex().to_string());
        checkpoint::encode_config(w, self.config());
        w.i64(self.now().0);
        checkpoint::encode_pairs(w, &self.emitted_pairs());
        checkpoint::encode_stats(w, self.stats());
        checkpoint::encode_graph(w, self.graph());
        if strategy == CheckpointStrategy::Full {
            match self {
                Engine::Arbitrary(e) => checkpoint::encode_forest(w, e.delta()),
                Engine::Simple(e) => checkpoint::encode_forest(w, e.delta()),
            }
        }
    }

    fn decode_state(
        r: &mut ByteReader,
        strategy: CheckpointStrategy,
        labels: &mut LabelInterner,
    ) -> Result<Engine> {
        let semantics = decode_semantics(r)?;
        let regex = r.str()?;
        let config = checkpoint::decode_config(r)?;
        let now = Timestamp(r.i64()?);
        let emitted = checkpoint::decode_pairs(r)?;
        let stats = checkpoint::decode_stats(r)?;
        let edges = checkpoint::decode_graph(r)?;
        let query = compile(&regex, labels)?;
        let mut engine = Engine::new(query, config, semantics);
        match strategy {
            CheckpointStrategy::Logical => {
                engine.process_batch(&edges_to_tuples(&edges), &mut NullSink);
            }
            CheckpointStrategy::Full => {
                let graph = engine.graph_mut();
                for &(u, v, l, ts) in &edges {
                    graph.insert(u, v, l, ts);
                }
                match &mut engine {
                    Engine::Arbitrary(e) => e.set_delta(checkpoint::decode_forest(r)?),
                    Engine::Simple(e) => e.set_delta(checkpoint::decode_forest(r)?),
                }
            }
        }
        engine.restore_cursor(now, emitted, stats);
        Ok(engine)
    }

    fn replay(&mut self, batch: &[StreamTuple]) {
        self.process_batch(batch, &mut NullSink);
    }

    fn durability_stats_mut(&mut self) -> Option<&mut EngineStats> {
        Some(self.stats_mut())
    }
}

/// Worker-pool size for a [`ParallelMultiEngine`] rebuilt from a
/// checkpoint: the checkpoint format is shared with the sequential
/// engine and deliberately stores no worker count (parallelism is
/// runtime configuration, not logical state) — recovery defaults to the
/// machine's parallelism and hosts resize afterwards
/// (`ParallelMultiEngine::resize_workers`).
fn default_pool_size() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// [`MultiQueryEngine`] and [`ParallelMultiEngine`] carry the same
/// logical state behind the same API, so they share `KIND` and byte
/// layout: a durable directory written under either host recovers as
/// either (switch `--workers` freely across restarts).
macro_rules! impl_multi_persist {
    ($ty:ty, $new:expr) => {
        impl PersistEngine for $ty {
            const KIND: u8 = 2;

            fn clock(&self) -> Timestamp {
                self.now()
            }

            fn window_policy(&self) -> WindowPolicy {
                self.window()
            }

            fn encode_state(&self, strategy: CheckpointStrategy, w: &mut ByteWriter) {
                checkpoint::encode_config(w, self.config());
                w.i64(self.now().0);
                let (seen, routed) = self.routing_stats();
                w.u64(seen);
                w.u64(routed);
                checkpoint::encode_graph(w, self.graph());
                // Registration slots, vacated ones included: query ids are slot
                // indexes and subscribers hold them across restarts, so a
                // deregistered slot is checkpointed as an explicit tombstone
                // rather than compacted away. A slot stores only its name and
                // its group id — evaluation state lives in the group table.
                w.u32(self.n_slots() as u32);
                for qi in 0..self.n_slots() as u32 {
                    let id = QueryId(qi);
                    let Some(g) = self.group_of(id) else {
                        w.u8(0); // vacant slot
                        continue;
                    };
                    w.u8(1);
                    w.str(self.name(id).unwrap_or(""));
                    w.u32(g);
                }
                // Evaluation groups, freed ones included (group ids in the
                // slot entries above are positional). Shared state — the Δ
                // forest, emitted-pair set, statistics — is checkpointed once
                // per group, not once per subscriber; recovery re-attaches
                // subscribers from the encoded membership, never by signature
                // re-matching.
                w.u32(self.n_group_slots() as u32);
                for g in 0..self.n_group_slots() as u32 {
                    let Some(engine) = self.group_engine(g) else {
                        w.u8(0); // freed group
                        continue;
                    };
                    w.u8(1);
                    encode_semantics(w, engine.semantics());
                    w.str(&engine.query().regex().to_string());
                    w.u8(self.group_is_complete(g).unwrap_or(false) as u8);
                    w.i64(engine.now().0);
                    checkpoint::encode_pairs(w, &engine.emitted_pairs());
                    checkpoint::encode_stats(w, engine.stats());
                    if strategy == CheckpointStrategy::Full {
                        match engine {
                            Engine::Arbitrary(e) => checkpoint::encode_forest(w, e.delta()),
                            Engine::Simple(e) => checkpoint::encode_forest(w, e.delta()),
                        }
                    }
                }
            }

            fn decode_state(
                r: &mut ByteReader,
                strategy: CheckpointStrategy,
                labels: &mut LabelInterner,
            ) -> Result<$ty> {
                let config = checkpoint::decode_config(r)?;
                let now = Timestamp(r.i64()?);
                let seen = r.u64()?;
                let routed = r.u64()?;
                let edges = checkpoint::decode_graph(r)?;

                // Slot table first (membership), then the group table
                // (evaluation state), then attach subscribers in slot order
                // so ids keep their meaning.
                let n_slots = r.count(1)?;
                let mut slot_meta: Vec<Option<(String, u32)>> = Vec::with_capacity(n_slots);
                for _ in 0..n_slots {
                    if r.u8()? == 0 {
                        slot_meta.push(None);
                        continue;
                    }
                    let name = r.str()?;
                    let group = r.u32()?;
                    slot_meta.push(Some((name, group)));
                }

                struct GroupState {
                    g: u32,
                    now: Timestamp,
                    emitted: Vec<srpq_common::ResultPair>,
                    stats: EngineStats,
                }
                #[allow(clippy::redundant_closure_call)]
                let mut multi: $ty = ($new)(config);
                let n_groups = r.count(1)?;
                let mut cursors = Vec::with_capacity(n_groups);
                for slot in 0..n_groups as u32 {
                    if r.u8()? == 0 {
                        // Tombstone of a freed group: burn the id so the slot
                        // entries above keep their meaning.
                        multi.push_vacant_group();
                        continue;
                    }
                    let semantics = decode_semantics(r)?;
                    let regex = r.str()?;
                    let complete = r.u8()? != 0;
                    let gnow = Timestamp(r.i64()?);
                    let emitted = checkpoint::decode_pairs(r)?;
                    let stats = checkpoint::decode_stats(r)?;
                    let query = compile(&regex, labels)?;
                    let g = multi.restore_push_group(query, semantics, complete);
                    if g != slot {
                        return Err(corrupt(format!(
                            "checkpoint group {slot} restored as group id {g}"
                        )));
                    }
                    if strategy == CheckpointStrategy::Full {
                        let engine = multi.group_engine_mut(g).expect("just restored");
                        match engine {
                            Engine::Arbitrary(e) => e.set_delta(checkpoint::decode_forest(r)?),
                            Engine::Simple(e) => e.set_delta(checkpoint::decode_forest(r)?),
                        }
                    }
                    cursors.push(GroupState {
                        g,
                        now: gnow,
                        emitted,
                        stats,
                    });
                }
                for (slot, meta) in slot_meta.into_iter().enumerate() {
                    match meta {
                        None => multi.push_vacant_slot(),
                        Some((name, group)) => {
                            if multi.group_engine(group).is_none() {
                                return Err(corrupt(format!(
                                    "checkpoint slot {slot} rides missing group {group}"
                                )));
                            }
                            let id = multi.restore_subscriber(name, group);
                            if id.0 as usize != slot {
                                return Err(corrupt(format!(
                                    "checkpoint slot {slot} restored as query id {id}"
                                )));
                            }
                        }
                    }
                }
                match strategy {
                    CheckpointStrategy::Logical => {
                        multi.process_batch(&edges_to_tuples(&edges), &mut NullMultiSink);
                    }
                    CheckpointStrategy::Full => {
                        let graph = multi.graph_mut();
                        for &(u, v, l, ts) in &edges {
                            graph.insert(u, v, l, ts);
                        }
                    }
                }
                for cur in cursors {
                    let engine = multi.group_engine_mut(cur.g).expect("restored above");
                    engine.restore_cursor(cur.now, cur.emitted, cur.stats);
                }
                multi.restore_cursor(now, seen, routed);
                Ok(multi)
            }

            fn replay(&mut self, batch: &[StreamTuple]) {
                self.process_batch(batch, &mut NullMultiSink);
            }

            fn durability_stats_mut(&mut self) -> Option<&mut EngineStats> {
                None
            }
        }
    };
}

impl_multi_persist!(MultiQueryEngine, MultiQueryEngine::with_config);
impl_multi_persist!(ParallelMultiEngine, |config| {
    ParallelMultiEngine::with_config(config, default_pool_size())
});

impl PersistEngine for ParallelRapqEngine {
    const KIND: u8 = 3;

    fn clock(&self) -> Timestamp {
        self.now()
    }

    fn window_policy(&self) -> WindowPolicy {
        self.config().window
    }

    fn encode_state(&self, strategy: CheckpointStrategy, w: &mut ByteWriter) {
        w.str(&self.query().regex().to_string());
        checkpoint::encode_config(w, self.config());
        w.u32(self.n_shards() as u32);
        w.u32(self.batch_capacity() as u32);
        w.i64(self.now().0);
        checkpoint::encode_graph(w, self.graph());
        for i in 0..self.n_shards() {
            checkpoint::encode_pairs(w, &self.shard_emitted(i));
            checkpoint::encode_stats(w, self.shard_stats(i));
            if strategy == CheckpointStrategy::Full {
                checkpoint::encode_forest(w, self.shard_delta(i));
            }
        }
    }

    fn decode_state(
        r: &mut ByteReader,
        strategy: CheckpointStrategy,
        labels: &mut LabelInterner,
    ) -> Result<ParallelRapqEngine> {
        let regex = r.str()?;
        let config = checkpoint::decode_config(r)?;
        let n_shards = r.u32()? as usize;
        let batch_capacity = r.u32()? as usize;
        if n_shards == 0 || n_shards > 1 << 16 {
            return Err(corrupt(format!("implausible shard count {n_shards}")));
        }
        let now = Timestamp(r.i64()?);
        let edges = checkpoint::decode_graph(r)?;
        let query = compile(&regex, labels)?;
        let mut engine = ParallelRapqEngine::new(query, config, n_shards, batch_capacity);

        struct ShardState {
            emitted: Vec<srpq_common::ResultPair>,
            stats: EngineStats,
            delta: Option<Forest<srpq_core::delta::Unique>>,
        }
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let emitted = checkpoint::decode_pairs(r)?;
            let stats = checkpoint::decode_stats(r)?;
            let delta = if strategy == CheckpointStrategy::Full {
                Some(checkpoint::decode_forest(r)?)
            } else {
                None
            };
            shards.push(ShardState {
                emitted,
                stats,
                delta,
            });
        }
        match strategy {
            CheckpointStrategy::Logical => {
                engine.process_batch(&edges_to_tuples(&edges), &mut NullSink);
            }
            CheckpointStrategy::Full => {
                let graph = engine.graph_mut();
                for &(u, v, l, ts) in &edges {
                    graph.insert(u, v, l, ts);
                }
            }
        }
        for (i, s) in shards.into_iter().enumerate() {
            if let Some(delta) = s.delta {
                engine.set_shard_delta(i, delta);
            }
            engine.restore_shard_cursor(i, s.emitted, s.stats);
        }
        engine.restore_clock(now);
        Ok(engine)
    }

    fn replay(&mut self, batch: &[StreamTuple]) {
        self.process_batch(batch, &mut NullSink);
    }

    fn durability_stats_mut(&mut self) -> Option<&mut EngineStats> {
        None
    }
}
