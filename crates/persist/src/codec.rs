//! Little-endian byte codec shared by the WAL and checkpoint formats,
//! plus the crate error type.
//!
//! Deliberately minimal: fixed-width integers, length-prefixed byte
//! strings, and nothing self-describing — every on-disk structure is
//! versioned by its file magic and guarded by a trailing CRC32
//! ([`srpq_common::crc32::crc32`]), so the decoder can be strict and simple.

use std::fmt;

/// Errors produced by the durability subsystem.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// Stored bytes failed validation (bad magic, checksum mismatch,
    /// truncated structure, out-of-range value).
    Corrupt(String),
    /// The stored state is well-formed but cannot be applied (wrong
    /// engine kind, unknown version, query fails to recompile).
    Incompatible(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Corrupt(m) => write!(f, "corrupt durable state: {m}"),
            PersistError::Incompatible(m) => write!(f, "incompatible durable state: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, PersistError>;

/// Constructs a [`PersistError::Corrupt`].
pub fn corrupt(msg: impl Into<String>) -> PersistError {
    PersistError::Corrupt(msg.into())
}

/// An append-only byte writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes raw bytes verbatim.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }
}

/// A strict cursor over stored bytes; every read is bounds-checked.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor consumed everything.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "truncated: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`, little-endian.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let b = self.bytes(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| corrupt("string is not UTF-8"))
    }

    /// Reads a `u32` element count, validating it against the bytes
    /// actually available (`min_elem_bytes` each) so a corrupt length
    /// cannot trigger a huge allocation.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        if min_elem_bytes > 0 && n > self.remaining() / min_elem_bytes {
            return Err(corrupt(format!(
                "implausible element count {n} for {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(i64::MIN);
        w.str("hello δ");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.str().unwrap(), "hello δ");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.u32().is_err());
        let mut r = ByteReader::new(&[5, 0, 0, 0, b'a']);
        assert!(r.str().is_err(), "length past end must error");
    }

    #[test]
    fn implausible_counts_rejected() {
        let mut w = ByteWriter::new();
        w.u32(1_000_000);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.count(8).is_err());
    }
}
