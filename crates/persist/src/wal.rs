//! The segmented write-ahead log of stream tuples.
//!
//! The WAL makes the engines' input durable: every batch is appended —
//! and, depending on the [`SyncPolicy`], fsynced — *before* the engine
//! mutates any state, so a crash can lose at most the outputs of the
//! torn batch, never its inputs. Because the engines' state is a
//! function of the live window (see `srpq_persist::checkpoint`), the
//! log does not need to retain the whole stream: segments that lie
//! entirely before the latest checkpoint *and* entirely outside the
//! window are deleted by [`Wal::truncate_older`], bounding recovery
//! cost by window size rather than stream length (the design point of
//! Wu et al.'s parallel-recovery recipe applied to our setting).
//!
//! # On-disk format
//!
//! A log directory holds segment files named `wal-{base_seq:016x}.seg`:
//!
//! ```text
//! segment  := header record*
//! header   := magic "SRPQWAL1" | u32 version = 1 | u32 reserved | u64 base_seq
//! record   := u32 payload_len | u64 seq | u32 crc32(payload) | payload
//! payload  := wire-encoded tuples (srpq_common::wire, 21 bytes each)
//! ```
//!
//! `seq` numbers tuples globally across segments (a record's `seq` is
//! the index of its first tuple). Records are validated on recovery by
//! length sanity, sequence continuity, and CRC32; a torn record at the
//! tail of the *last* segment is truncated away (the crash interrupted
//! that write), while corruption anywhere else is reported as an error.

use crate::codec::{corrupt, PersistError, Result};
use srpq_common::{crc32, wire, StreamTuple, Timestamp};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const SEGMENT_MAGIC: &[u8; 8] = b"SRPQWAL1";
const SEGMENT_VERSION: u32 = 1;
const SEGMENT_HEADER_BYTES: u64 = 8 + 4 + 4 + 8;
const RECORD_HEADER_BYTES: usize = 4 + 8 + 4;
/// Upper bound on one record's payload (sanity guard against corrupt
/// length fields).
const MAX_RECORD_PAYLOAD: u32 = 64 << 20;

/// When the WAL issues `fsync` (durability vs throughput knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Never fsync explicitly; the OS flushes when it pleases. Fastest;
    /// a crash may lose recently appended batches.
    None,
    /// One fsync per appended batch: a batch handed to the engine is
    /// durable before any of its effects exist. Default.
    #[default]
    Batch,
    /// One record + fsync per *tuple*: tuple-granular durability, the
    /// upper bound on logging cost.
    Always,
}

impl SyncPolicy {
    /// Parses the CLI spelling (`none` | `batch` | `always`).
    pub fn parse(s: &str) -> Option<SyncPolicy> {
        match s {
            "none" => Some(SyncPolicy::None),
            "batch" => Some(SyncPolicy::Batch),
            "always" => Some(SyncPolicy::Always),
            _ => None,
        }
    }
}

/// One recovered WAL record: the global sequence number of its first
/// tuple plus the tuples themselves.
#[derive(Debug, Clone)]
pub struct WalBatch {
    /// Global index of `tuples[0]` in the logged stream.
    pub seq: u64,
    /// The logged tuples, in append order.
    pub tuples: Vec<StreamTuple>,
}

/// Metadata of one segment (sealed or active).
#[derive(Debug, Clone)]
struct SegMeta {
    path: PathBuf,
    base_seq: u64,
    /// Exclusive end: sequence number one past the last logged tuple.
    end_seq: u64,
    records: u64,
    bytes: u64,
    min_ts: Timestamp,
    max_ts: Timestamp,
}

impl SegMeta {
    fn empty(path: PathBuf, base_seq: u64) -> SegMeta {
        SegMeta {
            path,
            base_seq,
            end_seq: base_seq,
            records: 0,
            bytes: SEGMENT_HEADER_BYTES,
            min_ts: Timestamp::INFINITY,
            max_ts: Timestamp::NEG_INFINITY,
        }
    }
}

/// Aggregate statistics over a log directory (the `wal-info` command).
#[derive(Debug, Clone, Default)]
pub struct WalInfo {
    /// Number of segment files (including the active one).
    pub segments: usize,
    /// Total records across segments.
    pub records: u64,
    /// Total logged tuples.
    pub tuples: u64,
    /// Total bytes on disk (headers included).
    pub bytes: u64,
    /// Global sequence range `[first, end)` covered by the log.
    pub seq_range: (u64, u64),
    /// Timestamp range of logged tuples (`None` when empty).
    pub ts_range: Option<(Timestamp, Timestamp)>,
}

/// A segmented write-ahead log rooted at one directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    segment_bytes: u64,
    sealed: Vec<SegMeta>,
    active: Option<(File, SegMeta)>,
    next_seq: u64,
    appended_records: u64,
    appended_bytes: u64,
    fsyncs: u64,
}

impl Wal {
    /// Opens (or initializes) the log under `dir`, replaying every valid
    /// record. Returns the log positioned for appending plus the
    /// recovered batches in sequence order. A torn tail on the last
    /// segment is truncated; corruption elsewhere is an error.
    pub fn open(dir: &Path, segment_bytes: u64) -> Result<(Wal, Vec<WalBatch>)> {
        fs::create_dir_all(dir)?;
        let (mut sealed, batches, next_seq) = scan_dir(dir, true)?;
        let active = match sealed.pop() {
            Some(meta) => {
                let file = OpenOptions::new().append(true).open(&meta.path)?;
                Some((file, meta))
            }
            None => None,
        };
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                segment_bytes: segment_bytes.max(SEGMENT_HEADER_BYTES + 1),
                sealed,
                active,
                next_seq,
                appended_records: 0,
                appended_bytes: 0,
                fsyncs: 0,
            },
            batches,
        ))
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number the next appended tuple will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records appended through this handle.
    pub fn appended_records(&self) -> u64 {
        self.appended_records
    }

    /// Bytes appended through this handle.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// `fsync`s issued through this handle.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Appends one record holding `tuples`, rotating the segment first
    /// if the active one is full. Returns the bytes written. Rejects
    /// empty batches and tuples with negative event timestamps (the
    /// wire codec is sign-agnostic, but the WAL boundary is where
    /// garbage is stopped).
    pub fn append(&mut self, tuples: &[StreamTuple]) -> Result<u64> {
        if tuples.is_empty() {
            return Err(PersistError::Incompatible("empty WAL append".into()));
        }
        if let Some(t) = tuples.iter().find(|t| t.ts < Timestamp::ZERO) {
            return Err(PersistError::Incompatible(format!(
                "tuple with negative timestamp {} refused at the WAL boundary",
                t.ts
            )));
        }
        if self
            .active
            .as_ref()
            .is_some_and(|(_, m)| m.bytes >= self.segment_bytes)
        {
            self.rotate()?;
        }
        if self.active.is_none() {
            self.open_fresh_segment()?;
        }

        let payload = wire::encode_stream(tuples);
        let mut record = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&self.next_seq.to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);

        let (file, meta) = self.active.as_mut().expect("active segment ensured");
        file.write_all(&record)?;
        meta.bytes += record.len() as u64;
        meta.records += 1;
        meta.end_seq += tuples.len() as u64;
        for t in tuples {
            meta.min_ts = meta.min_ts.min(t.ts);
            meta.max_ts = meta.max_ts.max(t.ts);
        }
        self.next_seq = meta.end_seq;
        self.appended_records += 1;
        self.appended_bytes += record.len() as u64;
        Ok(record.len() as u64)
    }

    /// Flushes and fsyncs the active segment. Returns whether an fsync
    /// was actually issued (`false` when nothing is open yet, so
    /// callers don't overcount their durability statistics).
    pub fn sync(&mut self) -> Result<bool> {
        if let Some((file, _)) = self.active.as_mut() {
            file.flush()?;
            file.sync_data()?;
            self.fsyncs += 1;
            return Ok(true);
        }
        Ok(false)
    }

    /// Seals the active segment and starts a new one.
    fn rotate(&mut self) -> Result<()> {
        if let Some((file, meta)) = self.active.take() {
            file.sync_data().ok();
            self.sealed.push(meta);
        }
        self.open_fresh_segment()
    }

    fn open_fresh_segment(&mut self) -> Result<()> {
        let base = self.next_seq;
        let path = self.dir.join(format!("wal-{base:016x}.seg"));
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(SEGMENT_HEADER_BYTES as usize);
        header.extend_from_slice(SEGMENT_MAGIC);
        header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        header.extend_from_slice(&base.to_le_bytes());
        file.write_all(&header)?;
        self.active = Some((file, SegMeta::empty(path, base)));
        Ok(())
    }

    /// Deletes sealed segments that are both fully covered by the
    /// checkpoint at `upto_seq` *and* entirely older than the window
    /// (`max_ts <= watermark`) — either condition alone is unsafe:
    /// recovery needs the post-checkpoint suffix, and a checkpointless
    /// log needs the live window. Returns the number of segments
    /// removed. The active segment is never touched.
    pub fn truncate_older(&mut self, upto_seq: u64, watermark: Timestamp) -> Result<usize> {
        let mut removed = 0;
        let mut keep = Vec::with_capacity(self.sealed.len());
        for meta in self.sealed.drain(..) {
            if meta.end_seq <= upto_seq && meta.max_ts <= watermark {
                fs::remove_file(&meta.path)?;
                removed += 1;
            } else {
                keep.push(meta);
            }
        }
        self.sealed = keep;
        Ok(removed)
    }

    /// Aggregate statistics over the log.
    pub fn info(&self) -> WalInfo {
        aggregate_info(
            self.sealed
                .iter()
                .chain(self.active.as_ref().map(|(_, m)| m)),
            self.next_seq,
        )
    }

    /// Read-only inspection of a log directory: scans and validates
    /// every segment **without any repair side effect** — no directory
    /// creation, no torn-tail truncation, no torn-segment deletion —
    /// so an operator can look at post-crash state before deciding
    /// anything. A missing directory is an error, not an empty log.
    /// Returns the aggregate info and the readable batches.
    pub fn inspect(dir: &Path) -> Result<(WalInfo, Vec<WalBatch>)> {
        if !dir.is_dir() {
            return Err(PersistError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("{} is not a directory", dir.display()),
            )));
        }
        let (metas, batches, next_seq) = scan_dir(dir, false)?;
        Ok((aggregate_info(metas.iter(), next_seq), batches))
    }
}

/// Folds segment metadata into a [`WalInfo`].
fn aggregate_info<'a>(metas: impl Iterator<Item = &'a SegMeta>, next_seq: u64) -> WalInfo {
    let mut info = WalInfo::default();
    let mut first_seq = u64::MAX;
    let mut min_ts = Timestamp::INFINITY;
    let mut max_ts = Timestamp::NEG_INFINITY;
    for m in metas {
        info.segments += 1;
        info.records += m.records;
        info.tuples += m.end_seq - m.base_seq;
        info.bytes += m.bytes;
        first_seq = first_seq.min(m.base_seq);
        min_ts = min_ts.min(m.min_ts);
        max_ts = max_ts.max(m.max_ts);
    }
    info.seq_range = if info.segments == 0 {
        (next_seq, next_seq)
    } else {
        (first_seq, next_seq)
    };
    if info.tuples > 0 {
        info.ts_range = Some((min_ts, max_ts));
    }
    info
}

/// Scans every segment under `dir` in name order. Returns the segment
/// metas (in order; the last one is the append candidate), the decoded
/// batches, and the next sequence number. With `repair` set, a torn
/// tail on the last segment is truncated away and a last segment whose
/// header never finished is deleted; without it the scan is strictly
/// read-only (the `wal-info` path).
fn scan_dir(dir: &Path, repair: bool) -> Result<(Vec<SegMeta>, Vec<WalBatch>, u64)> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().and_then(|e| e.to_str()) == Some("seg")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-"))
        })
        .collect();
    paths.sort();

    let mut metas = Vec::new();
    let mut batches = Vec::new();
    // The first surviving segment (truncation may have deleted the
    // log prefix) defines the starting sequence; later segments must
    // be continuous with it.
    let mut next_seq: Option<u64> = None;
    let n = paths.len();
    for (i, path) in paths.into_iter().enumerate() {
        let last = i + 1 == n;
        match scan_segment(&path, &mut batches, next_seq, last, repair)? {
            Some(meta) => {
                next_seq = Some(meta.end_seq);
                metas.push(meta);
            }
            None => {
                // Header never finished on the last segment: nothing
                // was logged into it (removed when `repair`).
                debug_assert!(last);
            }
        }
    }
    let next_seq = next_seq.unwrap_or(0);
    Ok((metas, batches, next_seq))
}

/// Scans one segment, pushing valid batches. Returns the segment's
/// metadata, or `None` if the (last) segment's header never finished
/// being written (shorter than a header; the file is removed when
/// `repair` is set). `expected_seq` checks cross-segment continuity
/// (`None` for the first surviving segment, whose base is taken as
/// authoritative).
fn scan_segment(
    path: &Path,
    batches: &mut Vec<WalBatch>,
    expected_seq: Option<u64>,
    last: bool,
    repair: bool,
) -> Result<Option<SegMeta>> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let name = path.display();
    if data.len() < SEGMENT_HEADER_BYTES as usize {
        if last {
            // The crash interrupted segment creation: nothing was logged
            // into it yet, so dropping it loses nothing.
            if repair {
                fs::remove_file(path)?;
            }
            return Ok(None);
        }
        return Err(corrupt(format!("segment {name}: torn header")));
    }
    if &data[..8] != SEGMENT_MAGIC {
        // A full-length header with the wrong magic is *corruption* of
        // data that was once valid — deleting the segment here would
        // silently discard every acknowledged record in it. Report it,
        // even for the last segment.
        return Err(corrupt(format!("segment {name}: bad magic")));
    }
    let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
    if version != SEGMENT_VERSION {
        return Err(PersistError::Incompatible(format!(
            "segment {name}: unknown version {version}"
        )));
    }
    let base_seq = u64::from_le_bytes(data[16..24].try_into().unwrap());
    if let Some(expected) = expected_seq {
        if base_seq != expected {
            return Err(corrupt(format!(
                "segment {name}: base seq {base_seq}, expected {expected}"
            )));
        }
    }

    let mut meta = SegMeta::empty(path.to_path_buf(), base_seq);
    let mut offset = SEGMENT_HEADER_BYTES as usize;
    while offset < data.len() {
        match scan_record(&data[offset..], meta.end_seq) {
            Ok((tuples, consumed)) => {
                for t in &tuples {
                    meta.min_ts = meta.min_ts.min(t.ts);
                    meta.max_ts = meta.max_ts.max(t.ts);
                }
                batches.push(WalBatch {
                    seq: meta.end_seq,
                    tuples,
                });
                meta.end_seq += batches.last().unwrap().tuples.len() as u64;
                meta.records += 1;
                offset += consumed;
            }
            Err(e) => {
                if last {
                    // Torn tail: with `repair`, truncate the file back
                    // to the last good record so appending resumes
                    // cleanly; read-only scans just stop here.
                    if repair {
                        let f = OpenOptions::new().write(true).open(path)?;
                        f.set_len(offset as u64)?;
                        f.sync_data().ok();
                    }
                    break;
                }
                return Err(corrupt(format!("segment {name} at offset {offset}: {e}")));
            }
        }
    }
    meta.bytes = offset as u64;
    Ok(Some(meta))
}

/// Validates and decodes one record at the start of `data`. Returns the
/// tuples and the total bytes consumed.
fn scan_record(data: &[u8], expected_seq: u64) -> Result<(Vec<StreamTuple>, usize)> {
    if data.len() < RECORD_HEADER_BYTES {
        return Err(corrupt("torn record header"));
    }
    let len = u32::from_le_bytes(data[0..4].try_into().unwrap());
    let seq = u64::from_le_bytes(data[4..12].try_into().unwrap());
    let stored_crc = u32::from_le_bytes(data[12..16].try_into().unwrap());
    if len == 0 || len > MAX_RECORD_PAYLOAD || !(len as usize).is_multiple_of(wire::TUPLE_WIRE_SIZE)
    {
        return Err(corrupt(format!("implausible record length {len}")));
    }
    if seq != expected_seq {
        return Err(corrupt(format!(
            "record seq {seq}, expected {expected_seq}"
        )));
    }
    let end = RECORD_HEADER_BYTES + len as usize;
    if data.len() < end {
        return Err(corrupt("torn record payload"));
    }
    let payload = &data[RECORD_HEADER_BYTES..end];
    if crc32(payload) != stored_crc {
        return Err(corrupt("record checksum mismatch"));
    }
    let tuples = wire::decode_stream(payload).ok_or_else(|| corrupt("malformed tuple payload"))?;
    if let Some(t) = tuples.iter().find(|t| t.ts < Timestamp::ZERO) {
        return Err(corrupt(format!(
            "logged tuple with negative timestamp {}",
            t.ts
        )));
    }
    Ok((tuples, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use srpq_common::{Label, VertexId};

    fn tup(seq: i64) -> StreamTuple {
        StreamTuple::insert(
            Timestamp(seq),
            VertexId(seq as u32),
            VertexId(seq as u32 + 1),
            Label(0),
        )
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srpq-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_sync_reopen_round_trip() {
        let dir = tmpdir("roundtrip");
        let (mut wal, recovered) = Wal::open(&dir, 1 << 20).unwrap();
        assert!(recovered.is_empty());
        wal.append(&[tup(1), tup(2)]).unwrap();
        wal.append(&[tup(3)]).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.next_seq(), 3);
        drop(wal);

        let (wal, recovered) = Wal::open(&dir, 1 << 20).unwrap();
        assert_eq!(wal.next_seq(), 3);
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].seq, 0);
        assert_eq!(recovered[0].tuples, vec![tup(1), tup(2)]);
        assert_eq!(recovered[1].seq, 2);
        let info = wal.info();
        assert_eq!(info.tuples, 3);
        assert_eq!(info.ts_range, Some((Timestamp(1), Timestamp(3))));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_and_truncation() {
        let dir = tmpdir("rotate");
        // Tiny segments: every append rotates.
        let (mut wal, _) = Wal::open(&dir, 1).unwrap();
        for i in 0..5 {
            wal.append(&[tup(i)]).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(wal.info().segments, 5);

        // Only segments before seq 3 AND ts <= 2 go.
        let removed = wal.truncate_older(3, Timestamp(2)).unwrap();
        assert_eq!(removed, 3);
        drop(wal);
        let (wal, recovered) = Wal::open(&dir, 1).unwrap();
        // Recovery sees only the surviving suffix, still seq-continuous
        // from its first surviving record... base continuity starts at 0
        // only when segment 0 survives; reopening after truncation must
        // therefore tolerate a later first base.
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].seq, 3);
        assert_eq!(wal.next_seq(), 5);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = tmpdir("torn");
        let (mut wal, _) = Wal::open(&dir, 1 << 20).unwrap();
        wal.append(&[tup(1)]).unwrap();
        wal.append(&[tup(2)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Tear the last record: chop 5 bytes off the file.
        let seg = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 5)
            .unwrap();

        let (mut wal, recovered) = Wal::open(&dir, 1 << 20).unwrap();
        assert_eq!(recovered.len(), 1, "torn record dropped");
        assert_eq!(wal.next_seq(), 1);
        wal.append(&[tup(3)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&dir, 1 << 20).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[1].tuples, vec![tup(3)]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_in_sealed_segment_is_reported() {
        let dir = tmpdir("flip");
        let (mut wal, _) = Wal::open(&dir, 1).unwrap();
        wal.append(&[tup(1)]).unwrap();
        wal.append(&[tup(2)]).unwrap(); // second segment seals the first
        wal.sync().unwrap();
        drop(wal);
        let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segs.sort();
        let mut bytes = fs::read(&segs[0]).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // flip inside the first segment's payload
        fs::write(&segs[0], &bytes).unwrap();
        match Wal::open(&dir, 1) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("checksum")),
            other => panic!("expected corruption error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_on_last_segment_is_an_error_not_a_deletion() {
        // A full-length header with a flipped magic byte is corruption
        // of once-valid data; open must refuse, and the file must
        // survive for forensics.
        let dir = tmpdir("badmagic");
        let (mut wal, _) = Wal::open(&dir, 1 << 20).unwrap();
        wal.append(&[tup(1), tup(2)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let seg = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let mut bytes = fs::read(&seg).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        assert!(matches!(
            Wal::open(&dir, 1 << 20),
            Err(PersistError::Corrupt(_))
        ));
        assert!(seg.exists(), "corrupt segment must not be deleted");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_torn_segment_creation_is_removed() {
        // A last segment shorter than its header never held a record:
        // open drops it and continues from the previous segment.
        let dir = tmpdir("shorttorn");
        let (mut wal, _) = Wal::open(&dir, 1).unwrap();
        wal.append(&[tup(1)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        fs::write(dir.join("wal-00000000000000ff.seg"), b"SRPQ").unwrap();
        let (wal, recovered) = Wal::open(&dir, 1).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(wal.next_seq(), 1);
        assert!(!dir.join("wal-00000000000000ff.seg").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspect_is_strictly_read_only() {
        let dir = tmpdir("inspect");
        // Missing directory: an error, never silent creation.
        assert!(Wal::inspect(&dir).is_err());
        assert!(!dir.exists());

        let (mut wal, _) = Wal::open(&dir, 1 << 20).unwrap();
        wal.append(&[tup(1)]).unwrap();
        wal.append(&[tup(2)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Tear the tail; inspect must report the readable prefix and
        // leave the file byte-identical.
        let seg = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        let before = fs::read(&seg).unwrap();
        let (info, batches) = Wal::inspect(&dir).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(info.tuples, 1);
        assert_eq!(fs::read(&seg).unwrap(), before, "inspect mutated the log");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn negative_timestamps_refused_at_boundary() {
        let dir = tmpdir("negts");
        let (mut wal, _) = Wal::open(&dir, 1 << 20).unwrap();
        let bad = StreamTuple::insert(Timestamp(-1), VertexId(0), VertexId(1), Label(0));
        assert!(wal.append(&[bad]).is_err());
        assert!(wal.append(&[]).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
