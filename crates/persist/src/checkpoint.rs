//! Checkpoint files: periodic durable snapshots of engine state.
//!
//! A checkpoint at WAL sequence `p` captures everything the engine
//! needs to continue as if it had processed tuples `0..p` — recovery
//! loads the newest valid checkpoint and replays only the WAL suffix
//! `p..`. Two strategies mirror the classic log-vs-snapshot tradeoff:
//!
//! * [`CheckpointStrategy::Logical`] — serialize only the live window
//!   content (the graph's edge set) plus the engine cursor (clock,
//!   result-deduplication set, statistics). Small and fast to write;
//!   recovery rebuilds the Δ spanning forest by replaying the window
//!   content through the engine. Because the live window is a bounded
//!   log suffix, the rebuild cost is bounded by window size, never
//!   stream length (§5.6 setting + Wu et al.'s recovery recipe).
//! * [`CheckpointStrategy::Full`] — additionally serialize the Δ-forest
//!   arenas ([`srpq_core::delta::TreeSnap`]) exactly: slot assignment,
//!   free lists, occurrence order, and RSPQ markings all survive, so
//!   recovery skips the rebuild and restarts near-instantly at the cost
//!   of larger checkpoint files.
//!
//! # On-disk format
//!
//! `ckpt-{seq:016x}.ck`, written to a temporary name and renamed into
//! place (atomic on POSIX), older checkpoints pruned after a successful
//! write:
//!
//! ```text
//! file   := body crc32(body)
//! body   := magic "SRPQCKP1" | u32 version = 3 | u8 kind | u8 strategy
//!           | u64 seq | payload (engine-kind specific, see
//!           `srpq_persist::durable::PersistEngine`)
//! ```

use crate::codec::{corrupt, ByteReader, ByteWriter, PersistError, Result};
use srpq_common::{crc32, Label, ResultPair, Timestamp, VertexId};
use srpq_core::config::RefreshPolicy;
use srpq_core::delta::{Forest, NodeSnap, SnapshotExt, TreeSnap};
use srpq_core::{EngineConfig, EngineStats};
use srpq_graph::{WindowGraph, WindowPolicy};
use std::fs;
use std::path::{Path, PathBuf};

const CKPT_MAGIC: &[u8; 8] = b"SRPQCKP1";
// v2: `EngineStats` gained `tuples_routed`/`eval_ns` mid-record, so v1
// checkpoints must be refused rather than misdecoded.
// v3: `EngineStats` gained the Δ occupancy gauges
// (`delta_nodes_live`/`delta_capacity`) and `compactions`.
// v4: `EngineConfig` gained `shared_groups`, and the multi-engine
// payload (KIND=2) switched from per-slot engines to shared evaluation
// groups plus subscriber tags.
const CKPT_VERSION: u32 = 4;

/// What a checkpoint stores beyond the engine cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointStrategy {
    /// Live window tuples + engine cursor; Δ is rebuilt by replay on
    /// recovery. Default.
    #[default]
    Logical,
    /// Additionally the exact Δ-forest arenas and result sets, for
    /// near-instant restart.
    Full,
}

impl CheckpointStrategy {
    /// Parses the CLI spelling (`logical` | `full`).
    pub fn parse(s: &str) -> Option<CheckpointStrategy> {
        match s {
            "logical" => Some(CheckpointStrategy::Logical),
            "full" => Some(CheckpointStrategy::Full),
            _ => None,
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            CheckpointStrategy::Logical => 0,
            CheckpointStrategy::Full => 1,
        }
    }

    fn from_u8(v: u8) -> Result<CheckpointStrategy> {
        match v {
            0 => Ok(CheckpointStrategy::Logical),
            1 => Ok(CheckpointStrategy::Full),
            other => Err(corrupt(format!("unknown checkpoint strategy {other}"))),
        }
    }
}

impl std::fmt::Display for CheckpointStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointStrategy::Logical => write!(f, "logical"),
            CheckpointStrategy::Full => write!(f, "full"),
        }
    }
}

/// Parsed checkpoint header.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointHeader {
    /// Engine-kind discriminant (see `PersistEngine::KIND`).
    pub kind: u8,
    /// Strategy the payload was written under.
    pub strategy: CheckpointStrategy,
    /// WAL sequence number the checkpoint covers (tuples `0..seq` are
    /// reflected in the payload).
    pub seq: u64,
}

/// Writes a checkpoint file for `seq`, atomically, and prunes older
/// checkpoint files on success. Returns the final path.
pub fn write(
    dir: &Path,
    kind: u8,
    strategy: CheckpointStrategy,
    seq: u64,
    payload: &[u8],
) -> Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let mut body = Vec::with_capacity(8 + 4 + 1 + 1 + 8 + payload.len() + 4);
    body.extend_from_slice(CKPT_MAGIC);
    body.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    body.push(kind);
    body.push(strategy.to_u8());
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(payload);
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());

    let final_path = dir.join(format!("ckpt-{seq:016x}.ck"));
    let tmp_path = dir.join(format!("ckpt-{seq:016x}.ck.tmp"));
    {
        use std::io::Write as _;
        let mut f = fs::File::create(&tmp_path)?;
        f.write_all(&body)?;
        // The data must be on disk *before* the rename publishes it —
        // older checkpoints are pruned and WAL segments truncated
        // against this file, so a torn new checkpoint after power loss
        // would otherwise destroy the only recovery anchor.
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Best-effort directory sync so the rename itself is durable.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    for old in list_checkpoints(dir)? {
        if old != final_path {
            let _ = fs::remove_file(old);
        }
    }
    Ok(final_path)
}

/// Checkpoint files under `dir`, sorted ascending by sequence.
fn list_checkpoints(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().and_then(|e| e.to_str()) == Some("ck")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("ckpt-"))
        })
        .collect();
    out.sort();
    Ok(out)
}

/// Loads the newest *valid* checkpoint under `dir`, falling back to
/// older ones if the newest is torn or corrupt. Returns `None` when no
/// checkpoint exists at all.
pub fn load_latest(dir: &Path) -> Result<Option<(CheckpointHeader, Vec<u8>)>> {
    let paths = match list_checkpoints(dir) {
        Ok(p) => p,
        Err(PersistError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut last_err: Option<PersistError> = None;
    for path in paths.iter().rev() {
        match load_one(path) {
            Ok(found) => return Ok(Some(found)),
            Err(e) => last_err = Some(e),
        }
    }
    match last_err {
        // Every present checkpoint is corrupt: that is an error, not a
        // fresh start — silently ignoring it would replay from nothing.
        Some(e) => Err(e),
        None => Ok(None),
    }
}

fn load_one(path: &Path) -> Result<(CheckpointHeader, Vec<u8>)> {
    let data = fs::read(path)?;
    let name = path.display();
    if data.len() < 8 + 4 + 1 + 1 + 8 + 4 {
        return Err(corrupt(format!("checkpoint {name}: truncated")));
    }
    let (body, crc_bytes) = data.split_at(data.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored {
        return Err(corrupt(format!("checkpoint {name}: checksum mismatch")));
    }
    if &body[..8] != CKPT_MAGIC {
        return Err(corrupt(format!("checkpoint {name}: bad magic")));
    }
    let version = u32::from_le_bytes(body[8..12].try_into().unwrap());
    if version != CKPT_VERSION {
        return Err(PersistError::Incompatible(format!(
            "checkpoint {name}: unknown version {version}"
        )));
    }
    let kind = body[12];
    let strategy = CheckpointStrategy::from_u8(body[13])?;
    let seq = u64::from_le_bytes(body[14..22].try_into().unwrap());
    Ok((
        CheckpointHeader {
            kind,
            strategy,
            seq,
        },
        body[22..].to_vec(),
    ))
}

// ---------------------------------------------------------------------
// Shared sub-structure codecs used by the per-engine state encoders.
// ---------------------------------------------------------------------

/// Encodes an [`EngineConfig`].
pub(crate) fn encode_config(w: &mut ByteWriter, c: &EngineConfig) {
    w.i64(c.window.window_size);
    w.i64(c.window.slide);
    w.u8(c.dedup_results as u8);
    w.u8(c.report_invalidations as u8);
    w.u8(match c.refresh {
        RefreshPolicy::None => 0,
        RefreshPolicy::Node => 1,
        RefreshPolicy::Subtree => 2,
    });
    match c.rspq_extend_budget {
        None => w.u8(0),
        Some(b) => {
            w.u8(1);
            w.u64(b);
        }
    }
    w.u8(c.shared_groups as u8);
}

/// Decodes an [`EngineConfig`].
pub(crate) fn decode_config(r: &mut ByteReader) -> Result<EngineConfig> {
    let window_size = r.i64()?;
    let slide = r.i64()?;
    if window_size <= 0 || slide <= 0 {
        return Err(corrupt("non-positive window policy"));
    }
    let dedup_results = r.u8()? != 0;
    let report_invalidations = r.u8()? != 0;
    let refresh = match r.u8()? {
        0 => RefreshPolicy::None,
        1 => RefreshPolicy::Node,
        2 => RefreshPolicy::Subtree,
        other => return Err(corrupt(format!("unknown refresh policy {other}"))),
    };
    let rspq_extend_budget = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        other => return Err(corrupt(format!("bad budget tag {other}"))),
    };
    let shared_groups = r.u8()? != 0;
    Ok(EngineConfig {
        window: WindowPolicy::new(window_size, slide),
        dedup_results,
        report_invalidations,
        refresh,
        rspq_extend_budget,
        shared_groups,
    })
}

/// Encodes [`EngineStats`] (all counters, declaration order).
pub(crate) fn encode_stats(w: &mut ByteWriter, s: &EngineStats) {
    for v in [
        s.tuples_processed,
        s.tuples_discarded,
        s.deletions_processed,
        s.insert_calls,
        s.results_emitted,
        s.results_invalidated,
        s.expiry_runs,
        s.nodes_expired,
        s.expiry_nanos,
        s.conflicts_detected,
        s.nodes_unmarked,
        s.budget_exhausted,
        s.tuples_routed,
        s.eval_ns,
        s.wal_bytes,
        s.wal_appends,
        s.fsyncs,
        s.checkpoints_written,
        s.last_recovery_ms,
        s.delta_nodes_live,
        s.delta_capacity,
        s.compactions,
    ] {
        w.u64(v);
    }
}

/// Decodes [`EngineStats`].
pub(crate) fn decode_stats(r: &mut ByteReader) -> Result<EngineStats> {
    Ok(EngineStats {
        tuples_processed: r.u64()?,
        tuples_discarded: r.u64()?,
        deletions_processed: r.u64()?,
        insert_calls: r.u64()?,
        results_emitted: r.u64()?,
        results_invalidated: r.u64()?,
        expiry_runs: r.u64()?,
        nodes_expired: r.u64()?,
        expiry_nanos: r.u64()?,
        conflicts_detected: r.u64()?,
        nodes_unmarked: r.u64()?,
        budget_exhausted: r.u64()?,
        tuples_routed: r.u64()?,
        eval_ns: r.u64()?,
        wal_bytes: r.u64()?,
        wal_appends: r.u64()?,
        fsyncs: r.u64()?,
        checkpoints_written: r.u64()?,
        last_recovery_ms: r.u64()?,
        delta_nodes_live: r.u64()?,
        delta_capacity: r.u64()?,
        compactions: r.u64()?,
    })
}

/// Encodes a sorted result-pair list.
pub(crate) fn encode_pairs(w: &mut ByteWriter, pairs: &[ResultPair]) {
    w.u32(pairs.len() as u32);
    for p in pairs {
        w.u32(p.src.0);
        w.u32(p.dst.0);
    }
}

/// Decodes a result-pair list.
pub(crate) fn decode_pairs(r: &mut ByteReader) -> Result<Vec<ResultPair>> {
    let n = r.count(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(ResultPair::new(VertexId(r.u32()?), VertexId(r.u32()?)));
    }
    Ok(out)
}

/// Encodes a window graph's full edge set, sorted by `(ts, u, v, l)` so
/// logical recovery replays edges in stream-time order.
pub(crate) fn encode_graph(w: &mut ByteWriter, g: &WindowGraph) {
    let mut edges = g.edges(Timestamp::NEG_INFINITY);
    edges.sort_unstable_by_key(|&(u, v, l, ts)| (ts, u, v, l));
    w.u32(edges.len() as u32);
    for (u, v, l, ts) in edges {
        w.u32(u.0);
        w.u32(v.0);
        w.u32(l.0);
        w.i64(ts.0);
    }
}

/// Decodes a graph edge list (ts-ascending).
pub(crate) type EdgeList = Vec<(VertexId, VertexId, Label, Timestamp)>;

/// Decodes the edge list written by [`encode_graph`].
pub(crate) fn decode_graph(r: &mut ByteReader) -> Result<EdgeList> {
    let n = r.count(20)?;
    let mut out: EdgeList = Vec::with_capacity(n);
    let mut prev = Timestamp::NEG_INFINITY;
    for _ in 0..n {
        let u = VertexId(r.u32()?);
        let v = VertexId(r.u32()?);
        let l = Label(r.u32()?);
        let ts = Timestamp(r.i64()?);
        if ts < prev {
            return Err(corrupt("graph edges out of timestamp order"));
        }
        prev = ts;
        out.push((u, v, l, ts));
    }
    Ok(out)
}

/// Encodes a Δ forest exactly (see [`srpq_core::delta::TreeSnap`]).
pub(crate) fn encode_forest<X: SnapshotExt>(w: &mut ByteWriter, forest: &Forest<X>) {
    let snaps = forest.to_snapshot();
    w.u32(snaps.len() as u32);
    for s in &snaps {
        w.u32(s.root.0);
        w.u32(s.root_state.0);
        w.u32(s.root_id);
        w.u32(s.arena_len);
        w.u32(s.free.len() as u32);
        for &f in &s.free {
            w.u32(f);
        }
        w.u32(s.nodes.len() as u32);
        for n in &s.nodes {
            w.u32(n.id);
            w.u32(n.vertex.0);
            w.u32(n.state.0);
            w.u32(n.parent.unwrap_or(u32::MAX));
            w.u32(n.via_label.0);
            w.i64(n.ts.0);
            w.u32(n.children.len() as u32);
            for &c in &n.children {
                w.u32(c);
            }
        }
        w.u32(s.occurrences.len() as u32);
        for ((v, st), ids) in &s.occurrences {
            w.u32(v.0);
            w.u32(st.0);
            w.u32(ids.len() as u32);
            for &id in ids {
                w.u32(id);
            }
        }
        w.u32(s.marks.len() as u32);
        for ((v, st), id) in &s.marks {
            w.u32(v.0);
            w.u32(st.0);
            w.u32(*id);
        }
        w.u32(s.dead_marks.len() as u32);
        for (v, st) in &s.dead_marks {
            w.u32(v.0);
            w.u32(st.0);
        }
    }
}

/// Decodes a Δ forest written by [`encode_forest`]; structural
/// validation runs inside `Forest::from_snapshot`.
pub(crate) fn decode_forest<X: SnapshotExt>(r: &mut ByteReader) -> Result<Forest<X>> {
    let n_trees = r.count(16)?;
    let mut snaps = Vec::with_capacity(n_trees);
    for _ in 0..n_trees {
        let root = VertexId(r.u32()?);
        let root_state = srpq_common::StateId(r.u32()?);
        let root_id = r.u32()?;
        let arena_len = r.u32()?;
        let n_free = r.count(4)?;
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            free.push(r.u32()?);
        }
        let n_nodes = r.count(28)?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let id = r.u32()?;
            let vertex = VertexId(r.u32()?);
            let state = srpq_common::StateId(r.u32()?);
            let parent = match r.u32()? {
                u32::MAX => None,
                p => Some(p),
            };
            let via_label = Label(r.u32()?);
            let ts = Timestamp(r.i64()?);
            let n_children = r.count(4)?;
            let mut children = Vec::with_capacity(n_children);
            for _ in 0..n_children {
                children.push(r.u32()?);
            }
            nodes.push(NodeSnap {
                id,
                vertex,
                state,
                parent,
                via_label,
                ts,
                children,
            });
        }
        let n_occ = r.count(12)?;
        let mut occurrences = Vec::with_capacity(n_occ);
        for _ in 0..n_occ {
            let key = (VertexId(r.u32()?), srpq_common::StateId(r.u32()?));
            let n_ids = r.count(4)?;
            let mut ids = Vec::with_capacity(n_ids);
            for _ in 0..n_ids {
                ids.push(r.u32()?);
            }
            occurrences.push((key, ids));
        }
        let n_marks = r.count(12)?;
        let mut marks = Vec::with_capacity(n_marks);
        for _ in 0..n_marks {
            marks.push((
                (VertexId(r.u32()?), srpq_common::StateId(r.u32()?)),
                r.u32()?,
            ));
        }
        let n_dead = r.count(8)?;
        let mut dead_marks = Vec::with_capacity(n_dead);
        for _ in 0..n_dead {
            dead_marks.push((VertexId(r.u32()?), srpq_common::StateId(r.u32()?)));
        }
        snaps.push(TreeSnap {
            root,
            root_state,
            root_id,
            arena_len,
            free,
            nodes,
            occurrences,
            marks,
            dead_marks,
        });
    }
    Forest::from_snapshot(snaps).map_err(|e| corrupt(format!("forest snapshot: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srpq-ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_load_prune_round_trip() {
        let dir = tmpdir("roundtrip");
        write(&dir, 1, CheckpointStrategy::Logical, 10, b"alpha").unwrap();
        write(&dir, 1, CheckpointStrategy::Full, 20, b"beta").unwrap();
        let (hdr, payload) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(hdr.seq, 20);
        assert_eq!(hdr.strategy, CheckpointStrategy::Full);
        assert_eq!(payload, b"beta");
        // The older checkpoint was pruned.
        assert_eq!(list_checkpoints(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_detected() {
        let dir = tmpdir("corrupt");
        let path = write(&dir, 1, CheckpointStrategy::Logical, 5, b"payload").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[30] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert!(load_latest(&dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_is_empty_not_error() {
        let dir = tmpdir("missing");
        assert!(load_latest(&dir).unwrap().is_none());
    }

    #[test]
    fn config_and_stats_round_trip() {
        let mut c = EngineConfig::with_window(WindowPolicy::new(100, 7));
        c.refresh = RefreshPolicy::Subtree;
        c.rspq_extend_budget = Some(42);
        c.dedup_results = false;
        let mut w = ByteWriter::new();
        encode_config(&mut w, &c);
        let s = EngineStats {
            tuples_processed: 9,
            last_recovery_ms: 3,
            delta_nodes_live: 4,
            delta_capacity: 6,
            compactions: 2,
            ..Default::default()
        };
        encode_stats(&mut w, &s);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let c2 = decode_config(&mut r).unwrap();
        assert_eq!(c2.window, c.window);
        assert_eq!(c2.refresh, RefreshPolicy::Subtree);
        assert_eq!(c2.rspq_extend_budget, Some(42));
        assert!(!c2.dedup_results);
        let s2 = decode_stats(&mut r).unwrap();
        assert_eq!(s2.tuples_processed, 9);
        assert_eq!(s2.last_recovery_ms, 3);
        assert_eq!(s2.delta_nodes_live, 4);
        assert_eq!(s2.delta_capacity, 6);
        assert_eq!(s2.compactions, 2);
        assert!(r.is_exhausted());
    }

    #[test]
    fn compacted_forest_round_trips_through_codec() {
        use srpq_common::StateId;
        use srpq_core::rspq::markings::Markings;

        // Build a forest whose tree has been through batch removal and
        // arena compaction, then push it through the Full-checkpoint
        // forest codec: the canonical children-list form must restore
        // the compacted arena exactly.
        let mut forest: Forest<Markings> = Forest::new();
        forest.ensure_tree(VertexId(0), StateId(0));
        {
            let (tree, idx) = forest.tree_with_index(VertexId(0)).unwrap();
            let root_id = tree.root_id();
            let ids: Vec<u32> = (0..100u32)
                .map(|i| {
                    let id = tree.add_child(
                        root_id,
                        VertexId(i + 1),
                        StateId(1),
                        Label(0),
                        Timestamp(10),
                    );
                    idx.note_added(VertexId(0), VertexId(i + 1));
                    id
                })
                .collect();
            for &id in &ids[..90] {
                let v = tree.node(id).unwrap().vertex;
                tree.remove(id);
                idx.note_removed(VertexId(0), v);
            }
            // Leave one unmark + dead-mark so extension state is
            // non-trivial.
            tree.unmark((VertexId(100), StateId(1)));
            let mut remap = Vec::new();
            assert!(tree.maybe_compact(&mut remap), "fixture must compact");
        }
        forest.validate().unwrap();

        let mut w = ByteWriter::new();
        encode_forest(&mut w, &forest);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let restored: Forest<Markings> = decode_forest(&mut r).unwrap();
        assert!(r.is_exhausted());
        restored.validate().unwrap();
        assert_eq!(restored.to_snapshot(), forest.to_snapshot());
        // Slot assignment survives: the next insertion lands identically
        // on both sides.
        let mut restored = restored;
        let t1 = forest.tree_mut(VertexId(0)).unwrap();
        let a = t1.add_child(
            t1.root_id(),
            VertexId(200),
            StateId(1),
            Label(0),
            Timestamp(9),
        );
        let t2 = restored.tree_mut(VertexId(0)).unwrap();
        let b = t2.add_child(
            t2.root_id(),
            VertexId(200),
            StateId(1),
            Label(0),
            Timestamp(9),
        );
        assert_eq!(a, b, "slot assignment diverged after recovery");
    }
}
