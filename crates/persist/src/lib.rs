//! Durability for the streaming RPQ engines: write-ahead logging,
//! checkpoints, and crash recovery.
//!
//! The engines in `srpq_core` are purely in-memory — a restart loses
//! the window graph and the Δ spanning forest, and the only rebuild
//! path is replaying the stream from its origin. This crate bounds
//! recovery by **window size instead of stream length**, exploiting the
//! paper's persistent-query setting: the engines' state is a function
//! of the live window, and the live window is a bounded suffix of the
//! input log.
//!
//! Three pieces compose (see each module's docs for formats):
//!
//! * [`wal`] — a segmented, CRC32-checksummed write-ahead log of stream
//!   tuples in the 21-byte `srpq_common::wire` encoding, with an
//!   [`wal::SyncPolicy`] knob, segment rotation, and truncation of
//!   segments that predate both the latest checkpoint and the window;
//! * [`checkpoint`] — periodic snapshots under two strategies:
//!   [`CheckpointStrategy::Logical`] (live window + engine cursor;
//!   recovery rebuilds Δ by replay) and [`CheckpointStrategy::Full`]
//!   (exact Δ-forest arenas and result sets for near-instant restart);
//! * [`durable`] — [`Durable<E>`], the hook threaded through
//!   [`srpq_core::Engine`], [`srpq_core::MultiQueryEngine`], and
//!   [`srpq_core::ParallelRapqEngine`]: WAL-append *before* mutation,
//!   checkpoint every N slides, and [`Durable::recover`] restoring a
//!   crashed instance that continues the stream with the same results
//!   at the same stream timestamps as an uninterrupted run.
//!
//! ```no_run
//! use srpq_core::{Engine, PathSemantics, CollectSink};
//! use srpq_common::LabelInterner;
//! use srpq_graph::WindowPolicy;
//! use srpq_persist::{Durable, DurabilityConfig};
//! use std::path::Path;
//!
//! let mut labels = LabelInterner::new();
//! let engine = Engine::from_str(
//!     "(follows mentions)+",
//!     &mut labels,
//!     WindowPolicy::new(15, 1),
//!     PathSemantics::Arbitrary,
//! )
//! .unwrap();
//! let mut durable =
//!     Durable::create(engine, Path::new("state/"), DurabilityConfig::default()).unwrap();
//! let mut sink = CollectSink::default();
//! // durable.process_batch(&tuples, &mut sink)?;   // WAL-append, then evaluate
//! // ... crash ...
//! let (durable, report) =
//!     Durable::<Engine>::recover(Path::new("state/"), &mut labels, DurabilityConfig::default())
//!         .unwrap();
//! assert!(report.resume_seq >= report.checkpoint_seq);
//! # let _ = (durable, sink);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod checkpoint;
pub mod codec;
pub mod durable;
pub mod wal;

pub use checkpoint::CheckpointStrategy;
pub use codec::PersistError;
pub use durable::{DurabilityConfig, DurabilityCounters, Durable, PersistEngine, RecoveryReport};
pub use wal::{SyncPolicy, Wal, WalBatch, WalInfo};
