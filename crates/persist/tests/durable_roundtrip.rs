//! Durable-engine lifecycle: create → ingest → checkpoint → crash →
//! recover → continue, for both checkpoint strategies.

use srpq_common::{LabelInterner, StreamTuple, Timestamp, VertexId};
use srpq_core::config::RefreshPolicy;
use srpq_core::engine::{Engine, PathSemantics};
use srpq_core::sink::CollectSink;
use srpq_core::EngineConfig;
use srpq_graph::WindowPolicy;
use srpq_persist::{CheckpointStrategy, DurabilityConfig, Durable, SyncPolicy};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srpq-durable-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn make_labels() -> LabelInterner {
    let mut labels = LabelInterner::new();
    labels.intern("a");
    labels.intern("b");
    labels
}

fn make_engine(labels: &mut LabelInterner, refresh: RefreshPolicy) -> Engine {
    let query = srpq_automata::CompiledQuery::compile("a b*", labels).unwrap();
    let mut config = EngineConfig::with_window(WindowPolicy::new(40, 5));
    config.refresh = refresh;
    Engine::new(query, config, PathSemantics::Arbitrary)
}

fn stream(n: usize) -> Vec<StreamTuple> {
    let mut out = Vec::new();
    for i in 0..n as u32 {
        let label = srpq_common::Label(i % 2);
        out.push(StreamTuple::insert(
            Timestamp(i as i64),
            VertexId(i % 11),
            VertexId((i * 7 + 1) % 11),
            label,
        ));
        if i % 13 == 12 {
            let old = &out[out.len() - 5];
            out.push(StreamTuple::delete(
                Timestamp(i as i64),
                old.edge.src,
                old.edge.dst,
                old.label,
            ));
        }
    }
    out
}

fn run_strategy(strategy: CheckpointStrategy, refresh: RefreshPolicy, name: &str) {
    let dir = tmpdir(name);
    let labels = make_labels();
    let tuples = stream(300);
    let cut = 201;

    // Uninterrupted reference.
    let mut reference = make_engine(&mut labels.clone(), refresh);
    let mut ref_sink = CollectSink::default();
    for chunk in tuples.chunks(32) {
        reference.process_batch(chunk, &mut ref_sink);
    }

    // Durable run, crashed at `cut`.
    let cfg = DurabilityConfig {
        sync: SyncPolicy::Batch,
        strategy,
        checkpoint_every: 2,
        segment_bytes: 1 << 12,
    };
    let engine = make_engine(&mut labels.clone(), refresh);
    let mut durable = Durable::create(engine, &dir, cfg).unwrap();
    let mut pre_sink = CollectSink::default();
    for chunk in tuples[..cut].chunks(32) {
        durable.process_batch(chunk, &mut pre_sink).unwrap();
    }
    let stats = durable.inner().stats();
    assert!(stats.wal_appends > 0);
    assert!(stats.fsyncs > 0);
    assert!(
        stats.checkpoints_written >= 2,
        "cadence produced no checkpoints"
    );
    drop(durable); // crash

    let mut recovery_labels = labels.clone();
    let (mut recovered, report) =
        Durable::<Engine>::recover(&dir, &mut recovery_labels, cfg).unwrap();
    assert_eq!(
        report.resume_seq, cut as u64,
        "WAL must cover the full prefix"
    );
    let mut post_sink = CollectSink::default();
    for chunk in tuples[cut..].chunks(32) {
        recovered.process_batch(chunk, &mut post_sink).unwrap();
    }

    // The combined crashed run must match the uninterrupted one:
    // identical results at identical stream timestamps (ordering within
    // one timestamp is not part of the contract — hash iteration order
    // is engine-instance private).
    let mut expect: Vec<_> = ref_sink.emitted().to_vec();
    let mut got: Vec<_> = pre_sink.emitted().to_vec();
    got.extend_from_slice(post_sink.emitted());
    expect.sort_unstable_by_key(|&(p, ts)| (ts, p));
    got.sort_unstable_by_key(|&(p, ts)| (ts, p));
    assert_eq!(expect, got, "{name}: emission streams diverge");

    let mut expect_inv: Vec<_> = ref_sink.invalidated().to_vec();
    let mut got_inv: Vec<_> = pre_sink.invalidated().to_vec();
    got_inv.extend_from_slice(post_sink.invalidated());
    expect_inv.sort_unstable_by_key(|&(p, ts)| (ts, p));
    got_inv.sort_unstable_by_key(|&(p, ts)| (ts, p));
    assert_eq!(expect_inv, got_inv, "{name}: invalidation streams diverge");

    assert_eq!(recovered.inner().result_count(), reference.result_count());
    let (r, e) = (recovered.inner().stats(), reference.stats());
    assert_eq!(r.tuples_processed, e.tuples_processed);
    assert_eq!(r.results_emitted, e.results_emitted);
    assert_eq!(r.results_invalidated, e.results_invalidated);
    assert_eq!(r.deletions_processed, e.deletions_processed);
    assert!(r.last_recovery_ms < 60_000);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn logical_checkpoint_round_trip() {
    run_strategy(
        CheckpointStrategy::Logical,
        RefreshPolicy::Subtree,
        "logical",
    );
}

#[test]
fn full_checkpoint_round_trip() {
    run_strategy(CheckpointStrategy::Full, RefreshPolicy::Node, "full");
}

#[test]
fn create_refuses_existing_state() {
    let dir = tmpdir("refuse");
    let mut labels = make_labels();
    let engine = make_engine(&mut labels, RefreshPolicy::Node);
    let durable = Durable::create(engine, &dir, DurabilityConfig::default()).unwrap();
    drop(durable);
    let engine = make_engine(&mut labels, RefreshPolicy::Node);
    assert!(Durable::create(engine, &dir, DurabilityConfig::default()).is_err());

    // A *corrupt* checkpoint must also refuse creation (not read as a
    // fresh directory and get silently pruned).
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("ck") {
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[20] ^= 1;
            std::fs::write(&path, &bytes).unwrap();
        }
    }
    let engine = make_engine(&mut labels, RefreshPolicy::Node);
    assert!(Durable::create(engine, &dir, DurabilityConfig::default()).is_err());
    assert!(
        std::fs::read_dir(&dir).unwrap().any(|e| e
            .unwrap()
            .path()
            .extension()
            .and_then(|x| x.to_str())
            == Some("ck")),
        "corrupt checkpoint must survive for forensics"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recover_without_state_is_an_error() {
    let dir = tmpdir("nostate");
    let mut labels = make_labels();
    assert!(Durable::<Engine>::recover(&dir, &mut labels, DurabilityConfig::default()).is_err());
}

#[test]
fn truncation_keeps_recovery_sound() {
    // Long stream + aggressive checkpointing + tiny segments: old
    // segments get truncated, and recovery must still reproduce the
    // reference run from checkpoint + surviving suffix.
    let dir = tmpdir("truncate");
    let labels = make_labels();
    let tuples = stream(600);
    let cut = 557;

    let mut reference = make_engine(&mut labels.clone(), RefreshPolicy::Subtree);
    let mut ref_sink = CollectSink::default();
    for chunk in tuples.chunks(16) {
        reference.process_batch(chunk, &mut ref_sink);
    }

    let cfg = DurabilityConfig {
        sync: SyncPolicy::None,
        strategy: CheckpointStrategy::Logical,
        checkpoint_every: 1,
        segment_bytes: 512,
    };
    let engine = make_engine(&mut labels.clone(), RefreshPolicy::Subtree);
    let mut durable = Durable::create(engine, &dir, cfg).unwrap();
    let mut pre_sink = CollectSink::default();
    for chunk in tuples[..cut].chunks(16) {
        durable.process_batch(chunk, &mut pre_sink).unwrap();
    }
    let info = durable.wal_info();
    assert!(
        info.seq_range.0 > 0,
        "truncation never fired: log still starts at 0 ({info:?})"
    );
    drop(durable);

    let (mut recovered, _) = Durable::<Engine>::recover(&dir, &mut labels.clone(), cfg).unwrap();
    let mut post_sink = CollectSink::default();
    for chunk in tuples[cut..].chunks(16) {
        recovered.process_batch(chunk, &mut post_sink).unwrap();
    }
    let mut expect: Vec<_> = ref_sink.emitted().to_vec();
    let mut got: Vec<_> = pre_sink.emitted().to_vec();
    got.extend_from_slice(post_sink.emitted());
    expect.sort_unstable_by_key(|&(p, ts)| (ts, p));
    got.sort_unstable_by_key(|&(p, ts)| (ts, p));
    assert_eq!(expect, got);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deregistered_slots_survive_recovery() {
    // A multi-query engine with a vacated slot must checkpoint a
    // tombstone and recover with the same query ids, the same live set,
    // and the hole still burnt (no id reuse after restart).
    use srpq_core::multi::{MultiCollectSink, MultiQueryEngine};
    use srpq_core::QueryId;

    let dir = tmpdir("dereg-slots");
    let mut labels = make_labels();
    let c = labels.intern("c");
    let tuples = stream(120);

    let q_keep = srpq_automata::CompiledQuery::compile("a b*", &mut labels).unwrap();
    let q_gone = srpq_automata::CompiledQuery::compile("b c", &mut labels).unwrap();
    let q_late = srpq_automata::CompiledQuery::compile("(a | b)+", &mut labels).unwrap();
    let mut multi =
        MultiQueryEngine::with_config(EngineConfig::with_window(WindowPolicy::new(40, 5)));
    let keep = multi
        .register("keep", q_keep, PathSemantics::Arbitrary)
        .unwrap();
    let gone = multi
        .register("gone", q_gone, PathSemantics::Arbitrary)
        .unwrap();

    let cfg = DurabilityConfig {
        sync: SyncPolicy::None,
        strategy: CheckpointStrategy::Logical,
        checkpoint_every: 1,
        segment_bytes: 4 << 20,
    };
    let mut durable = Durable::create(multi, &dir, cfg).unwrap();
    let mut sink = MultiCollectSink::default();
    for chunk in tuples[..60].chunks(8) {
        durable.process_batch(chunk, &mut sink).unwrap();
    }
    durable.inner_mut().deregister(gone).unwrap();
    let late = durable
        .inner_mut()
        .register("late", q_late, PathSemantics::Arbitrary)
        .unwrap();
    assert_eq!(late, QueryId(2), "vacated slot must not be reused");
    for chunk in tuples[60..].chunks(8) {
        durable.process_batch(chunk, &mut sink).unwrap();
    }
    durable.checkpoint().unwrap();
    let live_before = durable.inner().query_ids();
    let results_before: usize = durable.inner().n_queries();
    drop(durable);

    let (recovered, report) =
        Durable::<MultiQueryEngine>::recover(&dir, &mut labels.clone(), cfg).unwrap();
    assert_eq!(report.resume_seq, tuples.len() as u64);
    let multi = recovered.inner();
    assert_eq!(multi.n_slots(), 3);
    assert_eq!(multi.n_queries(), results_before);
    assert_eq!(multi.query_ids(), live_before);
    assert_eq!(multi.name(keep), Some("keep"));
    assert_eq!(multi.name(gone), None);
    assert_eq!(multi.name(late), Some("late"));
    assert_eq!(multi.query_id("gone"), None);
    // The recovered engine burnt the tombstoned id: the next
    // registration continues after it.
    let mut multi2 = recovered.into_inner();
    let q_new = srpq_automata::CompiledQuery::compile("c", &mut labels.clone()).unwrap();
    let next = multi2
        .register("next", q_new, PathSemantics::Arbitrary)
        .unwrap();
    assert_eq!(next, QueryId(3));
    let _ = c;
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_multi_host_shares_checkpoint_format() {
    // A durable directory written under the parallel multi host must
    // recover (a) as a ParallelMultiEngine with parallel per-query
    // replay, and (b) as a plain MultiQueryEngine — worker count is
    // runtime configuration, not logical state, so the two hosts share
    // one checkpoint format and are interchangeable across restarts.
    use srpq_core::multi::{MultiCollectSink, MultiQueryEngine};
    use srpq_core::ParallelMultiEngine;

    let dir = tmpdir("parallel-multi");
    let mut labels = make_labels();
    let tuples = stream(160);

    let qa = srpq_automata::CompiledQuery::compile("a b*", &mut labels).unwrap();
    let qb = srpq_automata::CompiledQuery::compile("(a | b)+", &mut labels).unwrap();
    let mut par =
        ParallelMultiEngine::with_config(EngineConfig::with_window(WindowPolicy::new(40, 5)), 3);
    let ida = par.register("qa", qa, PathSemantics::Arbitrary).unwrap();
    let idb = par.register("qb", qb, PathSemantics::Arbitrary).unwrap();

    let cfg = DurabilityConfig {
        sync: SyncPolicy::None,
        strategy: CheckpointStrategy::Logical,
        // Only the initial manifest checkpoint: recovery must replay
        // the whole WAL suffix (through the parallel workers).
        checkpoint_every: 0,
        segment_bytes: 4 << 20,
    };
    let mut durable = Durable::create(par, &dir, cfg).unwrap();
    let mut sink = MultiCollectSink::default();
    for chunk in tuples.chunks(16) {
        durable.process_batch(chunk, &mut sink).unwrap();
    }
    let pairs_a: Vec<_> = sink
        .emitted
        .iter()
        .filter(|&&(id, ..)| id == ida)
        .map(|&(_, p, _)| p)
        .collect();
    let n_edges = durable.inner().graph().n_edges();
    let (seen, routed) = durable.inner().routing_stats();
    drop(durable);

    // (a) Recover as the parallel host: WAL replay fans out per query.
    let (rec_par, report) =
        Durable::<ParallelMultiEngine>::recover(&dir, &mut labels.clone(), cfg).unwrap();
    assert_eq!(report.resume_seq, tuples.len() as u64);
    assert!(report.replayed_tuples > 0, "suffix replay expected");
    assert!(rec_par.inner().n_workers() >= 1);
    assert_eq!(rec_par.inner().graph().n_edges(), n_edges);
    assert_eq!(rec_par.inner().routing_stats(), (seen, routed));
    let _ = pairs_a;

    // (b) Recover the same directory as the sequential host.
    let (rec_seq, _) =
        Durable::<MultiQueryEngine>::recover(&dir, &mut labels.clone(), cfg).unwrap();
    assert_eq!(rec_seq.inner().n_slots(), 2);
    assert_eq!(rec_seq.inner().graph().n_edges(), n_edges);
    // Both recoveries agree on every per-query result set.
    for id in [ida, idb] {
        assert_eq!(
            rec_par.inner().engine(id).unwrap().emitted_pairs(),
            rec_seq.inner().engine(id).unwrap().emitted_pairs(),
            "hosts disagree on {id}"
        );
        assert_eq!(
            rec_par.inner().index_size(id).unwrap(),
            rec_seq.inner().index_size(id).unwrap()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
