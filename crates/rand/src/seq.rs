//! Slice sampling helpers (the `rand::seq` subset in use).

use crate::Rng;

/// Shuffling and random selection on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
