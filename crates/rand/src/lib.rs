//! A self-contained stand-in for the subset of the `rand` 0.8 API this
//! workspace uses, so the build has no network dependency.
//!
//! Everything is seeded and deterministic: [`rngs::SmallRng`] is a
//! xoshiro256** generator seeded through SplitMix64 (the reference
//! seeding scheme from Blackman & Vigna). The statistical quality is far
//! beyond what the synthetic data generators and randomized tests need;
//! the point is *compatibility* — `SmallRng::seed_from_u64`,
//! `Rng::gen/gen_range/gen_bool`, and `SliceRandom::shuffle/choose`
//! behave API-identically to `rand` 0.8 (stream values differ, which is
//! fine: nothing in the workspace depends on rand's exact streams).
//!
//! Not implemented (because unused here): thread-local RNGs, OS
//! entropy, distributions beyond uniform/Bernoulli, weighted sampling.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod rngs;
pub mod seq;

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`f64` in `[0, 1)`, integers over
    /// their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// A uniform sample from `range` (half-open `a..b` or inclusive
    /// `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(&mut |bound| self.next_u64_below(bound))
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::sample(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R where R: RngCore {}

/// The raw generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `0..bound` via Lemire's multiply-shift
    /// rejection method (no modulo bias). `bound == 0` means the full
    /// 64-bit range (the bound 2⁶⁴ is not representable in a `u64`).
    fn next_u64_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return self.next_u64();
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Maps 64 uniform bits to a sample.
    fn sample(bits: u64) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    #[inline]
    fn sample(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples using `below(bound)`, a uniform draw from `0..bound`
    /// (`below(0)` draws from the full 64-bit range).
    fn sample_from(self, below: &mut dyn FnMut(u64) -> u64) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, below: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, below: &mut dyn FnMut(u64) -> u64) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "gen_range: empty range");
                let span = (b as i128 - a as i128) as u64;
                // span + 1 == 2⁶⁴ wraps to 0, the full-range request.
                (a as i128 + below(span.wrapping_add(1)) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from(self, below: &mut dyn FnMut(u64) -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(below(0));
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from(self, below: &mut dyn FnMut(u64) -> u64) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "gen_range: empty range");
        let u = f64::sample(below(0));
        a + u * (b - a)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_span_inclusive_ranges_cover_the_domain() {
        // span + 1 overflows to 0, the "all 64 bits" request: values
        // must land in both halves of the domain, not truncate at the
        // upper bound.
        let mut rng = SmallRng::seed_from_u64(6);
        let (mut u_hi, mut u_lo, mut i_pos, mut i_neg) = (false, false, false, false);
        for _ in 0..1_000 {
            let x = rng.gen_range(u64::MIN..=u64::MAX);
            if x > u64::MAX / 2 {
                u_hi = true;
            } else {
                u_lo = true;
            }
            let y = rng.gen_range(i64::MIN..=i64::MAX);
            if y >= 0 {
                i_pos = true;
            } else {
                i_neg = true;
            }
        }
        assert!(u_hi && u_lo && i_pos && i_neg);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements left in order is ~impossible");
    }

    #[test]
    fn choose_samples_members() {
        let mut rng = SmallRng::seed_from_u64(5);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
