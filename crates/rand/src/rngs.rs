//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG (xoshiro256**).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        // SplitMix64 expansion of the seed, per the xoshiro reference.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}
