//! Workspace harness: shared helpers for the examples under
//! `examples/` and the integration tests under `tests/`.
//!
//! The substantive code lives in the other crates; this crate exists so
//! that workspace-level `examples/` and `tests/` directories compile
//! against all of them, plus a couple of tiny helpers shared by the
//! oracle-comparison tests.

#![warn(missing_docs)]
#![warn(clippy::all)]

use srpq_baseline::{batch, simple};
use srpq_common::{FxHashSet, ResultPair, StreamTuple, Timestamp};
use srpq_graph::{WindowGraph, WindowPolicy};

/// An eager-window oracle: after each tuple it recomputes the batch
/// result set over the current snapshot (watermark `τ − |W|`) and
/// accumulates the union — the implicit-window reference result stream
/// of Definition 9.
pub struct Oracle {
    graph: WindowGraph,
    window: WindowPolicy,
    now: Timestamp,
    cumulative: FxHashSet<ResultPair>,
}

/// Which ground-truth evaluator the oracle runs per snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleMode {
    /// Product-graph BFS (arbitrary path semantics).
    Arbitrary,
    /// Exhaustive simple-path DFS (simple path semantics).
    Simple,
}

impl Oracle {
    /// Creates an oracle over the given window.
    pub fn new(window: WindowPolicy) -> Oracle {
        Oracle {
            graph: WindowGraph::new(),
            window,
            now: Timestamp::NEG_INFINITY,
            cumulative: FxHashSet::default(),
        }
    }

    /// Applies one tuple and recomputes; returns the cumulative result
    /// set after this tuple.
    pub fn step(
        &mut self,
        t: StreamTuple,
        dfa: &srpq_automata::Dfa,
        mode: OracleMode,
    ) -> &FxHashSet<ResultPair> {
        if t.ts > self.now {
            self.now = t.ts;
        }
        match t.op {
            srpq_common::Op::Insert => {
                self.graph.insert(t.edge.src, t.edge.dst, t.label, t.ts);
            }
            srpq_common::Op::Delete => {
                self.graph.remove(t.edge.src, t.edge.dst, t.label);
            }
        }
        self.graph.purge_expired(self.window.watermark(self.now));
        let wm = self.window.watermark(self.now);
        let snapshot = match mode {
            OracleMode::Arbitrary => batch::evaluate_arbitrary(&self.graph, wm, dfa),
            OracleMode::Simple => simple::evaluate_simple_bruteforce(&self.graph, wm, dfa),
        };
        self.cumulative.extend(snapshot);
        &self.cumulative
    }

    /// The cumulative (implicit-window) result set so far.
    pub fn cumulative(&self) -> &FxHashSet<ResultPair> {
        &self.cumulative
    }
}
