//! Windowed streaming graph storage.
//!
//! [`WindowGraph`] materializes the snapshot graph `G_{W,τ}`
//! (Definition 5): the set of streaming graph tuples whose timestamps
//! fall in the window interval `(τ − |W|, τ]`. It supports the three
//! mutations the algorithms in §3–§4 need — edge upsert on tuple arrival,
//! lazy purge of expired tuples at slide boundaries, and explicit
//! deletion for negative tuples — plus timestamp-filtered adjacency
//! iteration in both directions.
//!
//! [`window::WindowPolicy`] encapsulates the time-based sliding window
//! arithmetic (window size `|W|`, slide interval β, eager evaluation /
//! lazy expiry).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod store;
pub mod window;

pub use store::{AdjView, EdgeRef, Visibility, WindowGraph};
pub use window::WindowPolicy;
