//! Time-based sliding window arithmetic (Definitions 4–5).
//!
//! A time-based sliding window `W` with size `|W|` and slide interval β
//! defines, at any time τ, the interval `(W^b, W^e]` with
//! `W^e = ⌊τ/β⌋·β` and `W^b = W^e − |W|`. The paper uses **eager
//! evaluation** (results are produced as each tuple arrives, β=1 for
//! evaluation purposes) but **lazy expiration** (expired tuples are only
//! removed at slide boundaries), which separates window maintenance from
//! tuple processing (§2, §3.1). [`WindowPolicy`] encodes exactly that:
//! per-tuple it reports the validity watermark `τ − |W|`; at each slide
//! boundary crossing it requests one expiry pass.

use srpq_common::Timestamp;

/// Sliding-window configuration: window size `|W|` and slide interval β,
/// both in stream time units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowPolicy {
    /// Window size `|W|` in time units.
    pub window_size: i64,
    /// Slide interval β in time units (lazy-expiry granularity).
    pub slide: i64,
}

impl WindowPolicy {
    /// Creates a policy; panics unless `window_size > 0` and `slide > 0`.
    pub fn new(window_size: i64, slide: i64) -> WindowPolicy {
        assert!(window_size > 0, "window size must be positive");
        assert!(slide > 0, "slide interval must be positive");
        WindowPolicy { window_size, slide }
    }

    /// The eager validity watermark at time `τ`: tuples with
    /// `ts ≤ τ − |W|` are outside the window (Definition 9 requires
    /// `p.ts > τ − |W|`).
    #[inline]
    pub fn watermark(&self, now: Timestamp) -> Timestamp {
        now.saturating_sub(self.window_size)
    }

    /// The window end `W^e = ⌊τ/β⌋·β` at time `τ` (for non-negative τ).
    #[inline]
    pub fn window_end(&self, now: Timestamp) -> Timestamp {
        Timestamp(now.0.div_euclid(self.slide) * self.slide)
    }

    /// The *lazy* expiry watermark used when a slide boundary fires:
    /// `W^b = W^e − |W|`.
    #[inline]
    pub fn lazy_watermark(&self, now: Timestamp) -> Timestamp {
        self.window_end(now).saturating_sub(self.window_size)
    }

    /// Whether advancing the clock from `prev` to `now` crosses one or
    /// more slide boundaries (i.e. an expiry pass is due).
    #[inline]
    pub fn crosses_slide(&self, prev: Timestamp, now: Timestamp) -> bool {
        self.window_end(prev) != self.window_end(now)
    }

    /// Splits off the leading slide-aligned group of a timestamp-ordered
    /// batch: given the engine clock `now` and a non-empty `batch` with
    /// timestamp projection `ts_of`, returns `(len, group_now)` where
    /// `len` is the maximal prefix length whose per-tuple processing
    /// crosses no slide boundary after the first tuple, and `group_now`
    /// is the clock value on entering the group (`ts_of(&batch[0])
    /// .max(now)` — late tuples never regress the clock). The batched
    /// engines check for a boundary (and run expiry) once per group
    /// instead of once per tuple.
    pub fn slide_group<T>(
        &self,
        now: Timestamp,
        batch: &[T],
        ts_of: impl Fn(&T) -> Timestamp,
    ) -> (usize, Timestamp) {
        let group_now = ts_of(&batch[0]).max(now);
        let group_we = self.window_end(group_now);
        let mut clock = group_now;
        let mut len = 0;
        while len < batch.len() {
            let next = ts_of(&batch[len]).max(clock);
            if self.window_end(next) != group_we {
                break;
            }
            clock = next;
            len += 1;
        }
        (len, group_now)
    }
}

impl Default for WindowPolicy {
    /// A degenerate "everything is live" window, handy in tests.
    fn default() -> Self {
        WindowPolicy {
            window_size: i64::MAX / 4,
            slide: i64::MAX / 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_is_now_minus_window() {
        let p = WindowPolicy::new(15, 1);
        assert_eq!(p.watermark(Timestamp(18)), Timestamp(3));
        // Figure 1: at τ=18 with |W|=15, the tuple at τ=4 (y→u) is valid
        // (4 > 3) while anything at ts ≤ 3 is expired.
        assert!(Timestamp(4) > p.watermark(Timestamp(18)));
    }

    #[test]
    fn window_end_floors_to_slide() {
        let p = WindowPolicy::new(10, 3);
        assert_eq!(p.window_end(Timestamp(7)), Timestamp(6));
        assert_eq!(p.window_end(Timestamp(9)), Timestamp(9));
        assert_eq!(p.lazy_watermark(Timestamp(17)), Timestamp(5));
    }

    #[test]
    fn slide_crossing_detection() {
        let p = WindowPolicy::new(10, 5);
        assert!(!p.crosses_slide(Timestamp(1), Timestamp(4)));
        assert!(p.crosses_slide(Timestamp(4), Timestamp(5)));
        assert!(p.crosses_slide(Timestamp(4), Timestamp(23)));
        assert!(!p.crosses_slide(Timestamp(5), Timestamp(9)));
    }

    #[test]
    fn slide_group_cuts_at_window_end_changes() {
        let p = WindowPolicy::new(10, 5);
        let ts: Vec<Timestamp> = [1, 2, 4, 5, 7, 11].map(Timestamp).to_vec();
        // From clock -∞ (first batch): group is [1, 2, 4] (window end 0).
        let (len, now) = p.slide_group(Timestamp::NEG_INFINITY, &ts, |&t| t);
        assert_eq!((len, now), (3, Timestamp(1)));
        // Next group starts at 5 (window end 5), spans [5, 7].
        let (len, now) = p.slide_group(Timestamp(4), &ts[3..], |&t| t);
        assert_eq!((len, now), (2, Timestamp(5)));
        // Late tuples never regress the clock: from clock 7, a ts-5
        // tuple stays in clock-7's group.
        let (len, now) = p.slide_group(Timestamp(7), &[Timestamp(5)], |&t| t);
        assert_eq!((len, now), (1, Timestamp(7)));
    }

    #[test]
    fn slide_group_matches_per_tuple_crossing() {
        // Walking a stream group-by-group fires exactly where per-tuple
        // crosses_slide fires.
        let p = WindowPolicy::new(7, 3);
        let ts: Vec<Timestamp> = (0..40i64).map(|i| Timestamp(i / 2 + i % 3)).collect();
        let mut per_tuple = Vec::new();
        let mut now = Timestamp(0);
        for &t in &ts {
            let next = t.max(now);
            if p.crosses_slide(now, next) {
                per_tuple.push(t);
            }
            now = next;
        }
        let mut grouped = Vec::new();
        let mut now = Timestamp(0);
        let mut i = 0;
        while i < ts.len() {
            let (len, group_now) = p.slide_group(now, &ts[i..], |&t| t);
            if p.crosses_slide(now, group_now) {
                grouped.push(ts[i]);
            }
            now = ts[i..i + len].iter().fold(group_now, |c, &t| t.max(c));
            i += len;
        }
        assert_eq!(per_tuple, grouped);
    }

    #[test]
    fn lazy_watermark_never_exceeds_eager() {
        let p = WindowPolicy::new(10, 4);
        for t in 0..50 {
            let now = Timestamp(t);
            assert!(p.lazy_watermark(now) <= p.watermark(now), "t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "window size")]
    fn zero_window_rejected() {
        WindowPolicy::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "slide interval")]
    fn zero_slide_rejected() {
        WindowPolicy::new(5, 0);
    }

    #[test]
    fn default_never_expires() {
        let p = WindowPolicy::default();
        assert!(p.watermark(Timestamp(1_000_000)) < Timestamp(0));
    }
}
