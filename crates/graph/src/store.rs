//! The windowed adjacency store.
//!
//! Semantics: the window content is a set of labeled edges, each carrying
//! the timestamp of its **most recent** insertion. Re-inserting an edge
//! refreshes its timestamp (it is the same edge of the snapshot graph,
//! now expiring later); an explicit deletion removes it regardless of how
//! many times it was inserted. Expiry is *lazy*: stale entries linger
//! until [`WindowGraph::purge_expired`] runs at a slide boundary, so all
//! traversal APIs take a validity watermark and filter on it — exactly
//! the discipline Algorithms RAPQ/RSPQ apply with their
//! `(u, s).ts > τ − |W|` guards.

use srpq_common::{FxHashMap, Label, Timestamp, VertexId};
use std::collections::VecDeque;

/// A labeled, timestamped half-edge as seen from one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// The other endpoint (target for out-edges, source for in-edges).
    pub other: VertexId,
    /// The edge label.
    pub label: Label,
    /// Timestamp of the most recent insertion of this edge.
    pub ts: Timestamp,
}

/// The snapshot graph `G_{W,τ}` of a sliding window over a streaming
/// graph, stored as hash-indexed labeled adjacency in both directions.
#[derive(Debug, Default)]
pub struct WindowGraph {
    /// `out[u] = {(v, l) → ts}`.
    out: FxHashMap<VertexId, FxHashMap<(VertexId, Label), Timestamp>>,
    /// `inc[v] = {(u, l) → ts}`.
    inc: FxHashMap<VertexId, FxHashMap<(VertexId, Label), Timestamp>>,
    /// Arrival-ordered queue of (ts, u, v, l) used for O(expired) purge.
    queue: VecDeque<(Timestamp, VertexId, VertexId, Label)>,
    n_edges: usize,
}

impl WindowGraph {
    /// Creates an empty window graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct labeled edges currently stored (including
    /// not-yet-purged expired ones).
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Number of vertices with at least one incident stored edge.
    pub fn n_vertices(&self) -> usize {
        // A vertex appears in `out` or `inc` (or both).
        let mut n = self.out.len();
        for v in self.inc.keys() {
            if !self.out.contains_key(v) {
                n += 1;
            }
        }
        n
    }

    /// Inserts (or refreshes) edge `u →l v` at time `ts`. Returns `true`
    /// if the edge was not present before.
    pub fn insert(&mut self, u: VertexId, v: VertexId, label: Label, ts: Timestamp) -> bool {
        let fresh = self
            .out
            .entry(u)
            .or_default()
            .insert((v, label), ts)
            .is_none();
        self.inc.entry(v).or_default().insert((u, label), ts);
        if fresh {
            self.n_edges += 1;
        }
        self.queue.push_back((ts, u, v, label));
        fresh
    }

    /// Removes edge `u →l v` (explicit deletion). Returns its timestamp
    /// if it was present.
    pub fn remove(&mut self, u: VertexId, v: VertexId, label: Label) -> Option<Timestamp> {
        let ts = self.remove_out(u, v, label)?;
        self.remove_inc(u, v, label);
        self.n_edges -= 1;
        Some(ts)
    }

    fn remove_out(&mut self, u: VertexId, v: VertexId, label: Label) -> Option<Timestamp> {
        let m = self.out.get_mut(&u)?;
        let ts = m.remove(&(v, label))?;
        if m.is_empty() {
            self.out.remove(&u);
        }
        Some(ts)
    }

    fn remove_inc(&mut self, u: VertexId, v: VertexId, label: Label) {
        if let Some(m) = self.inc.get_mut(&v) {
            m.remove(&(u, label));
            if m.is_empty() {
                self.inc.remove(&v);
            }
        }
    }

    /// The current timestamp of edge `u →l v`, if present.
    pub fn edge_ts(&self, u: VertexId, v: VertexId, label: Label) -> Option<Timestamp> {
        self.out.get(&u)?.get(&(v, label)).copied()
    }

    /// Whether edge `u →l v` is present and valid after `watermark`.
    pub fn contains_valid(
        &self,
        u: VertexId,
        v: VertexId,
        label: Label,
        watermark: Timestamp,
    ) -> bool {
        self.edge_ts(u, v, label).map(|ts| ts > watermark) == Some(true)
    }

    /// Purges every edge whose timestamp is `<= watermark`. Returns the
    /// number of edges removed. Amortized O(#expired) thanks to the
    /// arrival-ordered queue.
    pub fn purge_expired(&mut self, watermark: Timestamp) -> usize {
        let mut removed = 0;
        while let Some(&(ts, u, v, l)) = self.queue.front() {
            if ts > watermark {
                break;
            }
            self.queue.pop_front();
            // Only remove if the stored timestamp still matches: a newer
            // re-insertion refreshes the edge, leaving a stale queue entry
            // that we simply skip.
            if self.edge_ts(u, v, l) == Some(ts) {
                self.remove(u, v, l);
                removed += 1;
            }
        }
        removed
    }

    /// Out-edges of `u` with timestamps `> watermark`.
    pub fn out_edges(
        &self,
        u: VertexId,
        watermark: Timestamp,
    ) -> impl Iterator<Item = EdgeRef> + '_ {
        self.out
            .get(&u)
            .into_iter()
            .flat_map(|m| m.iter())
            .filter(move |(_, &ts)| ts > watermark)
            .map(|(&(v, l), &ts)| EdgeRef {
                other: v,
                label: l,
                ts,
            })
    }

    /// In-edges of `v` with timestamps `> watermark`.
    pub fn in_edges(
        &self,
        v: VertexId,
        watermark: Timestamp,
    ) -> impl Iterator<Item = EdgeRef> + '_ {
        self.inc
            .get(&v)
            .into_iter()
            .flat_map(|m| m.iter())
            .filter(move |(_, &ts)| ts > watermark)
            .map(|(&(u, l), &ts)| EdgeRef {
                other: u,
                label: l,
                ts,
            })
    }

    /// All vertices with at least one valid out- or in-edge after
    /// `watermark`.
    pub fn vertices(&self, watermark: Timestamp) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = Vec::new();
        for (&u, m) in &self.out {
            if m.values().any(|&ts| ts > watermark) {
                out.push(u);
            }
        }
        for (&v, m) in &self.inc {
            if !self.out.contains_key(&v) && m.values().any(|&ts| ts > watermark) {
                out.push(v);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All valid edges `(u, v, label, ts)` after `watermark` (snapshot
    /// export for the batch baselines).
    pub fn edges(&self, watermark: Timestamp) -> Vec<(VertexId, VertexId, Label, Timestamp)> {
        let mut out = Vec::with_capacity(self.n_edges);
        for (&u, m) in &self.out {
            for (&(v, l), &ts) in m {
                if ts > watermark {
                    out.push((u, v, l, ts));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEG: Timestamp = Timestamp(i64::MIN);

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn l(i: u32) -> Label {
        Label(i)
    }

    #[test]
    fn insert_and_lookup() {
        let mut g = WindowGraph::new();
        assert!(g.insert(v(0), v(1), l(0), Timestamp(5)));
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.n_vertices(), 2);
        assert_eq!(g.edge_ts(v(0), v(1), l(0)), Some(Timestamp(5)));
        assert_eq!(g.edge_ts(v(1), v(0), l(0)), None);
        assert_eq!(g.edge_ts(v(0), v(1), l(1)), None);
    }

    #[test]
    fn reinsert_refreshes_timestamp() {
        let mut g = WindowGraph::new();
        assert!(g.insert(v(0), v(1), l(0), Timestamp(5)));
        assert!(!g.insert(v(0), v(1), l(0), Timestamp(9)));
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.edge_ts(v(0), v(1), l(0)), Some(Timestamp(9)));
    }

    #[test]
    fn parallel_edges_with_distinct_labels() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(1));
        g.insert(v(0), v(1), l(1), Timestamp(2));
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.out_edges(v(0), NEG).count(), 2);
    }

    #[test]
    fn remove_cleans_both_directions() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(1));
        assert_eq!(g.remove(v(0), v(1), l(0)), Some(Timestamp(1)));
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.out_edges(v(0), NEG).count(), 0);
        assert_eq!(g.in_edges(v(1), NEG).count(), 0);
        assert_eq!(g.n_vertices(), 0);
        // Double delete is a no-op.
        assert_eq!(g.remove(v(0), v(1), l(0)), None);
    }

    #[test]
    fn watermark_filters_traversal() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(5));
        g.insert(v(0), v(2), l(0), Timestamp(15));
        let visible: Vec<_> = g.out_edges(v(0), Timestamp(10)).collect();
        assert_eq!(visible.len(), 1);
        assert_eq!(visible[0].other, v(2));
        assert!(g.contains_valid(v(0), v(2), l(0), Timestamp(10)));
        assert!(!g.contains_valid(v(0), v(1), l(0), Timestamp(10)));
    }

    #[test]
    fn purge_removes_only_expired() {
        let mut g = WindowGraph::new();
        for i in 0..10 {
            g.insert(v(i), v(i + 1), l(0), Timestamp(i as i64));
        }
        let removed = g.purge_expired(Timestamp(4));
        assert_eq!(removed, 5);
        assert_eq!(g.n_edges(), 5);
        assert_eq!(g.edge_ts(v(4), v(5), l(0)), None);
        assert_eq!(g.edge_ts(v(5), v(6), l(0)), Some(Timestamp(5)));
    }

    #[test]
    fn purge_skips_refreshed_edges() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(1));
        g.insert(v(0), v(1), l(0), Timestamp(10)); // refresh
        let removed = g.purge_expired(Timestamp(5));
        assert_eq!(removed, 0);
        assert_eq!(g.edge_ts(v(0), v(1), l(0)), Some(Timestamp(10)));
        // Later purge removes it exactly once.
        let removed = g.purge_expired(Timestamp(10));
        assert_eq!(removed, 1);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn purge_is_idempotent() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(1));
        assert_eq!(g.purge_expired(Timestamp(1)), 1);
        assert_eq!(g.purge_expired(Timestamp(1)), 0);
        assert_eq!(g.purge_expired(Timestamp(100)), 0);
    }

    #[test]
    fn explicit_delete_then_purge_does_not_double_count() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(1));
        g.remove(v(0), v(1), l(0));
        // The queue entry is stale; purge must skip it gracefully.
        assert_eq!(g.purge_expired(Timestamp(5)), 0);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn vertices_and_edges_snapshots() {
        let mut g = WindowGraph::new();
        g.insert(v(3), v(1), l(0), Timestamp(5));
        g.insert(v(1), v(2), l(1), Timestamp(6));
        assert_eq!(g.vertices(NEG), vec![v(1), v(2), v(3)]);
        assert_eq!(g.vertices(Timestamp(5)), vec![v(1), v(2)]);
        let edges = g.edges(NEG);
        assert_eq!(edges.len(), 2);
        assert_eq!(g.edges(Timestamp(5)).len(), 1);
    }

    #[test]
    fn self_loops_are_supported() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(0), l(0), Timestamp(1));
        assert_eq!(g.n_vertices(), 1);
        assert_eq!(g.out_edges(v(0), NEG).count(), 1);
        assert_eq!(g.in_edges(v(0), NEG).count(), 1);
        g.remove(v(0), v(0), l(0));
        assert_eq!(g.n_vertices(), 0);
    }
}
