//! The windowed adjacency store, label-partitioned.
//!
//! Semantics: the window content is a set of labeled edges, each carrying
//! the timestamp of its **most recent** insertion. Re-inserting an edge
//! refreshes its timestamp (it is the same edge of the snapshot graph,
//! now expiring later); an explicit deletion removes it regardless of how
//! many times it was inserted. Expiry is *lazy*: stale entries linger
//! until [`WindowGraph::purge_expired`] runs at a slide boundary, so all
//! traversal APIs take a validity watermark and filter on it — exactly
//! the discipline Algorithms RAPQ/RSPQ apply with their
//! `(u, s).ts > τ − |W|` guards.
//!
//! # Layout
//!
//! Adjacency is **partitioned by label**: `out[u][l]` is a contiguous
//! posting list of `(v, ts)` pairs (and `inc[v][l]` symmetrically), so
//! the engines' inner loops — "which edges out of `u` carry label `l`
//! and are still in the window?" — iterate exactly the matching edges,
//! never scanning or filtering the rest of `u`'s neighborhood. The
//! traversal APIs ([`WindowGraph::out_edges`], [`WindowGraph::in_edges`])
//! are borrowing iterators over those lists: no allocation per call.
//!
//! Each edge additionally owns a *slot* in a stable arena recording its
//! `(src, dst, label)`, a generation counter, and the positions of its
//! two postings. Slots buy O(1) maintenance everywhere:
//! refresh rewrites both postings through the stored positions,
//! removal `swap_remove`s them (fixing up the displaced edge's slot),
//! and the arrival-ordered expiry queue stores `(ts, slot, gen)` so a
//! queue entry made stale by a refresh or deletion is recognized by a
//! single indexed load and generation compare — no hash lookups at all
//! for skipped entries, keeping [`WindowGraph::purge_expired`] amortized
//! O(#expired) even under refresh-heavy streams.

use srpq_common::{FxHashMap, Label, Timestamp, VertexId};
use std::collections::VecDeque;

/// A per-micro-batch visibility horizon for shared-graph traversal.
///
/// The parallel multi-query coordinator applies a whole micro-batch of
/// graph inserts up front (single-threaded), stamping each *newly
/// created* edge with its batch position via
/// [`WindowGraph::insert_visible_from`]. Worker threads then traverse
/// the shared graph read-only, passing the position of the tuple they
/// are evaluating: an edge stamped later in the batch is invisible,
/// exactly as it would not yet exist in a sequential per-tuple run.
/// Stamps are transient — [`WindowGraph::clear_stamps`] resets them
/// after the batch — so a default-constructed slot (`vis_from == 0`) is
/// always visible and owned single-engine traversal pays nothing.
///
/// `horizon` counts visible stamped positions: an edge stamped with
/// `vis_from = pos + 1` (batch position `pos`) is visible iff
/// `vis_from <= horizon`. [`Visibility::ALL`] sees everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Visibility {
    horizon: u32,
}

impl Visibility {
    /// Everything in the graph is visible (owned-graph engines, and the
    /// degenerate shared case of a fully applied batch).
    pub const ALL: Visibility = Visibility { horizon: u32::MAX };

    /// Visibility for *extending* on the tuple at batch position `pos`:
    /// the tuple's own edge (stamped `pos + 1`) and everything before
    /// it are visible; later in-batch edges are not.
    #[inline]
    pub fn upto(pos: usize) -> Visibility {
        Visibility {
            horizon: pos as u32 + 1,
        }
    }

    /// Visibility for work that sequentially precedes the current
    /// tuple's graph mutation (the slide-boundary Δ-expiry pass runs
    /// before the tuple's edge exists): one position earlier.
    #[inline]
    pub fn before(self) -> Visibility {
        Visibility {
            horizon: self.horizon.saturating_sub(1),
        }
    }

    /// Whether a slot stamped `vis_from` is visible under this horizon.
    #[inline]
    fn admits(self, vis_from: u32) -> bool {
        vis_from <= self.horizon
    }
}

/// A labeled, timestamped half-edge as seen from one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// The other endpoint (target for out-edges, source for in-edges).
    pub other: VertexId,
    /// The edge label.
    pub label: Label,
    /// Timestamp of the most recent insertion of this edge.
    pub ts: Timestamp,
}

/// One adjacency posting: the far endpoint, the edge's current
/// timestamp (kept inline for cache-friendly traversal), and the owning
/// slot (for swap-remove fix-ups).
#[derive(Debug, Clone, Copy)]
struct Posting {
    other: VertexId,
    ts: Timestamp,
    slot: u32,
}

/// Per-edge bookkeeping record; the arena index is stable for the
/// edge's lifetime. Deliberately 24 bytes: the slot is a random-access
/// structure (the postings carry the timestamp), so density matters.
#[derive(Debug, Clone, Copy)]
struct Slot {
    src: VertexId,
    dst: VertexId,
    label: Label,
    /// Bumped on every refresh and removal: queue entries carrying an
    /// older generation are stale and skipped without any map lookup.
    /// (Also covers liveness — a freed slot's generation was bumped, so
    /// no stale queue entry can match it, even across slot reuse.)
    gen: u32,
    /// Position of this edge's posting in `out[src][label]`.
    out_pos: u32,
    /// Position of this edge's posting in `inc[dst][label]`.
    inc_pos: u32,
    /// Micro-batch visibility stamp (see [`Visibility`]): `0` = visible
    /// at every horizon; `pos + 1` = created at batch position `pos`.
    /// Reset by [`WindowGraph::clear_stamps`] after every batch.
    vis_from: u32,
}

/// A borrowed view of one vertex's label-partitioned adjacency (one
/// direction). Obtained from [`WindowGraph::out_view`] /
/// [`WindowGraph::in_view`]; serves per-label posting-list scans
/// without re-hashing the vertex.
#[derive(Debug, Clone, Copy)]
pub struct AdjView<'g> {
    map: Option<&'g FxHashMap<Label, Vec<Posting>>>,
    slots: &'g [Slot],
    vis: Visibility,
}

impl<'g> AdjView<'g> {
    /// Edges carrying `label` with timestamps `> watermark`: a
    /// borrowing, allocation-free iterator over the posting list.
    /// Under a restricted [`Visibility`] (shared-graph workers), edges
    /// stamped later in the current micro-batch are skipped; under
    /// [`Visibility::ALL`] the stamp is never even loaded.
    pub fn edges(&self, label: Label, watermark: Timestamp) -> impl Iterator<Item = EdgeRef> + 'g {
        let vis = self.vis;
        let all = vis == Visibility::ALL;
        let slots = self.slots;
        self.map
            .and_then(|m| m.get(&label))
            .into_iter()
            .flat_map(|list| list.iter())
            .filter(move |p| {
                p.ts > watermark && (all || vis.admits(slots[p.slot as usize].vis_from))
            })
            .map(move |p| EdgeRef {
                other: p.other,
                label,
                ts: p.ts,
            })
    }

    /// Whether the vertex has no stored edges in this direction at all
    /// (emptied posting lists are retained, so each must be checked).
    pub fn is_empty(&self) -> bool {
        self.map.is_none_or(|m| m.values().all(Vec::is_empty))
    }
}

/// An arrival-ordered expiry queue entry.
#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    ts: Timestamp,
    slot: u32,
    gen: u32,
}

/// One direction of a vertex's label-partitioned adjacency. Emptied
/// posting lists and label entries are *retained* (capacity at high
/// water) rather than pruned: sliding-window churn re-adds the same
/// `(vertex, label)` keys over and over, and reuse of warm containers
/// keeps the steady-state insert path allocation-free. Presence is
/// tracked by `len`, the live posting count across all labels.
#[derive(Debug, Default)]
struct Adj {
    by_label: FxHashMap<Label, Vec<Posting>>,
    len: usize,
}

/// The snapshot graph `G_{W,τ}` of a sliding window over a streaming
/// graph, stored as label-partitioned adjacency in both directions.
#[derive(Debug, Default)]
pub struct WindowGraph {
    /// `out[u][l]` → posting list of `(v, ts)`.
    out: FxHashMap<VertexId, Adj>,
    /// `inc[v][l]` → posting list of `(u, ts)`.
    inc: FxHashMap<VertexId, Adj>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Slots stamped with a batch position this micro-batch (drained by
    /// [`Self::clear_stamps`]).
    stamped: Vec<u32>,
    /// Arrival-ordered queue driving O(#expired) purge.
    queue: VecDeque<QueueEntry>,
    n_edges: usize,
    n_vertices: usize,
    purge_pops: u64,
    purge_stale_skips: u64,
}

impl WindowGraph {
    /// Creates an empty window graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct labeled edges currently stored (including
    /// not-yet-purged expired ones).
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Number of vertices with at least one incident stored edge.
    /// Maintained incrementally — O(1).
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Expiry-queue entries popped so far (instrumentation: each pop is
    /// O(1) and every entry is popped at most once).
    pub fn purge_pops(&self) -> u64 {
        self.purge_pops
    }

    /// Popped entries that were skipped as stale (refreshed or deleted
    /// edges) by the generation check, without any map lookup.
    pub fn purge_stale_skips(&self) -> u64 {
        self.purge_stale_skips
    }

    /// Current expiry-queue length (instrumentation).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Inserts (or refreshes) edge `u →l v` at time `ts`. Returns `true`
    /// if the edge was not present before.
    ///
    /// Existence is resolved by scanning the `(u, l)` posting list —
    /// for streaming graphs the per-source-per-label degree is small,
    /// and the scan beats a separate edge→slot hash map (whose every
    /// probe is a cache miss) by a wide margin.
    pub fn insert(&mut self, u: VertexId, v: VertexId, label: Label, ts: Timestamp) -> bool {
        self.insert_inner(u, v, label, ts, 0)
    }

    /// [`Self::insert`] with a micro-batch visibility stamp: a *newly
    /// created* edge becomes visible only to [`Visibility`] horizons
    /// covering batch position `pos` (a refresh of an existing edge
    /// keeps its stamp — the edge already existed at every horizon).
    /// The coordinator of a shared-graph batch applies all inserts
    /// through this, then calls [`Self::clear_stamps`] once the batch's
    /// workers are done.
    pub fn insert_visible_from(
        &mut self,
        u: VertexId,
        v: VertexId,
        label: Label,
        ts: Timestamp,
        pos: usize,
    ) -> bool {
        self.insert_inner(u, v, label, ts, pos as u32 + 1)
    }

    /// Resets every stamp written since the last call, making all edges
    /// visible at every horizon again. O(#stamped).
    pub fn clear_stamps(&mut self) {
        while let Some(id) = self.stamped.pop() {
            self.slots[id as usize].vis_from = 0;
        }
    }

    fn insert_inner(
        &mut self,
        u: VertexId,
        v: VertexId,
        label: Label,
        ts: Timestamp,
        vis_from: u32,
    ) -> bool {
        let out_outer = self.out.entry(u).or_default();
        let u_first_out = out_outer.len == 0;
        let out_list = out_outer.by_label.entry(label).or_default();
        if let Some(pos) = out_list.iter().position(|p| p.other == v) {
            // Refresh: rewrite the timestamp in both postings through
            // the stored positions — O(1).
            let id = out_list[pos].slot;
            out_list[pos].ts = ts;
            let slot = &mut self.slots[id as usize];
            slot.gen = slot.gen.wrapping_add(1);
            let (inc_pos, gen) = (slot.inc_pos, slot.gen);
            self.inc
                .get_mut(&v)
                .expect("live edge has inc postings")
                .by_label
                .get_mut(&label)
                .expect("live edge has inc postings")[inc_pos as usize]
                .ts = ts;
            self.queue.push_back(QueueEntry { ts, slot: id, gen });
            return false;
        }
        let out_pos = out_list.len() as u32;
        // Slot arena write (inc_pos patched below — same cache line,
        // effectively free). Reuse a freed slot or append.
        let (id, gen) = match self.free.pop() {
            Some(id) => {
                let slot = &mut self.slots[id as usize];
                *slot = Slot {
                    src: u,
                    dst: v,
                    label,
                    gen: slot.gen,
                    out_pos,
                    inc_pos: 0,
                    vis_from,
                };
                (id, slot.gen)
            }
            None => {
                self.slots.push(Slot {
                    src: u,
                    dst: v,
                    label,
                    gen: 0,
                    out_pos,
                    inc_pos: 0,
                    vis_from,
                });
                ((self.slots.len() - 1) as u32, 0)
            }
        };
        if vis_from != 0 {
            self.stamped.push(id);
        }
        out_list.push(Posting {
            other: v,
            ts,
            slot: id,
        });
        out_outer.len += 1;
        // Presence transitions: a vertex joins the graph exactly when
        // both directions hold no live posting. The outer entries are
        // touched here anyway, so the maintained vertex count costs at
        // most one extra lookup per *first* edge.
        if u_first_out && self.inc.get(&u).is_none_or(|a| a.len == 0) {
            self.n_vertices += 1;
        }
        let inc_outer = self.inc.entry(v).or_default();
        let v_first_inc = inc_outer.len == 0;
        let inc_list = inc_outer.by_label.entry(label).or_default();
        let inc_pos = inc_list.len() as u32;
        inc_list.push(Posting {
            other: u,
            ts,
            slot: id,
        });
        inc_outer.len += 1;
        if v_first_inc && self.out.get(&v).is_none_or(|a| a.len == 0) {
            self.n_vertices += 1;
        }
        self.slots[id as usize].inc_pos = inc_pos;
        self.queue.push_back(QueueEntry { ts, slot: id, gen });
        self.n_edges += 1;
        true
    }

    /// Removes edge `u →l v` (explicit deletion). Returns its timestamp
    /// if it was present.
    pub fn remove(&mut self, u: VertexId, v: VertexId, label: Label) -> Option<Timestamp> {
        let list = self.out.get(&u)?.by_label.get(&label)?;
        let pos = list.iter().position(|p| p.other == v)?;
        let id = list[pos].slot;
        Some(self.remove_slot(id))
    }

    /// Removes the edge owning `id` through its stored posting
    /// positions — no scans, no edge-key hashing. The slot must be live.
    fn remove_slot(&mut self, id: u32) -> Timestamp {
        let slot = self.slots[id as usize];
        let (u_out_gone, ts) = Self::detach_posting(
            &mut self.out,
            &mut self.slots,
            slot.src,
            slot.label,
            slot.out_pos,
            false,
        );
        let (v_inc_gone, _) = Self::detach_posting(
            &mut self.inc,
            &mut self.slots,
            slot.dst,
            slot.label,
            slot.inc_pos,
            true,
        );
        self.slots[id as usize].gen = slot.gen.wrapping_add(1);
        self.free.push(id);
        self.n_edges -= 1;
        // Presence transitions (see `insert`): a vertex leaves the graph
        // when its last live posting in one direction goes and the
        // opposite direction holds nothing either.
        if u_out_gone && self.inc.get(&slot.src).is_none_or(|a| a.len == 0) {
            self.n_vertices -= 1;
        }
        if slot.dst != slot.src && v_inc_gone && self.out.get(&slot.dst).is_none_or(|a| a.len == 0)
        {
            self.n_vertices -= 1;
        }
        ts
    }

    /// Swap-removes the posting at `pos` from `adj[vertex][label]`,
    /// repairing the displaced edge's stored position. Emptied lists
    /// and entries are retained with their capacity (see [`Adj`]).
    /// Returns whether this was the vertex's last live posting in this
    /// direction, and the removed posting's timestamp.
    fn detach_posting(
        adj: &mut FxHashMap<VertexId, Adj>,
        slots: &mut [Slot],
        vertex: VertexId,
        label: Label,
        pos: u32,
        inc_side: bool,
    ) -> (bool, Timestamp) {
        let entry = adj.get_mut(&vertex).expect("posting parent exists");
        let list = entry.by_label.get_mut(&label).expect("posting list exists");
        let removed = list.swap_remove(pos as usize);
        if let Some(moved) = list.get(pos as usize) {
            let ms = &mut slots[moved.slot as usize];
            if inc_side {
                ms.inc_pos = pos;
            } else {
                ms.out_pos = pos;
            }
        }
        entry.len -= 1;
        (entry.len == 0, removed.ts)
    }

    /// The current timestamp of edge `u →l v`, if present.
    pub fn edge_ts(&self, u: VertexId, v: VertexId, label: Label) -> Option<Timestamp> {
        self.out
            .get(&u)?
            .by_label
            .get(&label)?
            .iter()
            .find(|p| p.other == v)
            .map(|p| p.ts)
    }

    /// Whether edge `u →l v` is present and valid after `watermark`.
    pub fn contains_valid(
        &self,
        u: VertexId,
        v: VertexId,
        label: Label,
        watermark: Timestamp,
    ) -> bool {
        self.edge_ts(u, v, label).map(|ts| ts > watermark) == Some(true)
    }

    /// Purges every edge whose timestamp is `<= watermark`. Returns the
    /// number of edges removed. Amortized O(#expired) thanks to the
    /// arrival-ordered queue; entries stale-ified by refreshes or
    /// deletions are skipped on a generation compare alone.
    pub fn purge_expired(&mut self, watermark: Timestamp) -> usize {
        let mut removed = 0;
        while let Some(&QueueEntry { ts, slot, gen }) = self.queue.front() {
            if ts > watermark {
                break;
            }
            self.queue.pop_front();
            self.purge_pops += 1;
            // A refresh or removal bumped the generation: the queued
            // entry no longer describes the stored edge (freed slots
            // bump too, so this also covers liveness and slot reuse).
            // Skip before touching any map.
            if self.slots[slot as usize].gen != gen {
                self.purge_stale_skips += 1;
                continue;
            }
            self.remove_slot(slot);
            removed += 1;
        }
        removed
    }

    /// Out-edges of `u` labeled `label` with timestamps `> watermark`.
    /// Borrowing iterator over the posting list: zero allocation,
    /// O(matching edges).
    pub fn out_edges(
        &self,
        u: VertexId,
        label: Label,
        watermark: Timestamp,
    ) -> impl Iterator<Item = EdgeRef> + '_ {
        self.out_view(u).edges(label, watermark)
    }

    /// In-edges of `v` labeled `label` with timestamps `> watermark`.
    pub fn in_edges(
        &self,
        v: VertexId,
        label: Label,
        watermark: Timestamp,
    ) -> impl Iterator<Item = EdgeRef> + '_ {
        self.in_view(v).edges(label, watermark)
    }

    /// A borrowed view of `u`'s out-adjacency: hashes `u` once, then
    /// serves any number of per-label edge scans. The engines hoist
    /// this out of their per-DFA-transition loops.
    #[inline]
    pub fn out_view(&self, u: VertexId) -> AdjView<'_> {
        self.out_view_at(u, Visibility::ALL)
    }

    /// A borrowed view of `v`'s in-adjacency.
    #[inline]
    pub fn in_view(&self, v: VertexId) -> AdjView<'_> {
        self.in_view_at(v, Visibility::ALL)
    }

    /// [`Self::out_view`] restricted to a micro-batch [`Visibility`]
    /// horizon (shared-graph worker traversal).
    #[inline]
    pub fn out_view_at(&self, u: VertexId, vis: Visibility) -> AdjView<'_> {
        AdjView {
            map: self.out.get(&u).map(|a| &a.by_label),
            slots: &self.slots,
            vis,
        }
    }

    /// [`Self::in_view`] restricted to a micro-batch [`Visibility`]
    /// horizon.
    #[inline]
    pub fn in_view_at(&self, v: VertexId, vis: Visibility) -> AdjView<'_> {
        AdjView {
            map: self.inc.get(&v).map(|a| &a.by_label),
            slots: &self.slots,
            vis,
        }
    }

    /// Out-edges of `u` across **all** labels with timestamps
    /// `> watermark` (baselines and snapshot exports; the engines use
    /// the label-partitioned [`Self::out_edges`]).
    pub fn out_edges_any(
        &self,
        u: VertexId,
        watermark: Timestamp,
    ) -> impl Iterator<Item = EdgeRef> + '_ {
        self.out
            .get(&u)
            .into_iter()
            .flat_map(|a| a.by_label.iter())
            .flat_map(|(&label, list)| list.iter().map(move |p| (label, p)))
            .filter(move |(_, p)| p.ts > watermark)
            .map(|(label, p)| EdgeRef {
                other: p.other,
                label,
                ts: p.ts,
            })
    }

    /// In-edges of `v` across **all** labels with timestamps
    /// `> watermark`.
    pub fn in_edges_any(
        &self,
        v: VertexId,
        watermark: Timestamp,
    ) -> impl Iterator<Item = EdgeRef> + '_ {
        self.inc
            .get(&v)
            .into_iter()
            .flat_map(|a| a.by_label.iter())
            .flat_map(|(&label, list)| list.iter().map(move |p| (label, p)))
            .filter(move |(_, p)| p.ts > watermark)
            .map(|(label, p)| EdgeRef {
                other: p.other,
                label,
                ts: p.ts,
            })
    }

    /// All vertices with at least one valid out- or in-edge after
    /// `watermark`.
    pub fn vertices(&self, watermark: Timestamp) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = Vec::new();
        for (&u, a) in &self.out {
            if a.by_label.values().flatten().any(|p| p.ts > watermark) {
                out.push(u);
            }
        }
        for (&v, a) in &self.inc {
            if a.by_label.values().flatten().any(|p| p.ts > watermark) {
                out.push(v);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All valid edges `(u, v, label, ts)` after `watermark` (snapshot
    /// export for the batch baselines).
    pub fn edges(&self, watermark: Timestamp) -> Vec<(VertexId, VertexId, Label, Timestamp)> {
        let mut out = Vec::with_capacity(self.n_edges);
        for (&u, a) in &self.out {
            for (&l, list) in &a.by_label {
                for p in list {
                    if p.ts > watermark {
                        out.push((u, p.other, l, p.ts));
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEG: Timestamp = Timestamp(i64::MIN);

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn l(i: u32) -> Label {
        Label(i)
    }

    #[test]
    fn insert_and_lookup() {
        let mut g = WindowGraph::new();
        assert!(g.insert(v(0), v(1), l(0), Timestamp(5)));
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.n_vertices(), 2);
        assert_eq!(g.edge_ts(v(0), v(1), l(0)), Some(Timestamp(5)));
        assert_eq!(g.edge_ts(v(1), v(0), l(0)), None);
        assert_eq!(g.edge_ts(v(0), v(1), l(1)), None);
    }

    #[test]
    fn reinsert_refreshes_timestamp() {
        let mut g = WindowGraph::new();
        assert!(g.insert(v(0), v(1), l(0), Timestamp(5)));
        assert!(!g.insert(v(0), v(1), l(0), Timestamp(9)));
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.edge_ts(v(0), v(1), l(0)), Some(Timestamp(9)));
        // Both traversal directions see the refreshed timestamp.
        assert_eq!(
            g.out_edges(v(0), l(0), NEG).next().map(|e| e.ts),
            Some(Timestamp(9))
        );
        assert_eq!(
            g.in_edges(v(1), l(0), NEG).next().map(|e| e.ts),
            Some(Timestamp(9))
        );
    }

    #[test]
    fn parallel_edges_with_distinct_labels() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(1));
        g.insert(v(0), v(1), l(1), Timestamp(2));
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.out_edges(v(0), l(0), NEG).count(), 1);
        assert_eq!(g.out_edges(v(0), l(1), NEG).count(), 1);
        assert_eq!(g.out_edges_any(v(0), NEG).count(), 2);
    }

    #[test]
    fn label_partition_iterates_only_matching_edges() {
        let mut g = WindowGraph::new();
        for i in 1..=10 {
            g.insert(v(0), v(i), l(i % 3), Timestamp(i as i64));
        }
        let only_l0: Vec<_> = g.out_edges(v(0), l(0), NEG).collect();
        assert_eq!(only_l0.len(), 3); // i = 3, 6, 9
        assert!(only_l0.iter().all(|e| e.label == l(0)));
        assert_eq!(g.out_edges_any(v(0), NEG).count(), 10);
    }

    #[test]
    fn remove_cleans_both_directions() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(1));
        assert_eq!(g.remove(v(0), v(1), l(0)), Some(Timestamp(1)));
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.out_edges(v(0), l(0), NEG).count(), 0);
        assert_eq!(g.in_edges(v(1), l(0), NEG).count(), 0);
        assert_eq!(g.n_vertices(), 0);
        // Double delete is a no-op.
        assert_eq!(g.remove(v(0), v(1), l(0)), None);
    }

    #[test]
    fn swap_remove_repairs_displaced_positions() {
        // Three same-label edges out of one vertex; removing the first
        // swap-moves the last into its place, and that edge must remain
        // fully maintainable (refresh + remove) afterwards.
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(1));
        g.insert(v(0), v(2), l(0), Timestamp(2));
        g.insert(v(0), v(3), l(0), Timestamp(3));
        g.remove(v(0), v(1), l(0));
        assert!(!g.insert(v(0), v(3), l(0), Timestamp(9))); // refresh
        assert_eq!(g.edge_ts(v(0), v(3), l(0)), Some(Timestamp(9)));
        let mut seen: Vec<_> = g.out_edges(v(0), l(0), NEG).map(|e| e.other).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![v(2), v(3)]);
        assert_eq!(g.remove(v(0), v(3), l(0)), Some(Timestamp(9)));
        assert_eq!(g.remove(v(0), v(2), l(0)), Some(Timestamp(2)));
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn watermark_filters_traversal() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(5));
        g.insert(v(0), v(2), l(0), Timestamp(15));
        let visible: Vec<_> = g.out_edges(v(0), l(0), Timestamp(10)).collect();
        assert_eq!(visible.len(), 1);
        assert_eq!(visible[0].other, v(2));
        assert!(g.contains_valid(v(0), v(2), l(0), Timestamp(10)));
        assert!(!g.contains_valid(v(0), v(1), l(0), Timestamp(10)));
    }

    #[test]
    fn purge_removes_only_expired() {
        let mut g = WindowGraph::new();
        for i in 0..10 {
            g.insert(v(i), v(i + 1), l(0), Timestamp(i as i64));
        }
        let removed = g.purge_expired(Timestamp(4));
        assert_eq!(removed, 5);
        assert_eq!(g.n_edges(), 5);
        assert_eq!(g.edge_ts(v(4), v(5), l(0)), None);
        assert_eq!(g.edge_ts(v(5), v(6), l(0)), Some(Timestamp(5)));
    }

    #[test]
    fn purge_skips_refreshed_edges() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(1));
        g.insert(v(0), v(1), l(0), Timestamp(10)); // refresh
        let removed = g.purge_expired(Timestamp(5));
        assert_eq!(removed, 0);
        assert_eq!(g.purge_stale_skips(), 1);
        assert_eq!(g.edge_ts(v(0), v(1), l(0)), Some(Timestamp(10)));
        // Later purge removes it exactly once.
        let removed = g.purge_expired(Timestamp(10));
        assert_eq!(removed, 1);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn purge_work_is_bounded_by_stream_length_under_refresh() {
        // O(expired) pin: a refresh-heavy stream (every edge refreshed
        // `refreshes` times) must cost at most one queue pop per queued
        // entry over the whole run, with every stale entry skipped by
        // the generation check (no per-skip map work to count — the
        // counters expose exactly how many pops and skips happened).
        let n = 50u32;
        let refreshes = 9i64;
        let mut g = WindowGraph::new();
        let mut queued = 0u64;
        for round in 0..=refreshes {
            for i in 0..n {
                g.insert(v(i), v(i + 1), l(0), Timestamp(round * 100 + i as i64));
                queued += 1;
            }
        }
        // Purge below every *current* timestamp: only the stale
        // (superseded) entries leave the queue; nothing is removed.
        let removed = g.purge_expired(Timestamp(refreshes * 100 - 1));
        assert_eq!(removed, 0);
        assert_eq!(g.n_edges(), n as usize);
        assert_eq!(g.purge_stale_skips(), queued - n as u64);
        assert_eq!(g.purge_pops(), queued - n as u64);
        assert_eq!(g.queue_len(), n as usize);
        // Final purge pops each live entry exactly once: total pops over
        // the graph's lifetime equal total queued entries — O(stream),
        // i.e. amortized O(1) per tuple, O(#expired) per purge call.
        let removed = g.purge_expired(Timestamp(i64::MAX - 1));
        assert_eq!(removed, n as usize);
        assert_eq!(g.purge_pops(), queued);
        assert_eq!(g.queue_len(), 0);
        // Idempotent afterwards: no queue, no pops.
        assert_eq!(g.purge_expired(Timestamp(i64::MAX - 1)), 0);
        assert_eq!(g.purge_pops(), queued);
    }

    #[test]
    fn purge_is_idempotent() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(1));
        assert_eq!(g.purge_expired(Timestamp(1)), 1);
        assert_eq!(g.purge_expired(Timestamp(1)), 0);
        assert_eq!(g.purge_expired(Timestamp(100)), 0);
    }

    #[test]
    fn explicit_delete_then_purge_does_not_double_count() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(1));
        g.remove(v(0), v(1), l(0));
        // The queue entry is stale; purge must skip it gracefully.
        assert_eq!(g.purge_expired(Timestamp(5)), 0);
        assert_eq!(g.purge_stale_skips(), 1);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn slot_reuse_does_not_confuse_purge() {
        // Remove an edge, insert a different edge (reusing the slot) at
        // a timestamp equal to the dead edge's: the dead edge's queue
        // entry must not purge the new edge.
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(5));
        g.remove(v(0), v(1), l(0));
        g.insert(v(2), v(3), l(0), Timestamp(200));
        assert_eq!(g.purge_expired(Timestamp(5)), 0);
        assert_eq!(g.edge_ts(v(2), v(3), l(0)), Some(Timestamp(200)));
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn vertices_and_edges_snapshots() {
        let mut g = WindowGraph::new();
        g.insert(v(3), v(1), l(0), Timestamp(5));
        g.insert(v(1), v(2), l(1), Timestamp(6));
        assert_eq!(g.vertices(NEG), vec![v(1), v(2), v(3)]);
        assert_eq!(g.vertices(Timestamp(5)), vec![v(1), v(2)]);
        let edges = g.edges(NEG);
        assert_eq!(edges.len(), 2);
        assert_eq!(g.edges(Timestamp(5)).len(), 1);
    }

    #[test]
    fn self_loops_are_supported() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(0), l(0), Timestamp(1));
        assert_eq!(g.n_vertices(), 1);
        assert_eq!(g.out_edges(v(0), l(0), NEG).count(), 1);
        assert_eq!(g.in_edges(v(0), l(0), NEG).count(), 1);
        g.remove(v(0), v(0), l(0));
        assert_eq!(g.n_vertices(), 0);
    }

    #[test]
    fn visibility_hides_later_batch_positions() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(1)); // pre-batch
        g.insert_visible_from(v(0), v(2), l(0), Timestamp(2), 0);
        g.insert_visible_from(v(0), v(3), l(0), Timestamp(3), 2);

        fn others(g: &WindowGraph, vis: Visibility) -> Vec<VertexId> {
            let mut o: Vec<_> = g
                .out_view_at(v(0), vis)
                .edges(l(0), NEG)
                .map(|e| e.other)
                .collect();
            o.sort_unstable();
            o
        }
        // Expiry before position 0 sees only the pre-batch edge.
        assert_eq!(others(&g, Visibility::upto(0).before()), vec![v(1)]);
        // Extending on position 0 sees its own edge.
        assert_eq!(others(&g, Visibility::upto(0)), vec![v(1), v(2)]);
        // Position 1 does not yet see the edge stamped at position 2.
        assert_eq!(others(&g, Visibility::upto(1)), vec![v(1), v(2)]);
        assert_eq!(others(&g, Visibility::upto(2)), vec![v(1), v(2), v(3)]);
        assert_eq!(others(&g, Visibility::ALL), vec![v(1), v(2), v(3)]);
        // The in-direction applies the same filter.
        assert_eq!(
            g.in_view_at(v(3), Visibility::upto(1))
                .edges(l(0), NEG)
                .count(),
            0
        );
        assert_eq!(
            g.in_view_at(v(3), Visibility::upto(2))
                .edges(l(0), NEG)
                .count(),
            1
        );

        // A refresh keeps the edge visible at every horizon (it already
        // existed), and clear_stamps makes everything visible again.
        assert!(!g.insert_visible_from(v(0), v(1), l(0), Timestamp(9), 3));
        assert_eq!(others(&g, Visibility::upto(0).before()), vec![v(1)]);
        g.clear_stamps();
        assert_eq!(
            others(&g, Visibility::upto(0).before()),
            vec![v(1), v(2), v(3)]
        );
        // Stamps from the next batch start clean (freed + reused slots
        // included).
        g.remove(v(0), v(2), l(0));
        g.insert(v(5), v(6), l(0), Timestamp(10));
        assert_eq!(
            g.out_view_at(v(5), Visibility::upto(0).before())
                .edges(l(0), NEG)
                .count(),
            1
        );
    }

    #[test]
    fn n_vertices_tracks_mixed_churn() {
        let mut g = WindowGraph::new();
        g.insert(v(0), v(1), l(0), Timestamp(1));
        g.insert(v(1), v(2), l(0), Timestamp(2));
        g.insert(v(0), v(1), l(1), Timestamp(3));
        assert_eq!(g.n_vertices(), 3);
        g.remove(v(0), v(1), l(0));
        assert_eq!(g.n_vertices(), 3); // 0—1 still linked via l(1)
        g.remove(v(0), v(1), l(1));
        assert_eq!(g.n_vertices(), 2); // v0 gone
        g.purge_expired(Timestamp(100));
        assert_eq!(g.n_vertices(), 0);
    }
}
