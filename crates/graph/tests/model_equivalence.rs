//! Seeded randomized equivalence: [`WindowGraph`] against a naive
//! reference model (`HashMap<(u, v, l) → ts>`) through mixed
//! insert / refresh / delete / purge sequences.
//!
//! The model is the store's contract stripped of every data structure:
//! the window content is a map from labeled edges to their most recent
//! insertion timestamp; purge drops entries `<= watermark`. After every
//! few operations the full observable surface is compared — edge
//! counts, the maintained vertex count, point lookups, label-partitioned
//! traversal in both directions under a random watermark, and the
//! sorted snapshot export.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srpq_graph::WindowGraph;
use std::collections::HashMap;

use srpq_common::{Label as L, Timestamp as T, VertexId as V};

#[derive(Default)]
struct Model {
    edges: HashMap<(V, V, L), T>,
}

impl Model {
    fn insert(&mut self, u: V, v: V, l: L, ts: T) -> bool {
        self.edges.insert((u, v, l), ts).is_none()
    }

    fn remove(&mut self, u: V, v: V, l: L) -> Option<T> {
        self.edges.remove(&(u, v, l))
    }

    fn purge(&mut self, wm: T) -> usize {
        let before = self.edges.len();
        self.edges.retain(|_, &mut ts| ts > wm);
        before - self.edges.len()
    }

    fn n_vertices(&self) -> usize {
        let mut vs: Vec<V> = Vec::new();
        for &(u, v, _) in self.edges.keys() {
            vs.push(u);
            vs.push(v);
        }
        vs.sort_unstable();
        vs.dedup();
        vs.len()
    }

    fn out_of(&self, u: V, l: L, wm: T) -> Vec<(V, T)> {
        let mut out: Vec<(V, T)> = self
            .edges
            .iter()
            .filter(|&(&(eu, _, el), &ts)| eu == u && el == l && ts > wm)
            .map(|(&(_, ev, _), &ts)| (ev, ts))
            .collect();
        out.sort_unstable();
        out
    }

    fn in_of(&self, v: V, l: L, wm: T) -> Vec<(V, T)> {
        let mut out: Vec<(V, T)> = self
            .edges
            .iter()
            .filter(|&(&(_, ev, el), &ts)| ev == v && el == l && ts > wm)
            .map(|(&(eu, _, _), &ts)| (eu, ts))
            .collect();
        out.sort_unstable();
        out
    }

    fn snapshot(&self, wm: T) -> Vec<(V, V, L, T)> {
        let mut out: Vec<(V, V, L, T)> = self
            .edges
            .iter()
            .filter(|&(_, &ts)| ts > wm)
            .map(|(&(u, v, l), &ts)| (u, v, l, ts))
            .collect();
        out.sort_unstable();
        out
    }
}

fn check_full(g: &WindowGraph, m: &Model, wm: T, n_vertices: u32, n_labels: u32, ctx: &str) {
    assert_eq!(g.n_edges(), m.edges.len(), "n_edges {ctx}");
    assert_eq!(g.n_vertices(), m.n_vertices(), "n_vertices {ctx}");
    assert_eq!(g.edges(wm), m.snapshot(wm), "snapshot {ctx}");
    for u in 0..n_vertices {
        let u = V(u);
        for l in 0..n_labels {
            let l = L(l);
            let mut got: Vec<(V, T)> = g.out_edges(u, l, wm).map(|e| (e.other, e.ts)).collect();
            got.sort_unstable();
            assert_eq!(got, m.out_of(u, l, wm), "out({u}, {l}) {ctx}");
            let mut got: Vec<(V, T)> = g.in_edges(u, l, wm).map(|e| (e.other, e.ts)).collect();
            got.sort_unstable();
            assert_eq!(got, m.in_of(u, l, wm), "in({u}, {l}) {ctx}");
        }
        let any = g.out_edges_any(u, wm).count();
        let expect: usize = (0..n_labels).map(|l| m.out_of(u, L(l), wm).len()).sum();
        assert_eq!(any, expect, "out_any({u}) {ctx}");
    }
}

#[test]
fn random_ops_match_reference_model() {
    const N_VERTICES: u32 = 8;
    const N_LABELS: u32 = 3;
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(0x5eed ^ seed);
        let mut g = WindowGraph::new();
        let mut m = Model::default();
        let mut ts = 0i64;
        let mut max_purged = i64::MIN;
        for step in 0..600 {
            ts += rng.gen_range(0..=2i64);
            match rng.gen_range(0..10u32) {
                // Insert or refresh (refresh biased onto live edges).
                0..=5 => {
                    let (u, v, l) = if !m.edges.is_empty() && rng.gen_bool(0.4) {
                        let keys: Vec<_> = m.edges.keys().copied().collect();
                        keys[rng.gen_range(0..keys.len())]
                    } else {
                        (
                            V(rng.gen_range(0..N_VERTICES)),
                            V(rng.gen_range(0..N_VERTICES)),
                            L(rng.gen_range(0..N_LABELS)),
                        )
                    };
                    // Timestamps of live edges must never regress below a
                    // past purge watermark lie; monotone ts guarantees it.
                    let fresh_g = g.insert(u, v, l, T(ts));
                    let fresh_m = m.insert(u, v, l, T(ts));
                    assert_eq!(fresh_g, fresh_m, "insert freshness seed {seed} step {step}");
                }
                // Explicit delete (half the time of a live edge).
                6..=7 => {
                    let (u, v, l) = if !m.edges.is_empty() && rng.gen_bool(0.7) {
                        let keys: Vec<_> = m.edges.keys().copied().collect();
                        keys[rng.gen_range(0..keys.len())]
                    } else {
                        (
                            V(rng.gen_range(0..N_VERTICES)),
                            V(rng.gen_range(0..N_VERTICES)),
                            L(rng.gen_range(0..N_LABELS)),
                        )
                    };
                    assert_eq!(
                        g.remove(u, v, l),
                        m.remove(u, v, l),
                        "remove seed {seed} step {step}"
                    );
                }
                // Purge at a random recent watermark.
                _ => {
                    let wm = ts - rng.gen_range(0..30i64);
                    let removed_g = g.purge_expired(T(wm));
                    let removed_m = m.purge(T(wm));
                    assert_eq!(removed_g, removed_m, "purge count seed {seed} step {step}");
                    max_purged = max_purged.max(wm);
                }
            }
            assert_eq!(g.n_edges(), m.edges.len(), "seed {seed} step {step}");
            assert_eq!(g.n_vertices(), m.n_vertices(), "seed {seed} step {step}");
            if step % 29 == 0 {
                let wm = T(ts - rng.gen_range(0..40i64));
                check_full(
                    &g,
                    &m,
                    wm,
                    N_VERTICES,
                    N_LABELS,
                    &format!("seed {seed} step {step}"),
                );
            }
        }
        // Final: everything visible, then everything purged.
        check_full(
            &g,
            &m,
            T(i64::MIN),
            N_VERTICES,
            N_LABELS,
            &format!("seed {seed} final"),
        );
        let removed_g = g.purge_expired(T(i64::MAX - 1));
        let removed_m = m.purge(T(i64::MAX - 1));
        assert_eq!(removed_g, removed_m, "seed {seed} final purge");
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.n_vertices(), 0);
    }
}
