//! End-to-end serving-layer lifecycle over real sockets: handshake,
//! label mapping, acked ingest, runtime query add/remove, subscription
//! pushes, drain fences, duplicate-name errors, graceful shutdown, and
//! kill/recover continuity over a WAL directory.

use srpq_client::{Client, SubEvent};
use srpq_common::{StreamTuple, Timestamp, VertexId};
use srpq_core::EngineConfig;
use srpq_graph::WindowPolicy;
use srpq_server::protocol::SubPolicy;
use srpq_server::{ServerConfig, ServerHandle};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srpq-server-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_in_memory() -> ServerHandle {
    let config = ServerConfig::in_memory(EngineConfig::with_window(WindowPolicy::new(1000, 100)));
    srpq_server::start(config).expect("server starts")
}

fn chain(labels: &[srpq_common::Label], n: usize) -> Vec<StreamTuple> {
    (0..n)
        .map(|i| {
            StreamTuple::insert(
                Timestamp(i as i64),
                VertexId(i as u32),
                VertexId(i as u32 + 1),
                labels[i % labels.len()],
            )
        })
        .collect()
}

#[test]
fn ingest_query_subscribe_roundtrip() {
    let server = start_in_memory();
    let addr = server.addr();

    let mut control = Client::connect(addr).unwrap();
    assert!(!control.server_info().durable);
    assert_eq!(control.server_info().seq, 0);
    let id = control.add_query("ab", "a b", false, false).unwrap();
    assert_eq!(id, 0);

    // Subscriber attached before any data: sees everything.
    let sub = Client::connect(addr)
        .unwrap()
        .subscribe(&[], SubPolicy::Block, 0)
        .unwrap();
    assert_eq!(sub.matched(), 1);
    let collector = std::thread::spawn(move || sub.collect_to_end().unwrap());

    let mut ingest = Client::connect(addr).unwrap();
    let ids = ingest
        .map_labels(&["a".to_string(), "b".to_string()])
        .unwrap();
    let tuples = chain(&ids, 10);
    let ack = ingest.ingest(&tuples[..4]).unwrap();
    assert_eq!(ack.seq, 4);
    assert!(!ack.durable);
    let ack = ingest.ingest(&tuples[4..]).unwrap();
    assert_eq!(ack.seq, 10);

    // A fresh client sees the advanced sequence in its handshake.
    let late = Client::connect(addr).unwrap();
    assert_eq!(late.server_info().seq, 10);

    // Queries are listable; duplicates refused; unknown removals error.
    let list = control.list_queries().unwrap();
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].name, "ab");
    assert_eq!(list[0].regex.replace(' ', ""), "ab".replace(' ', ""));
    assert!(control.add_query("ab", "b a", false, false).is_err());
    assert!(control.remove_query("nope").is_err());

    // Stats reflect the session topology.
    control.drain().unwrap();
    let stats = control.stats().unwrap();
    assert_eq!(stats.seq, 10);
    assert_eq!(stats.live_queries, 1);
    assert_eq!(stats.subscribers, 1);
    assert!(stats.results_pushed > 0);
    assert_eq!(stats.results_dropped, 0);

    // Graceful shutdown ends the subscription stream.
    control.shutdown().unwrap();
    server.join();
    let (entries, dropped) = collector.join().unwrap();
    assert_eq!(dropped, 0);
    // The a/b chain 0→1→2 … yields one "a b" result per odd prefix.
    assert!(!entries.is_empty());
    assert!(entries.iter().all(|e| e.query == 0 && !e.invalidated));
    assert!(entries.iter().any(|e| e.src == 0 && e.dst == 2));
}

#[test]
fn backfilled_add_reaches_prior_named_subscriber() {
    let server = start_in_memory();
    let addr = server.addr();
    let mut control = Client::connect(addr).unwrap();
    // The shared window only materializes labels some live query
    // speaks, so the first query must cover `a` and `b` for the later
    // backfill to see both (see `register_backfilled`'s docs).
    control.add_query("first", "a | b", false, false).unwrap();

    // Subscribe *by name* to a query that does not exist yet.
    let sub = Client::connect(addr)
        .unwrap()
        .subscribe(&["late".to_string()], SubPolicy::Block, 0)
        .unwrap();
    assert_eq!(sub.matched(), 0);
    let collector = std::thread::spawn(move || sub.collect_to_end().unwrap());

    let mut ingest = Client::connect(addr).unwrap();
    let ids = ingest
        .map_labels(&["a".to_string(), "b".to_string()])
        .unwrap();
    ingest.ingest(&chain(&ids, 6)).unwrap();

    // The backfilled registration replays the live window; the named
    // subscriber must receive those backfill results.
    let id = control.add_query("late", "a b", false, true).unwrap();
    assert_eq!(id, 1);
    control.drain().unwrap();
    control.shutdown().unwrap();
    server.join();
    let (entries, _) = collector.join().unwrap();
    assert!(!entries.is_empty());
    assert!(entries.iter().all(|e| e.query == 1));
}

#[test]
fn failed_backfilled_add_does_not_pollute_name_filters() {
    // Regression: a refused backfilled AddQuery (duplicate name) used
    // to leave its *predicted* slot id in the name-matching
    // subscribers' filters, so the next unrelated query taking that
    // slot leaked its results to them.
    let server = start_in_memory();
    let addr = server.addr();
    let mut control = Client::connect(addr).unwrap();
    control.add_query("dup", "a", false, false).unwrap();

    let sub = Client::connect(addr)
        .unwrap()
        .subscribe(&["dup".to_string()], SubPolicy::Block, 0)
        .unwrap();
    let collector = std::thread::spawn(move || sub.collect_to_end().unwrap().0);

    // Refused: "dup" is live. The predicted slot id (1) must not stick.
    assert!(control.add_query("dup", "a a", false, true).is_err());
    // "other" takes slot 1; its results must not reach the subscriber.
    assert_eq!(control.add_query("other", "b", false, false).unwrap(), 1);

    let mut ingest = Client::connect(addr).unwrap();
    let ids = ingest
        .map_labels(&["a".to_string(), "b".to_string()])
        .unwrap();
    ingest.ingest(&chain(&ids, 8)).unwrap();
    control.drain().unwrap();
    control.shutdown().unwrap();
    server.join();
    let entries = collector.join().unwrap();
    assert!(!entries.is_empty(), "the dup query itself still streams");
    assert!(
        entries.iter().all(|e| e.query == 0),
        "results of another query leaked into the name filter: {entries:?}"
    );
}

#[test]
fn ingest_validation_errors_do_not_advance_seq() {
    let server = start_in_memory();
    let addr = server.addr();
    let mut ingest = Client::connect(addr).unwrap();
    let ids = ingest.map_labels(&["a".to_string()]).unwrap();

    // Unmapped label id.
    let bad_label = StreamTuple::insert(
        Timestamp(1),
        VertexId(0),
        VertexId(1),
        srpq_common::Label(77),
    );
    let err = ingest.ingest(&[bad_label]).unwrap_err();
    assert!(err.to_string().contains("unmapped label"), "{err}");

    // Negative timestamp.
    let bad_ts = StreamTuple::insert(Timestamp(-4), VertexId(0), VertexId(1), ids[0]);
    let err = ingest.ingest(&[bad_ts]).unwrap_err();
    assert!(err.to_string().contains("negative timestamp"), "{err}");

    // The session survives errors, and nothing was accepted.
    let ack = ingest.ingest(&[]).unwrap();
    assert_eq!(ack.seq, 0);
    let good = StreamTuple::insert(Timestamp(1), VertexId(0), VertexId(1), ids[0]);
    assert_eq!(ingest.ingest(&[good]).unwrap().seq, 1);
    server.shutdown();
}

#[test]
fn remove_query_stops_its_stream() {
    let server = start_in_memory();
    let addr = server.addr();
    let mut control = Client::connect(addr).unwrap();
    control.add_query("q", "a+", false, false).unwrap();

    let mut sub = Client::connect(addr)
        .unwrap()
        .subscribe(&[], SubPolicy::Block, 0)
        .unwrap();

    let mut ingest = Client::connect(addr).unwrap();
    let ids = ingest.map_labels(&["a".to_string()]).unwrap();
    ingest.ingest(&chain(&ids, 3)).unwrap();
    control.drain().unwrap();
    let Some(SubEvent::Results(first)) = sub.next_event().unwrap() else {
        panic!("expected results before removal");
    };
    assert!(!first.is_empty());

    let removed = control.remove_query("q").unwrap();
    assert_eq!(removed, 0);
    ingest.ingest(&chain(&ids, 3)).unwrap();
    control.drain().unwrap();
    control.shutdown().unwrap();
    server.join();
    // Everything after the removal fence must be silence.
    let (rest, _) = sub.collect_to_end().unwrap();
    assert!(
        rest.is_empty(),
        "results pushed after deregistration: {rest:?}"
    );
}

#[test]
fn durable_server_recovers_queries_labels_and_sequence() {
    let dir = tmpdir("recover");
    let window = EngineConfig::with_window(WindowPolicy::new(100_000, 1000));
    let mut config = ServerConfig::in_memory(window);
    config.wal_dir = Some(dir.clone());

    // First life: labels, a query, some tuples — then a hard stop
    // (drop without shutdown handshake is fine; acked batches are
    // WAL-durable under the default Batch sync policy).
    let server = srpq_server::start(config.clone()).unwrap();
    let addr = server.addr();
    let mut control = Client::connect(addr).unwrap();
    assert!(control.server_info().durable);
    control.add_query("chain", "a b", false, false).unwrap();
    let mut ingest = Client::connect(addr).unwrap();
    let ids = ingest
        .map_labels(&["a".to_string(), "b".to_string()])
        .unwrap();
    let tuples = chain(&ids, 8);
    let ack = ingest.ingest(&tuples[..5]).unwrap();
    assert!(ack.durable);
    assert_eq!(ack.seq, 5);
    // Make registration + tuples durable, then kill without ceremony.
    control.checkpoint().unwrap();
    drop(control);
    drop(ingest);
    server.shutdown();

    // Second life over the same directory: recovery restores the
    // query, the label table, and the accepted sequence.
    let server = srpq_server::start(config).unwrap();
    assert!(server.recovery.is_some());
    let addr = server.addr();
    let mut control = Client::connect(addr).unwrap();
    assert_eq!(control.server_info().seq, 5);
    let list = control.list_queries().unwrap();
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].name, "chain");

    // The label table survived: mapping the same names yields the same
    // ids, so a resuming client can continue its remapped stream.
    let mut ingest = Client::connect(addr).unwrap();
    let ids2 = ingest
        .map_labels(&["a".to_string(), "b".to_string()])
        .unwrap();
    assert_eq!(ids, ids2);

    let sub = Client::connect(addr)
        .unwrap()
        .subscribe(&[], SubPolicy::Block, 0)
        .unwrap();
    let collector = std::thread::spawn(move || sub.collect_to_end().unwrap());
    let resume = control.server_info().seq as usize;
    ingest.ingest(&tuples[resume..]).unwrap();
    control.drain().unwrap();
    control.shutdown().unwrap();
    server.join();
    // The post-recovery suffix still produces chain results (the Δ
    // index was rebuilt from the checkpointed window).
    let (entries, _) = collector.join().unwrap();
    assert!(entries.iter().any(|e| e.src == 4 && e.dst == 6));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drop_policy_subscriber_reports_losses() {
    let server = start_in_memory();
    let addr = server.addr();
    let mut control = Client::connect(addr).unwrap();
    // A dense alternation query over a chain produces plenty of
    // results per batch.
    control.add_query("q", "(a | b)+", false, false).unwrap();

    // Capacity 1 frame and a subscriber that reads nothing while a
    // dense result stream floods in: once the kernel socket buffers
    // fill, the pump stalls, the queue stays full, and frames drop.
    let sub = Client::connect(addr)
        .unwrap()
        .subscribe(&[], SubPolicy::DropNewest, 1)
        .unwrap();

    let mut ingest = Client::connect(addr).unwrap();
    let ids = ingest
        .map_labels(&["a".to_string(), "b".to_string()])
        .unwrap();
    let tuples = chain(&ids, 1500);
    for batch in tuples.chunks(100) {
        ingest.ingest(batch).unwrap();
    }
    control.drain().unwrap();
    let stats = control.stats().unwrap();
    control.shutdown().unwrap();
    server.join();
    let (received, dropped) = sub.collect_to_end().unwrap();
    assert!(
        stats.results_dropped > 0,
        "expected drops under a stalled capacity-1 subscriber \
         (pushed {}, received {})",
        stats.results_pushed,
        received.len()
    );
    // Nothing is lost silently: every entry staged for this subscriber
    // was either delivered (counted in results_pushed) or tallied as
    // dropped — never both, never neither. The tally rides the queue
    // when a slot frees up; whatever never fit is swept by the session
    // thread into a final `Dropped` ahead of `ShuttingDown`, so the
    // client's ledger matches the server's exactly even when the queue
    // was wedged full to the very end.
    assert_eq!(received.len() as u64, stats.results_pushed);
    assert_eq!(dropped, stats.results_dropped);
}

#[test]
fn parallel_workers_server_matches_sequential_server() {
    // The same session driven against a sequential host and a
    // `workers: 3` parallel host must push identical result streams —
    // the serving-layer face of the ParallelMultiEngine equivalence
    // guarantee. Stats must also report the worker count and per-query
    // routing counters.
    fn run(workers: usize) -> Vec<(u32, u32, u32, i64, bool)> {
        let mut config =
            ServerConfig::in_memory(EngineConfig::with_window(WindowPolicy::new(1000, 100)));
        config.workers = workers;
        let server = srpq_server::start(config).expect("server starts");
        let addr = server.addr();

        let mut control = Client::connect(addr).unwrap();
        control.add_query("ab", "a b", false, false).unwrap();
        control.add_query("bplus", "b+", false, false).unwrap();

        let sub = Client::connect(addr)
            .unwrap()
            .subscribe(&[], SubPolicy::Block, 0)
            .unwrap();
        let collector = std::thread::spawn(move || sub.collect_to_end().unwrap());

        let mut ingest = Client::connect(addr).unwrap();
        let ids = ingest
            .map_labels(&["a".to_string(), "b".to_string()])
            .unwrap();
        let tuples = chain(&ids, 64);
        for chunk in tuples.chunks(16) {
            ingest.ingest(chunk).unwrap();
        }
        // Mid-stream registration changes, backfill included.
        control.add_query("late", "a b a", false, true).unwrap();
        control.remove_query("bplus").unwrap();
        ingest.ingest(&chain(&ids, 80)[64..]).unwrap();
        control.drain().unwrap();

        let stats = control.stats().unwrap();
        assert_eq!(stats.workers as usize, workers.max(1));
        let list = control.list_queries().unwrap();
        assert!(list.iter().all(|q| q.tuples_routed > 0 || q.name == "late"));

        control.shutdown().unwrap();
        server.join();
        let (entries, dropped) = collector.join().unwrap();
        assert_eq!(dropped, 0);
        entries
            .into_iter()
            .map(|e| (e.query, e.src, e.dst, e.ts, e.invalidated))
            .collect()
    }

    let sequential = run(0);
    assert!(!sequential.is_empty());
    for workers in [1, 3] {
        assert_eq!(run(workers), sequential, "{workers} workers diverged");
    }
}

/// Reads the `NAME_count` line of a Prometheus histogram out of an
/// exposition document.
fn prom_hist_count(text: &str, name: &str) -> u64 {
    let needle = format!("{name}_count");
    text.lines()
        .find(|l| l.starts_with(&needle))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("series {needle} missing from:\n{text}"))
}

#[test]
fn metrics_events_and_exact_e2e_histogram() {
    // Default in-memory config: e2e_sample == 1, so every delivered
    // result is stamped at ingest decode and observed at the flush that
    // makes it client-visible — the e2e histogram count must equal the
    // delivered-results count exactly.
    let mut config =
        ServerConfig::in_memory(EngineConfig::with_window(WindowPolicy::new(1000, 100)));
    config.metrics_addr = Some("127.0.0.1:0".to_string());
    let server = srpq_server::start(config).expect("server starts");
    let addr = server.addr();
    let http_addr = server.metrics_addr().expect("metrics listener up");
    let obs = server.obs().clone();

    let mut control = Client::connect(addr).unwrap();
    control.add_query("ab", "a b", false, false).unwrap();
    let sub = Client::connect(addr)
        .unwrap()
        .subscribe(&[], SubPolicy::Block, 0)
        .unwrap();
    let collector = std::thread::spawn(move || sub.collect_to_end().unwrap());

    let mut ingest = Client::connect(addr).unwrap();
    let ids = ingest
        .map_labels(&["a".to_string(), "b".to_string()])
        .unwrap();
    // 256 tuples at ts 0..256 cross the slide boundary (β = 100), so
    // the journal sees window slides, not just topology events.
    for chunk in chain(&ids, 256).chunks(32) {
        ingest.ingest(chunk).unwrap();
    }
    control.drain().unwrap();

    // `ctl metrics` surface: the full pipeline shows up as series.
    let text = control.metrics().unwrap();
    assert!(prom_hist_count(&text, "srpq_stage_ingest_decode_ns") >= 4);
    assert!(prom_hist_count(&text, "srpq_stage_route_ns") > 0);
    assert!(prom_hist_count(&text, "srpq_stage_extend_ns") > 0);
    assert!(prom_hist_count(&text, "srpq_stage_subscriber_write_ns") > 0);
    assert!(
        text.contains("srpq_query_delta_nodes{query=\"ab\"}"),
        "{text}"
    );
    assert!(text.contains("srpq_ingest_tuples_total 256"), "{text}");
    assert!(text.contains("srpq_subscribers 1"), "{text}");

    // HTTP surface: a raw HTTP/1.0 GET serves the same document shape.
    let body = {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(http_addr).unwrap();
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 200"), "{resp}");
        resp
    };
    assert!(body.contains("srpq_live_queries 1"), "{body}");

    // Exact e2e accounting: every result delivered so far was stamped
    // (sample=1, no backfill) and observed before the drain fence acked.
    let stats = control.stats().unwrap();
    assert!(stats.results_pushed > 0);
    assert_eq!(
        prom_hist_count(&text, "srpq_e2e_latency_ns"),
        stats.results_pushed
    );

    // The journal replays the session's structured history.
    let (events, dropped_events) = control.events(0).unwrap();
    assert_eq!(dropped_events, 0);
    let kind = |k: srpq_obs::EventKind| events.iter().filter(|e| e.kind == k.as_u8()).count();
    assert!(kind(srpq_obs::EventKind::QueryAdd) == 1, "{events:?}");
    assert!(
        kind(srpq_obs::EventKind::SubscriberConnect) == 1,
        "{events:?}"
    );
    assert!(kind(srpq_obs::EventKind::SlideBoundary) > 0, "{events:?}");
    // `--since` cursors resume after the last seen sequence.
    let last = events.last().unwrap().seq;
    assert!(control.events(last).unwrap().0.is_empty());

    control.shutdown().unwrap();
    server.join();
    let (entries, dropped) = collector.join().unwrap();
    assert_eq!(dropped, 0);
    let final_count = obs
        .registry()
        .histogram("srpq_e2e_latency_ns", &[])
        .merged()
        .count();
    assert_eq!(
        final_count,
        entries.len() as u64,
        "e2e histogram count must equal delivered results"
    );
}

#[test]
fn trace_spans_form_complete_causal_tree() {
    // `trace_sample = 1`: every ingest frame carries a TraceId stamped
    // at decode. The retained spans must form a closed causal tree —
    // decode → route → per-query extend → emit → subscriber write, all
    // nested inside one "ingest" root — reconcilable against the e2e
    // histogram, and exportable as Chrome trace-event JSON.
    let mut config =
        ServerConfig::in_memory(EngineConfig::with_window(WindowPolicy::new(1000, 100)));
    config.trace_sample = 1;
    let server = srpq_server::start(config).expect("server starts");
    let addr = server.addr();
    let obs = server.obs().clone();

    let mut control = Client::connect(addr).unwrap();
    control.add_query("ab", "a b", false, false).unwrap();
    control.add_query("ba", "b a", false, false).unwrap();
    let sub = Client::connect(addr)
        .unwrap()
        .subscribe(&[], SubPolicy::Block, 0)
        .unwrap();
    let collector = std::thread::spawn(move || sub.collect_to_end().unwrap());

    let mut ingest = Client::connect(addr).unwrap();
    let ids = ingest
        .map_labels(&["a".to_string(), "b".to_string()])
        .unwrap();
    for chunk in chain(&ids, 128).chunks(16) {
        ingest.ingest(chunk).unwrap();
    }
    control.drain().unwrap();

    let spans = control.trace().unwrap();
    let mut roots = std::collections::HashMap::new();
    for s in spans.iter().filter(|s| s.parent == 0) {
        assert_eq!(s.name, "ingest", "non-ingest root: {s:?}");
        assert!(
            roots.insert(s.trace_id, s).is_none(),
            "two roots in trace {}",
            s.trace_id
        );
    }
    assert_eq!(roots.len(), 8, "8 ingest frames, each sampled: {spans:?}");

    let mut delivered = 0u64;
    for root in roots.values() {
        let children: Vec<_> = spans
            .iter()
            .filter(|s| s.trace_id == root.trace_id && s.parent == root.span_id)
            .collect();
        let names: Vec<&str> = children.iter().map(|s| s.name.as_str()).collect();
        for need in ["decode", "route", "emit"] {
            assert!(names.contains(&need), "missing {need} in {names:?}");
        }
        // Every batch alternates both labels, so both queries extend.
        assert!(names.contains(&"extend:ab"), "{names:?}");
        assert!(names.contains(&"extend:ba"), "{names:?}");
        assert!(
            !names.contains(&"wal"),
            "in-memory server must not report WAL spans"
        );
        // Causal nesting: every child closes within the root extent.
        let (lo, hi) = (root.start_us, root.start_us + root.dur_us);
        for c in &children {
            assert!(
                c.start_us >= lo && c.start_us + c.dur_us <= hi,
                "child escapes root extent: {c:?} vs {root:?}"
            );
        }
        if names.contains(&"write") {
            delivered += 1;
        }
    }
    assert!(delivered > 0, "no trace reached a subscriber socket");

    // Reconciliation: a delivered root was widened against the very
    // stamp the e2e histogram observed, and each delivery carried at
    // least one result — delivered traces can never outnumber samples.
    let e2e = obs
        .registry()
        .histogram("srpq_e2e_latency_ns", &[])
        .merged();
    assert!(e2e.count() >= delivered, "{} < {delivered}", e2e.count());

    // The `/trace` document is well-formed Chrome trace-event JSON.
    let json = obs.trace().to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.ends_with("]}"), "{json}");
    assert!(json.contains("\"name\":\"ingest\""), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    // `explain` reports the DFA shape, Δ-forest profile, routing
    // fan-in, and evaluation time share for a live query.
    let x = control.explain("ab").unwrap();
    assert_eq!(x.name, "ab");
    assert!(x.dfa_states >= 2, "{x:?}");
    assert!(!x.dfa_accepting.is_empty(), "{x:?}");
    assert_eq!(x.labels.len(), 2, "{x:?}");
    assert!(
        x.labels.iter().all(|l| l.sharing_queries == 2),
        "both queries speak both labels: {:?}",
        x.labels
    );
    assert!(x.delta_trees > 0 && x.delta_nodes > 0, "{x:?}");
    assert!(x.tuples_routed > 0, "{x:?}");
    assert!(x.eval_ns > 0 && x.total_eval_ns >= x.eval_ns, "{x:?}");
    assert!(x.depth_hist.iter().sum::<u64>() > 0, "{x:?}");
    assert!(control.explain("nope").is_err());

    control.shutdown().unwrap();
    server.join();
    collector.join().unwrap();
}
