//! The durable label table.
//!
//! Checkpoints store query *text* and the WAL stores label *ids*, so a
//! recovered server must re-intern names to exactly the ids the crashed
//! instance used. This module persists the server's [`LabelInterner`]
//! alongside the WAL directory: a name list in id order, guarded by the
//! shared CRC32, rewritten atomically (tmp + rename) whenever a label
//! is first interned — which the serving loop does *before* any tuple
//! or query referencing the new label becomes durable.
//!
//! ```text
//! file := magic "SRPQLBL1" | u32le count | name "\n" ... | u32le crc
//! crc  := crc32(everything before the trailer)
//! ```

use srpq_common::{crc32, LabelInterner};
use std::fs;
use std::path::{Path, PathBuf};

const MAGIC: &[u8] = b"SRPQLBL1";
const FILE_NAME: &str = "labels.srpq";

/// Where the label table lives inside a durability directory.
pub fn label_path(dir: &Path) -> PathBuf {
    dir.join(FILE_NAME)
}

/// Writes the interner to `dir` atomically.
pub fn save(labels: &LabelInterner, dir: &Path) -> Result<(), String> {
    let mut buf = Vec::from(MAGIC);
    buf.extend_from_slice(&(labels.len() as u32).to_le_bytes());
    for i in 0..labels.len() as u32 {
        let name = labels
            .resolve(srpq_common::Label(i))
            .ok_or_else(|| format!("label table has a hole at id {i}"))?;
        buf.extend_from_slice(name.as_bytes());
        buf.push(b'\n');
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    let path = label_path(dir);
    let tmp = path.with_extension("srpq.tmp");
    {
        use std::io::Write as _;
        let mut f = fs::File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
        f.write_all(&buf)
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        // The table must be on disk *before* the rename publishes it:
        // tuples and checkpointed query text logged after this call
        // reference the new ids, and an acked batch must never outlive
        // the label table it depends on.
        f.sync_all()
            .map_err(|e| format!("sync {}: {e}", tmp.display()))?;
    }
    fs::rename(&tmp, &path).map_err(|e| format!("publish {}: {e}", path.display()))?;
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Loads the label table from `dir`; an absent file is an empty
/// interner (fresh directory).
pub fn load(dir: &Path) -> Result<LabelInterner, String> {
    let path = label_path(dir);
    let data = match fs::read(&path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LabelInterner::new()),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    if data.len() < MAGIC.len() + 4 + 4 || !data.starts_with(MAGIC) {
        return Err(format!("{}: not a label table", path.display()));
    }
    let (body, trailer) = data.split_at(data.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().unwrap());
    if crc32(body) != stored {
        return Err(format!("{}: checksum mismatch", path.display()));
    }
    let mut buf = &body[MAGIC.len()..];
    let count = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    buf = &buf[4..];
    let mut labels = LabelInterner::new();
    for i in 0..count {
        let end = buf
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| format!("{}: truncated at entry {i}", path.display()))?;
        let name = std::str::from_utf8(&buf[..end])
            .map_err(|_| format!("{}: label {i} is not UTF-8", path.display()))?;
        labels.intern(name);
        buf = &buf[end + 1..];
    }
    if !buf.is_empty() {
        return Err(format!(
            "{}: trailing bytes after label table",
            path.display()
        ));
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srpq-labels-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_and_missing_file() {
        let dir = testdir("rt");
        assert_eq!(load(&dir).unwrap().len(), 0);
        let mut labels = LabelInterner::new();
        labels.intern("knows");
        labels.intern("likes");
        labels.intern("αβγ");
        save(&labels, &dir).unwrap();
        let back = load(&dir).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get("likes"), labels.get("likes"));
        assert_eq!(back.get("αβγ"), labels.get("αβγ"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_rot_is_detected() {
        let dir = testdir("rot");
        let mut labels = LabelInterner::new();
        labels.intern("a");
        save(&labels, &dir).unwrap();
        let path = label_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(load(&dir).unwrap_err().contains("checksum"));
        fs::remove_dir_all(&dir).ok();
    }
}
