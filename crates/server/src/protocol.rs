//! The message vocabulary of the serving protocol.
//!
//! Every message travels as one [`srpq_common::frame`] frame: the frame
//! kind byte is the message discriminant, the payload is the message
//! body in the same little-endian conventions as the WAL and checkpoint
//! formats ([`srpq_persist::codec`]), and tuple batches reuse the
//! 21-byte stream codec ([`srpq_common::wire`]) verbatim — an ingest
//! payload is bit-identical to a WAL record payload carrying the same
//! batch. Frame-level CRC32 covers kind, length, and payload, so a
//! corrupt message is refused by the frame layer before this module
//! ever parses it (`frame_corruption` tests below pin that).
//!
//! Client-initiated kinds live below 0x80, server responses and pushes
//! at 0x80 and above. See the crate docs for the session-level
//! choreography (which requests are valid when, and what they elicit).

use srpq_common::frame;
use srpq_common::wire;
use srpq_common::StreamTuple;
use srpq_persist::codec::{ByteReader, ByteWriter};
use std::io::{self, Read, Write};

/// Protocol revision spoken by this build. [`Msg::Hello`] carries the
/// client's revision; the server refuses mismatches outright (no
/// negotiation — both binaries come from this repository).
pub const PROTO_VERSION: u16 = 6;

/// What a subscriber wants done when its queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubPolicy {
    /// Block the engine until the subscriber drains — lossless, at the
    /// price of backpressuring every ingest session behind this
    /// subscriber. Default (correctness first).
    #[default]
    Block,
    /// Drop the newest results and count them; the subscriber receives
    /// a [`Msg::Dropped`] tally when the queue next has room. Protects
    /// ingest throughput from slow subscribers.
    DropNewest,
}

impl SubPolicy {
    /// Parses the CLI spelling (`block` | `drop`).
    pub fn parse(s: &str) -> Option<SubPolicy> {
        match s {
            "block" => Some(SubPolicy::Block),
            "drop" => Some(SubPolicy::DropNewest),
            _ => None,
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            SubPolicy::Block => 0,
            SubPolicy::DropNewest => 1,
        }
    }

    fn from_u8(v: u8) -> Result<SubPolicy, String> {
        match v {
            0 => Ok(SubPolicy::Block),
            1 => Ok(SubPolicy::DropNewest),
            other => Err(format!("unknown subscription policy {other}")),
        }
    }
}

/// One pushed result: query `query` (dis)covered `(src, dst)` at stream
/// time `ts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultEntry {
    /// Slot id of the emitting query.
    pub query: u32,
    /// `false` = newly discovered pair, `true` = invalidation (the pair
    /// lost its last witness path to an explicit deletion).
    pub invalidated: bool,
    /// Source vertex.
    pub src: u32,
    /// Destination vertex.
    pub dst: u32,
    /// Stream time of the (in)validation.
    pub ts: i64,
}

/// One row of a [`Msg::QueryList`] response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryInfo {
    /// Slot id.
    pub id: u32,
    /// Registration name.
    pub name: String,
    /// The query expression.
    pub regex: String,
    /// `true` = simple-path semantics, `false` = arbitrary.
    pub simple: bool,
    /// Tuples label-routed to this query since registration.
    pub tuples_routed: u64,
    /// Results this query has emitted (post-dedup).
    pub results_emitted: u64,
    /// Nanoseconds spent inside this query's evaluation calls — the
    /// hot-query indicator (`srpq query list`). Comparable within one
    /// server lifetime only.
    pub eval_ns: u64,
    /// The shared-evaluation group this query subscribes to. Queries
    /// with the same group id share one Δ forest; their routed/eval
    /// counters are the group's, not per-subscriber slices.
    pub group: u32,
}

/// One structured event from the server's bounded journal
/// ([`Msg::EventList`]). `kind` is the journal's stable `u8`
/// discriminant (`srpq_obs::EventKind`), carried raw so older clients
/// can still display events newer servers journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventWire {
    /// Monotonic journal sequence number.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at record time.
    pub unix_ms: u64,
    /// Event-kind discriminant.
    pub kind: u8,
    /// Free-form detail.
    pub detail: String,
}

/// One causal-trace span ([`Msg::TraceList`]): a named interval on one
/// pipeline stage, attributed to a sampled ingest batch. The field
/// layout mirrors `srpq_obs::Span`; timestamps are microseconds since
/// the server's trace epoch (its start), so spans from one response are
/// mutually comparable but not wall-clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanWire {
    /// The sampled batch this span belongs to.
    pub trace_id: u64,
    /// Unique id of this span within the trace buffer.
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Stage name (`ingest`, `decode`, `wal`, `route`, `extend:<q>`,
    /// `expiry`, `emit`, `write`).
    pub name: String,
    /// Start, microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Thread the stage ran on.
    pub thread: String,
    /// Free-form detail (tuple counts, subscriber, …).
    pub detail: String,
}

/// How one label of a query's alphabet is routed
/// ([`Msg::ExplainReport`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelRoute {
    /// The label name.
    pub name: String,
    /// DFA transitions consuming this label.
    pub transitions: u32,
    /// Live evaluation groups (this query's included) whose alphabet
    /// contains the label — the routing fan-in: a matching tuple is
    /// handed to this many shared Δ forests.
    pub sharing_queries: u32,
}

/// The introspection report behind `ctl explain <query>`
/// ([`Msg::ExplainReport`]): minimized-DFA shape, Δ-forest profile, and
/// time share since registration. Computing it walks the query's whole
/// Δ forest — it never runs on the tuple path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExplainWire {
    /// Slot id of the query.
    pub id: u32,
    /// Registration name.
    pub name: String,
    /// The query expression.
    pub regex: String,
    /// `true` = simple-path semantics.
    pub simple: bool,
    /// States in the minimized DFA.
    pub dfa_states: u32,
    /// Start state.
    pub dfa_start: u32,
    /// Accepting states, ascending.
    pub dfa_accepting: Vec<u32>,
    /// Per-label DFA transition counts and routing fan-in, in alphabet
    /// order.
    pub labels: Vec<LabelRoute>,
    /// Spanning trees in Δ.
    pub delta_trees: u64,
    /// Live Δ nodes over all trees.
    pub delta_nodes: u64,
    /// Arena slots (live + free-listed); the gap to `delta_nodes` is
    /// fragmentation awaiting per-slide compaction.
    pub delta_slots: u64,
    /// Resident bytes of the node arenas.
    pub delta_arena_bytes: u64,
    /// Arena compactions performed for this query.
    pub compactions: u64,
    /// Live node count per DFA state, sorted by state id; empty states
    /// omitted.
    pub nodes_per_state: Vec<(u32, u64)>,
    /// Node count by depth (root = 0); the last bucket accumulates
    /// everything at or beyond it.
    pub depth_hist: Vec<u64>,
    /// Tuples label-routed to this query since registration.
    pub tuples_routed: u64,
    /// Nanoseconds inside this query's evaluation calls.
    pub eval_ns: u64,
    /// The expiry (window-management) slice of `eval_ns`.
    pub expiry_ns: u64,
    /// Evaluation nanoseconds summed over all evaluation groups — the
    /// denominator of this query's time share. Groups, not queries:
    /// a shared forest's time counts once however many subscribers
    /// ride it.
    pub total_eval_ns: u64,
    /// Results emitted (post-dedup).
    pub results_emitted: u64,
    /// The shared-evaluation group this query subscribes to.
    pub group: u32,
    /// Hash of the canonical (minimized, BFS-renumbered) DFA form —
    /// the key equal-language registrations collapse under.
    pub signature_hash: u64,
    /// Names of the *other* queries subscribed to the same group —
    /// empty means this query's Δ forest is private; non-empty means
    /// the Δ counts above are shared with these co-subscribers.
    pub co_subscribers: Vec<String>,
}

/// A snapshot of server-wide counters ([`Msg::ServerStats`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Tuples accepted (and, when durable, WAL-logged) so far.
    pub seq: u64,
    /// Live registered queries.
    pub live_queries: u32,
    /// Registration slots ever allocated (vacated ones included).
    pub slots: u32,
    /// Attached subscriber sessions.
    pub subscribers: u32,
    /// Interned labels.
    pub labels: u32,
    /// Result entries pushed to subscribers (drops excluded).
    pub results_pushed: u64,
    /// Result entries dropped across all drop-policy subscribers.
    pub results_dropped: u64,
    /// Evaluation worker threads (1 = sequential engine).
    pub workers: u32,
    /// Total nanoseconds spent in per-query evaluation across all live
    /// queries.
    pub eval_ns: u64,
    /// Live Δ nodes across all live queries (gauge).
    pub delta_nodes_live: u64,
    /// Total Δ arena slots across all live queries (gauge); the gap to
    /// `delta_nodes_live` is arena fragmentation awaiting compaction.
    pub delta_capacity: u64,
    /// Δ arena compactions performed across all live queries.
    pub compactions: u64,
    /// Per-worker `(eval_ns, expiry_ns)`: the wall-clock each
    /// evaluation worker thread spent inside per-query evaluation calls
    /// and the expiry slice thereof. Empty for sequential hosts; the
    /// parallel host's coordinator-inline time rides as one final
    /// synthetic entry, so the entries sum to the per-query `eval_ns`
    /// total (while no query has been deregistered).
    pub worker_ns: Vec<(u64, u64)>,
    /// Live shared-evaluation groups (Δ forests). The gap to
    /// `live_queries` is the consolidation win: queries minus groups
    /// forests never built.
    pub groups_live: u32,
}

/// A protocol message (client requests < 0x80 ≤ server responses).
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    // ---- client → server ------------------------------------------
    /// Opening handshake; the server answers [`Msg::HelloAck`].
    Hello {
        /// The client's [`PROTO_VERSION`].
        proto: u16,
    },
    /// Intern `names`, answering the server-side label ids in order
    /// ([`Msg::LabelIds`]). Ingest clients remap their tuples through
    /// this table before sending.
    MapLabels {
        /// Label names in the client's id order.
        names: Vec<String>,
    },
    /// One batch of tuples (server label ids, non-negative timestamps).
    /// Acked at the WAL-durable sequence number ([`Msg::IngestAck`]).
    Ingest {
        /// The batch, in stream order.
        tuples: Vec<StreamTuple>,
    },
    /// Register a query at runtime ([`Msg::QueryAdded`] /
    /// [`Msg::Error`] on duplicate names or parse failure).
    AddQuery {
        /// Registration name (unique among live queries).
        name: String,
        /// The query expression (parsed server-side).
        regex: String,
        /// Simple-path semantics instead of arbitrary.
        simple: bool,
        /// Backfill from the live window so the query immediately
        /// reports over current content.
        backfill: bool,
    },
    /// Deregister the live query registered under `name`
    /// ([`Msg::QueryRemoved`]).
    RemoveQuery {
        /// The registration name.
        name: String,
    },
    /// List live queries ([`Msg::QueryList`]).
    ListQueries,
    /// Convert this session into a push stream ([`Msg::SubAck`], then
    /// [`Msg::Results`]/[`Msg::Dropped`] until the connection or the
    /// server goes away).
    Subscribe {
        /// Names of the queries to follow; empty = all queries,
        /// including ones registered later.
        queries: Vec<String>,
        /// Queue-full behavior.
        policy: SubPolicy,
        /// Queue bound in result frames (0 = server default).
        capacity: u32,
    },
    /// Block until every previously accepted batch is fully processed
    /// *and* every subscriber queue has been flushed to its socket
    /// ([`Msg::Drained`]) — the determinism fence the equivalence tests
    /// and the CI smoke lean on.
    Drain,
    /// Force a checkpoint now ([`Msg::CheckpointDone`]).
    Checkpoint,
    /// Graceful shutdown: drain the ingest pipeline (arrival order),
    /// checkpoint, close subscriber streams, exit
    /// ([`Msg::ShuttingDown`]).
    Shutdown,
    /// Server-wide counters ([`Msg::ServerStats`]).
    Stats,
    /// The full metrics registry rendered as Prometheus text
    /// ([`Msg::MetricsText`]) — the frame-protocol twin of
    /// `GET /metrics`.
    Metrics,
    /// Journal events with sequence numbers greater than `since`
    /// ([`Msg::EventList`]). `since = 0` returns everything retained.
    Events {
        /// Replay events after this journal sequence number.
        since: u64,
    },
    /// The causal-trace span buffer ([`Msg::TraceList`]): every span
    /// recorded for sampled ingest batches still retained in the
    /// bounded ring. Empty unless the server runs with
    /// `--trace-sample`.
    Trace,
    /// Introspect one live query ([`Msg::ExplainReport`] /
    /// [`Msg::Error`] on unknown names).
    Explain {
        /// The registration name.
        name: String,
    },

    // ---- server → client ------------------------------------------
    /// Handshake answer.
    HelloAck {
        /// The server's [`PROTO_VERSION`].
        proto: u16,
        /// Tuples accepted so far (a resuming ingest client skips its
        /// first `seq` tuples).
        seq: u64,
        /// Whether the server runs with a write-ahead log.
        durable: bool,
    },
    /// Server-side ids for a [`Msg::MapLabels`] request, in order.
    LabelIds {
        /// `ids[i]` is the server id of `names[i]`.
        ids: Vec<u32>,
    },
    /// A batch was accepted: `seq` tuples are now reflected in the
    /// engine — and WAL-logged (fsynced per the server's sync policy)
    /// when `durable`.
    IngestAck {
        /// Total tuples accepted after this batch.
        seq: u64,
        /// Whether the batch hit the write-ahead log before the ack.
        durable: bool,
    },
    /// The runtime registration succeeded.
    QueryAdded {
        /// The new query's slot id.
        id: u32,
    },
    /// The deregistration succeeded.
    QueryRemoved {
        /// The vacated slot id.
        id: u32,
    },
    /// The live queries.
    QueryList {
        /// One row per live query, ascending by id.
        queries: Vec<QueryInfo>,
    },
    /// Subscription accepted.
    SubAck {
        /// Live queries matched right now (an empty-filter subscriber
        /// also receives queries registered later).
        matched: u32,
    },
    /// Pushed results, in emission order.
    Results {
        /// The batched entries.
        entries: Vec<ResultEntry>,
    },
    /// `count` result entries were dropped since the last tally
    /// (drop-newest subscribers only).
    Dropped {
        /// Entries lost to the bounded queue.
        count: u64,
    },
    /// Everything accepted before the [`Msg::Drain`] is processed and
    /// flushed.
    Drained {
        /// Tuples accepted at the fence.
        seq: u64,
    },
    /// Checkpoint written.
    CheckpointDone {
        /// WAL sequence the checkpoint covers.
        seq: u64,
    },
    /// The server is exiting; subscriber streams end after this.
    ShuttingDown,
    /// Server-wide counters.
    ServerStats(StatsSnapshot),
    /// The request failed; the session stays usable.
    Error {
        /// Human-readable reason.
        msg: String,
    },
    /// The metrics registry in Prometheus exposition text.
    MetricsText {
        /// The rendered text (UTF-8).
        text: String,
    },
    /// Journal events, oldest first.
    EventList {
        /// Retained events after the requested sequence number.
        events: Vec<EventWire>,
        /// Events after `since` that the bounded journal has already
        /// overwritten — nonzero means the replay has a gap at its
        /// start.
        dropped: u64,
    },
    /// Retained trace spans, oldest first.
    TraceList {
        /// The spans, roots interleaved with children (group by
        /// `trace_id`, nest by `parent`).
        spans: Vec<SpanWire>,
    },
    /// The introspection report for one live query.
    ExplainReport(ExplainWire),
}

// Frame kinds (one per message).
const K_HELLO: u8 = 0x01;
const K_MAP_LABELS: u8 = 0x02;
const K_INGEST: u8 = 0x03;
const K_ADD_QUERY: u8 = 0x04;
const K_REMOVE_QUERY: u8 = 0x05;
const K_LIST_QUERIES: u8 = 0x06;
const K_SUBSCRIBE: u8 = 0x07;
const K_DRAIN: u8 = 0x08;
const K_CHECKPOINT: u8 = 0x09;
const K_SHUTDOWN: u8 = 0x0A;
const K_STATS: u8 = 0x0B;
const K_METRICS: u8 = 0x0C;
const K_EVENTS: u8 = 0x0D;
const K_TRACE: u8 = 0x0E;
const K_EXPLAIN: u8 = 0x0F;
const K_HELLO_ACK: u8 = 0x81;
const K_LABEL_IDS: u8 = 0x82;
const K_INGEST_ACK: u8 = 0x83;
const K_QUERY_ADDED: u8 = 0x84;
const K_QUERY_REMOVED: u8 = 0x85;
const K_QUERY_LIST: u8 = 0x86;
const K_SUB_ACK: u8 = 0x87;
const K_RESULTS: u8 = 0x88;
const K_DROPPED: u8 = 0x89;
const K_DRAINED: u8 = 0x8A;
const K_CHECKPOINT_DONE: u8 = 0x8B;
const K_SHUTTING_DOWN: u8 = 0x8C;
const K_SERVER_STATS: u8 = 0x8D;
const K_ERROR: u8 = 0x8E;
const K_METRICS_TEXT: u8 = 0x8F;
const K_EVENT_LIST: u8 = 0x90;
const K_TRACE_LIST: u8 = 0x91;
const K_EXPLAIN_REPORT: u8 = 0x92;

fn strings(w: &mut ByteWriter, items: &[String]) {
    w.u32(items.len() as u32);
    for s in items {
        w.str(s);
    }
}

fn read_strings(r: &mut ByteReader) -> Result<Vec<String>, String> {
    let n = r.count(4).map_err(|e| e.to_string())?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.str().map_err(|e| e.to_string())?);
    }
    Ok(out)
}

impl Msg {
    /// Encodes this message as `(frame kind, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = ByteWriter::new();
        let kind = match self {
            Msg::Hello { proto } => {
                w.u32(*proto as u32);
                K_HELLO
            }
            Msg::MapLabels { names } => {
                strings(&mut w, names);
                K_MAP_LABELS
            }
            Msg::Ingest { tuples } => {
                w.bytes(&wire::encode_stream(tuples));
                K_INGEST
            }
            Msg::AddQuery {
                name,
                regex,
                simple,
                backfill,
            } => {
                w.str(name);
                w.str(regex);
                w.u8(*simple as u8);
                w.u8(*backfill as u8);
                K_ADD_QUERY
            }
            Msg::RemoveQuery { name } => {
                w.str(name);
                K_REMOVE_QUERY
            }
            Msg::ListQueries => K_LIST_QUERIES,
            Msg::Subscribe {
                queries,
                policy,
                capacity,
            } => {
                strings(&mut w, queries);
                w.u8(policy.to_u8());
                w.u32(*capacity);
                K_SUBSCRIBE
            }
            Msg::Drain => K_DRAIN,
            Msg::Checkpoint => K_CHECKPOINT,
            Msg::Shutdown => K_SHUTDOWN,
            Msg::Stats => K_STATS,
            Msg::Metrics => K_METRICS,
            Msg::Events { since } => {
                w.u64(*since);
                K_EVENTS
            }
            Msg::Trace => K_TRACE,
            Msg::Explain { name } => {
                w.str(name);
                K_EXPLAIN
            }
            Msg::HelloAck {
                proto,
                seq,
                durable,
            } => {
                w.u32(*proto as u32);
                w.u64(*seq);
                w.u8(*durable as u8);
                K_HELLO_ACK
            }
            Msg::LabelIds { ids } => {
                w.u32(ids.len() as u32);
                for id in ids {
                    w.u32(*id);
                }
                K_LABEL_IDS
            }
            Msg::IngestAck { seq, durable } => {
                w.u64(*seq);
                w.u8(*durable as u8);
                K_INGEST_ACK
            }
            Msg::QueryAdded { id } => {
                w.u32(*id);
                K_QUERY_ADDED
            }
            Msg::QueryRemoved { id } => {
                w.u32(*id);
                K_QUERY_REMOVED
            }
            Msg::QueryList { queries } => {
                w.u32(queries.len() as u32);
                for q in queries {
                    w.u32(q.id);
                    w.str(&q.name);
                    w.str(&q.regex);
                    w.u8(q.simple as u8);
                    w.u64(q.tuples_routed);
                    w.u64(q.results_emitted);
                    w.u64(q.eval_ns);
                    w.u32(q.group);
                }
                K_QUERY_LIST
            }
            Msg::SubAck { matched } => {
                w.u32(*matched);
                K_SUB_ACK
            }
            Msg::Results { entries } => {
                w.u32(entries.len() as u32);
                for e in entries {
                    w.u32(e.query);
                    w.u8(e.invalidated as u8);
                    w.u32(e.src);
                    w.u32(e.dst);
                    w.i64(e.ts);
                }
                K_RESULTS
            }
            Msg::Dropped { count } => {
                w.u64(*count);
                K_DROPPED
            }
            Msg::Drained { seq } => {
                w.u64(*seq);
                K_DRAINED
            }
            Msg::CheckpointDone { seq } => {
                w.u64(*seq);
                K_CHECKPOINT_DONE
            }
            Msg::ShuttingDown => K_SHUTTING_DOWN,
            Msg::ServerStats(s) => {
                w.u64(s.seq);
                w.u32(s.live_queries);
                w.u32(s.slots);
                w.u32(s.subscribers);
                w.u32(s.labels);
                w.u64(s.results_pushed);
                w.u64(s.results_dropped);
                w.u32(s.workers);
                w.u64(s.eval_ns);
                w.u64(s.delta_nodes_live);
                w.u64(s.delta_capacity);
                w.u64(s.compactions);
                w.u32(s.worker_ns.len() as u32);
                for &(eval, expiry) in &s.worker_ns {
                    w.u64(eval);
                    w.u64(expiry);
                }
                w.u32(s.groups_live);
                K_SERVER_STATS
            }
            Msg::Error { msg } => {
                w.str(msg);
                K_ERROR
            }
            Msg::MetricsText { text } => {
                w.str(text);
                K_METRICS_TEXT
            }
            Msg::EventList { events, dropped } => {
                w.u64(*dropped);
                w.u32(events.len() as u32);
                for ev in events {
                    w.u64(ev.seq);
                    w.u64(ev.unix_ms);
                    w.u8(ev.kind);
                    w.str(&ev.detail);
                }
                K_EVENT_LIST
            }
            Msg::TraceList { spans } => {
                w.u32(spans.len() as u32);
                for s in spans {
                    w.u64(s.trace_id);
                    w.u64(s.span_id);
                    w.u64(s.parent);
                    w.str(&s.name);
                    w.u64(s.start_us);
                    w.u64(s.dur_us);
                    w.str(&s.thread);
                    w.str(&s.detail);
                }
                K_TRACE_LIST
            }
            Msg::ExplainReport(x) => {
                w.u32(x.id);
                w.str(&x.name);
                w.str(&x.regex);
                w.u8(x.simple as u8);
                w.u32(x.dfa_states);
                w.u32(x.dfa_start);
                w.u32(x.dfa_accepting.len() as u32);
                for s in &x.dfa_accepting {
                    w.u32(*s);
                }
                w.u32(x.labels.len() as u32);
                for l in &x.labels {
                    w.str(&l.name);
                    w.u32(l.transitions);
                    w.u32(l.sharing_queries);
                }
                w.u64(x.delta_trees);
                w.u64(x.delta_nodes);
                w.u64(x.delta_slots);
                w.u64(x.delta_arena_bytes);
                w.u64(x.compactions);
                w.u32(x.nodes_per_state.len() as u32);
                for &(state, n) in &x.nodes_per_state {
                    w.u32(state);
                    w.u64(n);
                }
                w.u32(x.depth_hist.len() as u32);
                for d in &x.depth_hist {
                    w.u64(*d);
                }
                w.u64(x.tuples_routed);
                w.u64(x.eval_ns);
                w.u64(x.expiry_ns);
                w.u64(x.total_eval_ns);
                w.u64(x.results_emitted);
                w.u32(x.group);
                w.u64(x.signature_hash);
                strings(&mut w, &x.co_subscribers);
                K_EXPLAIN_REPORT
            }
        };
        (kind, w.into_bytes())
    }

    /// Decodes a message from a frame `(kind, payload)`. Errors on
    /// unknown kinds, malformed bodies, and trailing bytes.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Msg, String> {
        let mut r = ByteReader::new(payload);
        let e = |x: srpq_persist::PersistError| x.to_string();
        let msg = match kind {
            K_HELLO => Msg::Hello {
                proto: r.u32().map_err(e)? as u16,
            },
            K_MAP_LABELS => Msg::MapLabels {
                names: read_strings(&mut r)?,
            },
            K_INGEST => {
                let tuples = wire::decode_stream(payload)
                    .ok_or_else(|| "malformed tuple batch".to_string())?;
                return Ok(Msg::Ingest { tuples });
            }
            K_ADD_QUERY => Msg::AddQuery {
                name: r.str().map_err(e)?,
                regex: r.str().map_err(e)?,
                simple: r.u8().map_err(e)? != 0,
                backfill: r.u8().map_err(e)? != 0,
            },
            K_REMOVE_QUERY => Msg::RemoveQuery {
                name: r.str().map_err(e)?,
            },
            K_LIST_QUERIES => Msg::ListQueries,
            K_SUBSCRIBE => Msg::Subscribe {
                queries: read_strings(&mut r)?,
                policy: SubPolicy::from_u8(r.u8().map_err(e)?)?,
                capacity: r.u32().map_err(e)?,
            },
            K_DRAIN => Msg::Drain,
            K_CHECKPOINT => Msg::Checkpoint,
            K_SHUTDOWN => Msg::Shutdown,
            K_STATS => Msg::Stats,
            K_METRICS => Msg::Metrics,
            K_EVENTS => Msg::Events {
                since: r.u64().map_err(e)?,
            },
            K_TRACE => Msg::Trace,
            K_EXPLAIN => Msg::Explain {
                name: r.str().map_err(e)?,
            },
            K_HELLO_ACK => Msg::HelloAck {
                proto: r.u32().map_err(e)? as u16,
                seq: r.u64().map_err(e)?,
                durable: r.u8().map_err(e)? != 0,
            },
            K_LABEL_IDS => {
                let n = r.count(4).map_err(e)?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(r.u32().map_err(e)?);
                }
                Msg::LabelIds { ids }
            }
            K_INGEST_ACK => Msg::IngestAck {
                seq: r.u64().map_err(e)?,
                durable: r.u8().map_err(e)? != 0,
            },
            K_QUERY_ADDED => Msg::QueryAdded {
                id: r.u32().map_err(e)?,
            },
            K_QUERY_REMOVED => Msg::QueryRemoved {
                id: r.u32().map_err(e)?,
            },
            K_QUERY_LIST => {
                let n = r.count(10).map_err(e)?;
                let mut queries = Vec::with_capacity(n);
                for _ in 0..n {
                    queries.push(QueryInfo {
                        id: r.u32().map_err(e)?,
                        name: r.str().map_err(e)?,
                        regex: r.str().map_err(e)?,
                        simple: r.u8().map_err(e)? != 0,
                        tuples_routed: r.u64().map_err(e)?,
                        results_emitted: r.u64().map_err(e)?,
                        eval_ns: r.u64().map_err(e)?,
                        group: r.u32().map_err(e)?,
                    });
                }
                Msg::QueryList { queries }
            }
            K_SUB_ACK => Msg::SubAck {
                matched: r.u32().map_err(e)?,
            },
            K_RESULTS => {
                let n = r.count(21).map_err(e)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(ResultEntry {
                        query: r.u32().map_err(e)?,
                        invalidated: r.u8().map_err(e)? != 0,
                        src: r.u32().map_err(e)?,
                        dst: r.u32().map_err(e)?,
                        ts: r.i64().map_err(e)?,
                    });
                }
                Msg::Results { entries }
            }
            K_DROPPED => Msg::Dropped {
                count: r.u64().map_err(e)?,
            },
            K_DRAINED => Msg::Drained {
                seq: r.u64().map_err(e)?,
            },
            K_CHECKPOINT_DONE => Msg::CheckpointDone {
                seq: r.u64().map_err(e)?,
            },
            K_SHUTTING_DOWN => Msg::ShuttingDown,
            K_SERVER_STATS => {
                let mut s = StatsSnapshot {
                    seq: r.u64().map_err(e)?,
                    live_queries: r.u32().map_err(e)?,
                    slots: r.u32().map_err(e)?,
                    subscribers: r.u32().map_err(e)?,
                    labels: r.u32().map_err(e)?,
                    results_pushed: r.u64().map_err(e)?,
                    results_dropped: r.u64().map_err(e)?,
                    workers: r.u32().map_err(e)?,
                    eval_ns: r.u64().map_err(e)?,
                    delta_nodes_live: r.u64().map_err(e)?,
                    delta_capacity: r.u64().map_err(e)?,
                    compactions: r.u64().map_err(e)?,
                    worker_ns: Vec::new(),
                    groups_live: 0,
                };
                let n = r.count(16).map_err(e)?;
                s.worker_ns.reserve(n);
                for _ in 0..n {
                    s.worker_ns.push((r.u64().map_err(e)?, r.u64().map_err(e)?));
                }
                s.groups_live = r.u32().map_err(e)?;
                Msg::ServerStats(s)
            }
            K_ERROR => Msg::Error {
                msg: r.str().map_err(e)?,
            },
            K_METRICS_TEXT => Msg::MetricsText {
                text: r.str().map_err(e)?,
            },
            K_EVENT_LIST => {
                let dropped = r.u64().map_err(e)?;
                let n = r.count(21).map_err(e)?;
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    events.push(EventWire {
                        seq: r.u64().map_err(e)?,
                        unix_ms: r.u64().map_err(e)?,
                        kind: r.u8().map_err(e)?,
                        detail: r.str().map_err(e)?,
                    });
                }
                Msg::EventList { events, dropped }
            }
            K_TRACE_LIST => {
                let n = r.count(48).map_err(e)?;
                let mut spans = Vec::with_capacity(n);
                for _ in 0..n {
                    spans.push(SpanWire {
                        trace_id: r.u64().map_err(e)?,
                        span_id: r.u64().map_err(e)?,
                        parent: r.u64().map_err(e)?,
                        name: r.str().map_err(e)?,
                        start_us: r.u64().map_err(e)?,
                        dur_us: r.u64().map_err(e)?,
                        thread: r.str().map_err(e)?,
                        detail: r.str().map_err(e)?,
                    });
                }
                Msg::TraceList { spans }
            }
            K_EXPLAIN_REPORT => {
                let mut x = ExplainWire {
                    id: r.u32().map_err(e)?,
                    name: r.str().map_err(e)?,
                    regex: r.str().map_err(e)?,
                    simple: r.u8().map_err(e)? != 0,
                    dfa_states: r.u32().map_err(e)?,
                    dfa_start: r.u32().map_err(e)?,
                    ..ExplainWire::default()
                };
                let n = r.count(4).map_err(e)?;
                x.dfa_accepting.reserve(n);
                for _ in 0..n {
                    x.dfa_accepting.push(r.u32().map_err(e)?);
                }
                let n = r.count(12).map_err(e)?;
                x.labels.reserve(n);
                for _ in 0..n {
                    x.labels.push(LabelRoute {
                        name: r.str().map_err(e)?,
                        transitions: r.u32().map_err(e)?,
                        sharing_queries: r.u32().map_err(e)?,
                    });
                }
                x.delta_trees = r.u64().map_err(e)?;
                x.delta_nodes = r.u64().map_err(e)?;
                x.delta_slots = r.u64().map_err(e)?;
                x.delta_arena_bytes = r.u64().map_err(e)?;
                x.compactions = r.u64().map_err(e)?;
                let n = r.count(12).map_err(e)?;
                x.nodes_per_state.reserve(n);
                for _ in 0..n {
                    x.nodes_per_state
                        .push((r.u32().map_err(e)?, r.u64().map_err(e)?));
                }
                let n = r.count(8).map_err(e)?;
                x.depth_hist.reserve(n);
                for _ in 0..n {
                    x.depth_hist.push(r.u64().map_err(e)?);
                }
                x.tuples_routed = r.u64().map_err(e)?;
                x.eval_ns = r.u64().map_err(e)?;
                x.expiry_ns = r.u64().map_err(e)?;
                x.total_eval_ns = r.u64().map_err(e)?;
                x.results_emitted = r.u64().map_err(e)?;
                x.group = r.u32().map_err(e)?;
                x.signature_hash = r.u64().map_err(e)?;
                x.co_subscribers = read_strings(&mut r)?;
                Msg::ExplainReport(x)
            }
            other => return Err(format!("unknown message kind 0x{other:02x}")),
        };
        if !r.is_exhausted() {
            return Err(format!(
                "message kind 0x{kind:02x} has {} trailing bytes",
                r.remaining()
            ));
        }
        Ok(msg)
    }

    /// Writes this message as one frame (no flush).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let (kind, payload) = self.encode();
        frame::write_frame(w, kind, &payload)
    }

    /// Reads one message; `Ok(None)` on clean EOF between frames.
    pub fn read_from(r: &mut impl Read) -> io::Result<Option<Msg>> {
        Self::read_from_timed(r).map(|opt| opt.map(|(msg, _)| msg))
    }

    /// Like [`Msg::read_from`], additionally reporting the nanoseconds
    /// spent decoding the frame payload into a message — the
    /// ingest-decode stage measurement. Socket reads (and the CRC check
    /// interleaved with them) are excluded: a session blocked waiting
    /// for the next frame is idle, not decoding.
    pub fn read_from_timed(r: &mut impl Read) -> io::Result<Option<(Msg, u64)>> {
        match frame::read_frame(r)? {
            None => Ok(None),
            Some((kind, payload)) => {
                let t0 = std::time::Instant::now();
                let msg = Msg::decode(kind, &payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                Ok(Some((msg, t0.elapsed().as_nanos() as u64)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srpq_common::{Label, Timestamp, VertexId};

    fn samples() -> Vec<Msg> {
        vec![
            Msg::Hello {
                proto: PROTO_VERSION,
            },
            Msg::MapLabels {
                names: vec!["knows".into(), "likes".into()],
            },
            Msg::Ingest {
                tuples: vec![
                    StreamTuple::insert(Timestamp(4), VertexId(0), VertexId(1), Label(0)),
                    StreamTuple::delete(Timestamp(9), VertexId(0), VertexId(1), Label(0)),
                ],
            },
            Msg::AddQuery {
                name: "q".into(),
                regex: "(a b)+".into(),
                simple: true,
                backfill: true,
            },
            Msg::RemoveQuery { name: "q".into() },
            Msg::ListQueries,
            Msg::Subscribe {
                queries: vec!["q".into()],
                policy: SubPolicy::DropNewest,
                capacity: 64,
            },
            Msg::Drain,
            Msg::Checkpoint,
            Msg::Shutdown,
            Msg::Stats,
            Msg::Metrics,
            Msg::Events { since: 42 },
            Msg::Trace,
            Msg::Explain { name: "q".into() },
            Msg::HelloAck {
                proto: PROTO_VERSION,
                seq: 12345,
                durable: true,
            },
            Msg::LabelIds { ids: vec![3, 0, 7] },
            Msg::IngestAck {
                seq: 99,
                durable: false,
            },
            Msg::QueryAdded { id: 2 },
            Msg::QueryRemoved { id: 2 },
            Msg::QueryList {
                queries: vec![QueryInfo {
                    id: 0,
                    name: "q".into(),
                    regex: "a+".into(),
                    simple: false,
                    tuples_routed: 41,
                    results_emitted: 6,
                    eval_ns: 12_345,
                    group: 0,
                }],
            },
            Msg::SubAck { matched: 1 },
            Msg::Results {
                entries: vec![ResultEntry {
                    query: 1,
                    invalidated: false,
                    src: 5,
                    dst: 9,
                    ts: -1,
                }],
            },
            Msg::Dropped { count: 17 },
            Msg::Drained { seq: 100 },
            Msg::CheckpointDone { seq: 100 },
            Msg::ShuttingDown,
            Msg::ServerStats(StatsSnapshot {
                seq: 1,
                live_queries: 2,
                slots: 3,
                subscribers: 4,
                labels: 5,
                results_pushed: 6,
                results_dropped: 7,
                workers: 4,
                eval_ns: 8,
                delta_nodes_live: 9,
                delta_capacity: 12,
                compactions: 1,
                worker_ns: vec![(100, 10), (200, 20), (7, 0)],
                groups_live: 2,
            }),
            Msg::Error { msg: "nope".into() },
            Msg::MetricsText {
                text: "# TYPE srpq_ingest_tuples_total counter\nsrpq_ingest_tuples_total 5\n"
                    .into(),
            },
            Msg::EventList {
                events: vec![
                    EventWire {
                        seq: 1,
                        unix_ms: 1_700_000_000_000,
                        kind: 2,
                        detail: "seq=10 strategy=Full".into(),
                    },
                    EventWire {
                        seq: 2,
                        unix_ms: 1_700_000_000_500,
                        kind: 4,
                        detail: String::new(),
                    },
                ],
                dropped: 3,
            },
            Msg::TraceList {
                spans: vec![
                    SpanWire {
                        trace_id: 7,
                        span_id: 8,
                        parent: 0,
                        name: "ingest".into(),
                        start_us: 1_000,
                        dur_us: 900,
                        thread: "srpq-session".into(),
                        detail: "delivered".into(),
                    },
                    SpanWire {
                        trace_id: 7,
                        span_id: 9,
                        parent: 8,
                        name: "extend:q".into(),
                        start_us: 1_100,
                        dur_us: 40,
                        thread: "srpq-engine".into(),
                        detail: String::new(),
                    },
                ],
            },
            Msg::ExplainReport(ExplainWire {
                id: 2,
                name: "q".into(),
                regex: "(a b)+".into(),
                simple: true,
                dfa_states: 3,
                dfa_start: 0,
                dfa_accepting: vec![2],
                labels: vec![
                    LabelRoute {
                        name: "a".into(),
                        transitions: 1,
                        sharing_queries: 2,
                    },
                    LabelRoute {
                        name: "b".into(),
                        transitions: 1,
                        sharing_queries: 1,
                    },
                ],
                delta_trees: 4,
                delta_nodes: 17,
                delta_slots: 20,
                delta_arena_bytes: 640,
                compactions: 2,
                nodes_per_state: vec![(0, 4), (1, 9), (2, 4)],
                depth_hist: vec![4, 9, 4],
                tuples_routed: 55,
                eval_ns: 1_234,
                expiry_ns: 234,
                total_eval_ns: 5_000,
                results_emitted: 6,
                group: 1,
                signature_hash: 0xDEAD_BEEF_F00D_CAFE,
                co_subscribers: vec!["q_twin".into()],
            }),
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in samples() {
            let (kind, payload) = msg.encode();
            let back = Msg::decode(kind, &payload).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn stream_io_round_trips() {
        let msgs = samples();
        let mut buf = Vec::new();
        for m in &msgs {
            m.write_to(&mut buf).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for expect in &msgs {
            let got = Msg::read_from(&mut cursor).unwrap().unwrap();
            assert_eq!(&got, expect);
        }
        assert!(Msg::read_from(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn frame_corruption_bit_flip_sweep_is_detected() {
        // Mirror the PR 3 wire tests at the protocol boundary: flip
        // every bit of every framed sample message; the frame CRC (or,
        // for flips that stretch the declared length past the buffer,
        // the torn-frame detector) must refuse each one — no mutation
        // may decode as a (different) valid message.
        for msg in samples() {
            let mut framed = Vec::new();
            msg.write_to(&mut framed).unwrap();
            for byte in 0..framed.len() {
                for bit in 0..8 {
                    let mut mutated = framed.clone();
                    mutated[byte] ^= 1 << bit;
                    let mut cursor = std::io::Cursor::new(mutated);
                    match Msg::read_from(&mut cursor) {
                        Err(_) => {}
                        Ok(got) => {
                            panic!("{msg:?}: flip at byte {byte} bit {bit} decoded as {got:?}")
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn frame_corruption_truncation_sweep_is_detected() {
        for msg in samples() {
            let mut framed = Vec::new();
            msg.write_to(&mut framed).unwrap();
            for len in 1..framed.len() {
                let mut cursor = std::io::Cursor::new(framed[..len].to_vec());
                match Msg::read_from(&mut cursor) {
                    Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData),
                    Ok(got) => panic!("{msg:?}: prefix of {len} bytes decoded as {got:?}"),
                }
            }
        }
    }

    #[test]
    fn garbage_payloads_never_panic() {
        // Arbitrary bytes behind a *valid* frame must decode to a clean
        // error (or a structurally valid message), never panic or
        // over-allocate.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xF00D);
        for _ in 0..2000 {
            let kind = rng.gen_range(0..=255u8);
            let len = rng.gen_range(0..64usize);
            let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
            let _ = Msg::decode(kind, &payload);
        }
    }

    #[test]
    fn trailing_bytes_are_refused() {
        let (kind, mut payload) = Msg::Drained { seq: 1 }.encode();
        payload.push(0);
        assert!(Msg::decode(kind, &payload)
            .unwrap_err()
            .contains("trailing"));
    }
}
