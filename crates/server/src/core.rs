//! The engine thread: sole owner of the evaluation state.
//!
//! All sessions funnel their work through one bounded command channel
//! into this thread — the serialization point that defines the global
//! stream order (command arrival order) and makes the server's output
//! reproducible by an offline run performing the same operations in the
//! same order. The channel bound is the ingest pipeline depth: decode
//! happens in session threads (sharded per connection), evaluation
//! here; when evaluation falls behind, session threads block on the
//! full channel, which backpressures their clients through TCP.

use crate::labels;
use crate::protocol::{
    EventWire, ExplainWire, LabelRoute, Msg, QueryInfo, StatsSnapshot, SubPolicy,
};
use crate::subscriber::{push_to_msg, BatchStamp, FanoutSink, Push, Subscriber};
use srpq_automata::CompiledQuery;
use srpq_common::beacon::stage;
use srpq_common::{FxHashSet, LabelInterner, ResultPair, StageBeacon, StreamTuple, Timestamp};
use srpq_core::engine::{Engine, PathSemantics};
use srpq_core::multi::{MultiQueryEngine, MultiSink, QueryError, QueryId};
use srpq_core::{EngineStats, ParallelMultiEngine, StageTotals};
use srpq_obs::{Counter, EventKind, Gauge, Histogram, Obs, StageTracker};
use srpq_persist::Durable;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a `Drain` waits for each subscriber's flush ack before
/// giving up on it (a subscriber stuck on a dead socket must not wedge
/// the control plane forever).
const DRAIN_ACK_TIMEOUT: Duration = Duration::from_secs(3);

/// The uniform registry surface over the sequential and parallel multi
/// engines — both expose the identical API, so the engine thread stays
/// engine-agnostic (only ingestion and checkpointing dispatch
/// concretely).
pub(crate) trait MultiRegistry {
    fn n_queries(&self) -> usize;
    fn n_slots(&self) -> usize;
    fn query_ids(&self) -> Vec<QueryId>;
    fn query_id(&self, name: &str) -> Option<QueryId>;
    fn name(&self, id: QueryId) -> Option<&str>;
    fn engine(&self, id: QueryId) -> Option<&Engine>;
    fn stats(&self, id: QueryId) -> Option<&EngineStats>;
    /// Live shared-evaluation groups (each owns one Δ forest).
    fn groups_live(&self) -> usize;
    /// Ids of the live groups, ascending.
    fn group_ids(&self) -> Vec<u32>;
    /// The group a live query subscribes to.
    fn group_of(&self, id: QueryId) -> Option<u32>;
    /// Slot ids subscribed to a group, ascending.
    fn group_subscribers(&self, g: u32) -> Option<&[u32]>;
    /// Hash of the group's canonical DFA signature.
    fn group_signature_hash(&self, g: u32) -> Option<u64>;
    /// The group's shared evaluation engine. Aggregations over
    /// engine state (Δ sizes, eval time) must run over groups, not
    /// query ids — per-id stats alias the group's and would count a
    /// shared forest once per subscriber.
    fn group_engine(&self, g: u32) -> Option<&Engine>;
    /// Evaluation threads (1 = the sequential engine).
    fn workers(&self) -> usize;
    /// Cumulative batch-path stage counters (route / eval / expiry).
    fn stage_totals(&self) -> StageTotals;
    /// Per-worker `(eval_ns, expiry_ns)` ledgers with the coordinator's
    /// inline time as one final synthetic entry; empty for the
    /// sequential engine (its whole ledger is `stage_totals`).
    fn worker_ns(&self) -> Vec<(u64, u64)>;
    /// Installs the stage beacon the batch path publishes on (the
    /// profiler samples it).
    fn set_beacon(&mut self, beacon: Arc<StageBeacon>);
    /// The evaluation workers' beacons (empty for the sequential
    /// engine, whose only beacon is the coordinator's).
    fn worker_beacons(&self) -> Vec<Arc<StageBeacon>>;
    fn register(
        &mut self,
        name: &str,
        query: CompiledQuery,
        semantics: PathSemantics,
    ) -> Result<QueryId, QueryError>;
    fn register_backfilled_dyn(
        &mut self,
        name: &str,
        query: CompiledQuery,
        semantics: PathSemantics,
        sink: &mut dyn MultiSink,
    ) -> Result<QueryId, QueryError>;
    fn deregister(&mut self, id: QueryId) -> Result<(), QueryError>;
}

/// Forwards a `&mut dyn MultiSink` into the engines' generic sink
/// parameter.
struct DynSink<'a>(&'a mut dyn MultiSink);

impl MultiSink for DynSink<'_> {
    fn emit(&mut self, id: QueryId, pair: ResultPair, ts: Timestamp) {
        self.0.emit(id, pair, ts);
    }

    fn invalidate(&mut self, id: QueryId, pair: ResultPair, ts: Timestamp) {
        self.0.invalidate(id, pair, ts);
    }
}

macro_rules! impl_multi_registry {
    ($ty:ty, $workers:expr, $worker_ns:expr) => {
        impl MultiRegistry for $ty {
            fn n_queries(&self) -> usize {
                <$ty>::n_queries(self)
            }
            fn n_slots(&self) -> usize {
                <$ty>::n_slots(self)
            }
            fn query_ids(&self) -> Vec<QueryId> {
                <$ty>::query_ids(self)
            }
            fn query_id(&self, name: &str) -> Option<QueryId> {
                <$ty>::query_id(self, name)
            }
            fn name(&self, id: QueryId) -> Option<&str> {
                <$ty>::name(self, id)
            }
            fn engine(&self, id: QueryId) -> Option<&Engine> {
                <$ty>::engine(self, id)
            }
            fn stats(&self, id: QueryId) -> Option<&EngineStats> {
                <$ty>::stats(self, id)
            }
            fn groups_live(&self) -> usize {
                <$ty>::groups_live(self)
            }
            fn group_ids(&self) -> Vec<u32> {
                <$ty>::group_ids(self)
            }
            fn group_of(&self, id: QueryId) -> Option<u32> {
                <$ty>::group_of(self, id)
            }
            fn group_subscribers(&self, g: u32) -> Option<&[u32]> {
                <$ty>::group_subscribers(self, g)
            }
            fn group_signature_hash(&self, g: u32) -> Option<u64> {
                <$ty>::group_signature(self, g).map(|s| s.hash64())
            }
            fn group_engine(&self, g: u32) -> Option<&Engine> {
                <$ty>::group_engine(self, g)
            }
            fn workers(&self) -> usize {
                #[allow(clippy::redundant_closure_call)]
                ($workers)(self)
            }
            fn stage_totals(&self) -> StageTotals {
                <$ty>::stage_totals(self)
            }
            fn worker_ns(&self) -> Vec<(u64, u64)> {
                #[allow(clippy::redundant_closure_call)]
                ($worker_ns)(self)
            }
            fn set_beacon(&mut self, beacon: Arc<StageBeacon>) {
                <$ty>::set_beacon(self, beacon)
            }
            fn worker_beacons(&self) -> Vec<Arc<StageBeacon>> {
                <$ty>::worker_beacons(self)
            }
            fn register(
                &mut self,
                name: &str,
                query: CompiledQuery,
                semantics: PathSemantics,
            ) -> Result<QueryId, QueryError> {
                <$ty>::register(self, name, query, semantics)
            }
            fn register_backfilled_dyn(
                &mut self,
                name: &str,
                query: CompiledQuery,
                semantics: PathSemantics,
                sink: &mut dyn MultiSink,
            ) -> Result<QueryId, QueryError> {
                <$ty>::register_backfilled(self, name, query, semantics, &mut DynSink(sink))
            }
            fn deregister(&mut self, id: QueryId) -> Result<(), QueryError> {
                <$ty>::deregister(self, id)
            }
        }
    };
}

impl_multi_registry!(
    MultiQueryEngine,
    |_e: &MultiQueryEngine| 1usize,
    |_e: &MultiQueryEngine| Vec::new()
);
impl_multi_registry!(
    ParallelMultiEngine,
    |e: &ParallelMultiEngine| e.n_workers(),
    |e: &ParallelMultiEngine| {
        let mut v = e.worker_totals().to_vec();
        v.push(e.coord_totals());
        v
    }
);

/// The evaluation state behind the command channel.
pub(crate) enum Host {
    /// In-memory only (no `--wal-dir`), single evaluation thread.
    Plain(Box<MultiQueryEngine>),
    /// WAL + checkpoints, single evaluation thread.
    Durable(Box<Durable<MultiQueryEngine>>),
    /// In-memory, worker-pool evaluation (`--workers N`).
    Parallel(Box<ParallelMultiEngine>),
    /// WAL + checkpoints over the worker-pool engine.
    DurableParallel(Box<Durable<ParallelMultiEngine>>),
}

impl Host {
    fn registry(&self) -> &dyn MultiRegistry {
        match self {
            Host::Plain(e) => &**e,
            Host::Durable(d) => d.inner(),
            Host::Parallel(e) => &**e,
            Host::DurableParallel(d) => d.inner(),
        }
    }

    fn registry_mut(&mut self) -> &mut dyn MultiRegistry {
        match self {
            Host::Plain(e) => &mut **e,
            Host::Durable(d) => d.inner_mut(),
            Host::Parallel(e) => &mut **e,
            Host::DurableParallel(d) => d.inner_mut(),
        }
    }

    fn is_durable(&self) -> bool {
        matches!(self, Host::Durable(_) | Host::DurableParallel(_))
    }

    fn process_batch<S: MultiSink>(
        &mut self,
        batch: &[StreamTuple],
        sink: &mut S,
    ) -> Result<(), String> {
        match self {
            Host::Plain(e) => {
                e.process_batch(batch, sink);
                Ok(())
            }
            Host::Durable(d) => d.process_batch(batch, sink).map_err(|e| e.to_string()),
            Host::Parallel(e) => {
                e.process_batch(batch, sink);
                Ok(())
            }
            Host::DurableParallel(d) => d.process_batch(batch, sink).map_err(|e| e.to_string()),
        }
    }

    /// Checkpoints durable state; `None` when the host is in-memory.
    fn checkpoint(&mut self) -> Option<Result<u64, String>> {
        match self {
            Host::Plain(_) | Host::Parallel(_) => None,
            Host::Durable(d) => Some(d.checkpoint().map_err(|e| e.to_string())),
            Host::DurableParallel(d) => Some(d.checkpoint().map_err(|e| e.to_string())),
        }
    }
}

/// One request to the engine thread. Every command carries a reply
/// sender; the engine always answers with exactly one [`Msg`].
pub(crate) enum Cmd {
    Hello {
        reply: Sender<Msg>,
    },
    MapLabels {
        names: Vec<String>,
        reply: Sender<Msg>,
    },
    Ingest {
        tuples: Vec<StreamTuple>,
        /// Sampling marks (e2e latency and/or causal trace) when a
        /// sampler picked this batch; ride every result frame it
        /// produces.
        stamp: Option<BatchStamp>,
        reply: Sender<Msg>,
    },
    AddQuery {
        name: String,
        regex: String,
        simple: bool,
        backfill: bool,
        reply: Sender<Msg>,
    },
    RemoveQuery {
        name: String,
        reply: Sender<Msg>,
    },
    ListQueries {
        reply: Sender<Msg>,
    },
    Subscribe {
        queries: Vec<String>,
        policy: SubPolicy,
        tx: SyncSender<Push>,
        /// Drop-tally counter shared with the session thread, which
        /// sweeps it into a final `Dropped` when the queue closes.
        pending: Arc<AtomicU64>,
        reply: Sender<Msg>,
    },
    Drain {
        reply: Sender<Msg>,
    },
    Checkpoint {
        reply: Sender<Msg>,
    },
    Stats {
        reply: Sender<Msg>,
    },
    Metrics {
        reply: Sender<Msg>,
    },
    Events {
        since: u64,
        reply: Sender<Msg>,
    },
    Explain {
        name: String,
        reply: Sender<Msg>,
    },
    Shutdown {
        reply: Sender<Msg>,
    },
}

/// Handles into the always-hot metric families, registered once at
/// construction so the per-batch path never takes the registry lock.
struct CoreMetrics {
    hist_route: Histogram,
    hist_extend: Histogram,
    hist_expiry: Histogram,
    hist_emit: Histogram,
    ingest_tuples: Counter,
    ingest_batches: Counter,
    results_delivered: Counter,
    results_dropped: Counter,
    gauge_subscribers: Gauge,
    gauge_live_queries: Gauge,
    gauge_live_groups: Gauge,
}

impl CoreMetrics {
    fn new(obs: &Obs) -> CoreMetrics {
        let r = obs.registry();
        CoreMetrics {
            hist_route: r.histogram("srpq_stage_route_ns", &[]),
            hist_extend: r.histogram("srpq_stage_extend_ns", &[]),
            hist_expiry: r.histogram("srpq_stage_expiry_ns", &[]),
            hist_emit: r.histogram("srpq_stage_emit_ns", &[]),
            ingest_tuples: r.counter("srpq_ingest_tuples_total", &[]),
            ingest_batches: r.counter("srpq_ingest_batches_total", &[]),
            results_delivered: r.counter("srpq_results_delivered_total", &[]),
            results_dropped: r.counter("srpq_results_dropped_total", &[]),
            gauge_subscribers: r.gauge("srpq_subscribers", &[]),
            gauge_live_queries: r.gauge("srpq_live_queries", &[]),
            gauge_live_groups: r.gauge("srpq_live_groups", &[]),
        }
    }
}

/// Cached per-query gauge handles.
struct QueryGauges {
    delta_nodes: Gauge,
    delta_capacity: Gauge,
    compactions: Gauge,
    routed: Gauge,
    eval_ns: Gauge,
    results: Gauge,
}

impl QueryGauges {
    fn new(obs: &Obs, name: &str) -> QueryGauges {
        let r = obs.registry();
        let l: &[(&str, &str)] = &[("query", name)];
        QueryGauges {
            delta_nodes: r.gauge("srpq_query_delta_nodes", l),
            delta_capacity: r.gauge("srpq_query_delta_capacity", l),
            compactions: r.gauge("srpq_query_compactions_total", l),
            routed: r.gauge("srpq_query_routed_total", l),
            eval_ns: r.gauge("srpq_query_eval_ns_total", l),
            results: r.gauge("srpq_query_results_total", l),
        }
    }
}

pub(crate) struct EngineCore {
    host: Host,
    labels: LabelInterner,
    /// Where to persist the label table (durable hosts only).
    label_dir: Option<PathBuf>,
    subscribers: Vec<Subscriber>,
    /// Tuples accepted (equals the WAL sequence for durable hosts).
    seq: u64,
    results_pushed: u64,
    results_dropped: u64,
    obs: Obs,
    metrics: CoreMetrics,
    /// Per-query gauge handles, keyed by slot id.
    query_gauges: HashMap<u32, QueryGauges>,
    /// Worker-ledger gauges, grown lazily to the ledger length.
    worker_gauges: Vec<(Gauge, Gauge)>,
    /// Stage counters at the last batch (per-batch delta source).
    last_stage: StageTotals,
    /// Watermarks behind the slide-boundary and compaction journal
    /// events (shared with the offline runner's `--trace` mode).
    tracker: StageTracker,
    /// The coordinator's stage beacon, shared with the engine's batch
    /// path and sampled by the profiler as thread `srpq-engine`.
    beacon: Arc<StageBeacon>,
}

impl EngineCore {
    pub(crate) fn new(
        host: Host,
        labels: LabelInterner,
        label_dir: Option<PathBuf>,
        seq: u64,
        obs: Obs,
    ) -> EngineCore {
        let metrics = CoreMetrics::new(&obs);
        let mut core = EngineCore {
            host,
            labels,
            label_dir,
            subscribers: Vec::new(),
            seq,
            results_pushed: 0,
            results_dropped: 0,
            obs,
            metrics,
            query_gauges: HashMap::new(),
            worker_gauges: Vec::new(),
            last_stage: StageTotals::default(),
            tracker: StageTracker::new(),
            beacon: Arc::new(StageBeacon::new()),
        };
        // Recovered hosts come up with live queries and non-zero stage
        // ledgers; seed the gauges and watermarks so the first batch
        // reports deltas, not lifetime totals.
        core.last_stage = core.host.registry().stage_totals();
        core.refresh_gauges();
        core.tracker.seed(core.sum_expiry_runs(), 0);
        for id in core.host.registry().query_ids() {
            let stats = *core.host.registry().stats(id).expect("live id");
            let name = core.host.registry().name(id).unwrap_or("").to_string();
            core.tracker.seed_query(&name, stats.compactions);
        }
        // Hand the batch path its beacon and register every evaluation
        // thread with the profiler (the sequential engine has only the
        // coordinator; the parallel host adds one beacon per worker).
        core.host.registry_mut().set_beacon(core.beacon.clone());
        core.obs
            .profiler()
            .register("srpq-engine", core.beacon.clone());
        for (i, b) in core.host.registry().worker_beacons().iter().enumerate() {
            core.obs
                .profiler()
                .register(format!("srpq-multi-worker-{i}"), b.clone());
        }
        core
    }

    /// Expiry passes summed over evaluation *groups*: per-query stats
    /// alias the owning group's, so a per-id sum would count a shared
    /// forest once per subscriber.
    fn sum_expiry_runs(&self) -> u64 {
        let engine = self.host.registry();
        engine
            .group_ids()
            .iter()
            .filter_map(|&g| engine.group_engine(g))
            .map(|e| e.stats().expiry_runs)
            .sum()
    }

    /// Publishes the pull-model gauges: per-query Δ/occupancy/time,
    /// worker ledgers, subscriber and query counts. Runs after every
    /// ingest batch and on query add/remove — `/metrics` scrapes read
    /// the last published state without touching the engine thread.
    fn refresh_gauges(&mut self) {
        let host = &self.host;
        let engine = host.registry();
        for id in engine.query_ids() {
            let Some(stats) = engine.stats(id) else {
                continue;
            };
            let stats = *stats;
            let name = engine.name(id).unwrap_or("").to_string();
            let g = self
                .query_gauges
                .entry(id.0)
                .or_insert_with(|| QueryGauges::new(&self.obs, &name));
            g.delta_nodes.set(stats.delta_nodes_live);
            g.delta_capacity.set(stats.delta_capacity);
            g.compactions.set(stats.compactions);
            g.routed.set(stats.tuples_routed);
            g.eval_ns.set(stats.eval_ns);
            g.results.set(stats.results_emitted);
        }
        let ledger = engine.worker_ns();
        for (i, &(eval, expiry)) in ledger.iter().enumerate() {
            if self.worker_gauges.len() <= i {
                // The final ledger entry is the coordinator's inline time.
                let label = if i + 1 == ledger.len() {
                    "coord".to_string()
                } else {
                    i.to_string()
                };
                let l: &[(&str, &str)] = &[("worker", &label)];
                self.worker_gauges.push((
                    self.obs.registry().gauge("srpq_worker_eval_ns_total", l),
                    self.obs.registry().gauge("srpq_worker_expiry_ns_total", l),
                ));
            }
            self.worker_gauges[i].0.set(eval);
            self.worker_gauges[i].1.set(expiry);
        }
        self.metrics
            .gauge_live_queries
            .set(engine.n_queries() as u64);
        self.metrics
            .gauge_live_groups
            .set(engine.groups_live() as u64);
        self.metrics
            .gauge_subscribers
            .set(self.subscribers.len() as u64);
        // Counters mirror the engine-thread tallies; only this thread
        // writes them, so catching up by delta is race-free.
        let delivered = &self.metrics.results_delivered;
        delivered.add(self.results_pushed.saturating_sub(delivered.get()));
        let dropped = &self.metrics.results_dropped;
        dropped.add(self.results_dropped.saturating_sub(dropped.get()));
    }

    /// Journals slide boundaries and compactions detected since the
    /// last batch, and records the per-batch stage histograms.
    fn observe_batch(&mut self, emit_ns: u64) {
        let stage = self.host.registry().stage_totals();
        if stage.batches > self.last_stage.batches {
            let route = stage.route_ns.saturating_sub(self.last_stage.route_ns);
            let eval = stage.eval_ns.saturating_sub(self.last_stage.eval_ns);
            let expiry = stage.expiry_ns.saturating_sub(self.last_stage.expiry_ns);
            self.metrics.hist_route.record(route);
            self.metrics.hist_extend.record(eval.saturating_sub(expiry));
            self.metrics.hist_expiry.record(expiry);
            self.metrics.hist_emit.record(emit_ns);
        }
        self.last_stage = stage;
        let expiry_runs = self.sum_expiry_runs();
        let at = format!("seq={}", self.seq);
        self.tracker.slide(self.obs.journal(), &at, expiry_runs);
        let per_query: Vec<(String, u64)> = {
            let engine = self.host.registry();
            engine
                .query_ids()
                .into_iter()
                .filter_map(|id| {
                    let stats = engine.stats(id)?;
                    Some((engine.name(id)?.to_string(), stats.compactions))
                })
                .collect()
        };
        for (name, compactions) in per_query {
            self.tracker
                .compaction(self.obs.journal(), &name, compactions);
        }
    }

    /// Serves commands until `Shutdown` (graceful: earlier commands in
    /// the channel have already been handled — the pipeline is drained
    /// by construction — then durable state is checkpointed and the
    /// subscriber queues are closed) or until every sender is gone.
    pub(crate) fn run(mut self, rx: Receiver<Cmd>) {
        while let Ok(cmd) = rx.recv() {
            if let Cmd::Shutdown { reply } = cmd {
                if let Some(Err(e)) = self.host.checkpoint() {
                    eprintln!("srpq-server: shutdown checkpoint failed: {e}");
                }
                // Closing the queues ends every subscriber session; the
                // sessions drain what's buffered, sweep the shared
                // drop-tally counters into one final `Dropped`, and
                // write `ShuttingDown` to their clients — the
                // accounting guarantee ("delivered or tallied, never
                // silently lost") holds through shutdown.
                self.subscribers.clear();
                let _ = reply.send(Msg::ShuttingDown);
                return;
            }
            self.handle(cmd);
        }
    }

    fn handle(&mut self, cmd: Cmd) {
        match cmd {
            Cmd::Hello { reply } => {
                let _ = reply.send(Msg::HelloAck {
                    proto: crate::protocol::PROTO_VERSION,
                    seq: self.seq,
                    durable: self.host.is_durable(),
                });
            }
            Cmd::MapLabels { names, reply } => {
                let before = self.labels.len();
                let ids: Vec<u32> = names.iter().map(|n| self.labels.intern(n).0).collect();
                let msg = match self.persist_labels_if_grown(before) {
                    Ok(()) => Msg::LabelIds { ids },
                    Err(e) => Msg::Error { msg: e },
                };
                let _ = reply.send(msg);
            }
            Cmd::Ingest {
                tuples,
                stamp,
                reply,
            } => {
                let _ = reply.send(self.ingest(tuples, stamp));
            }
            Cmd::AddQuery {
                name,
                regex,
                simple,
                backfill,
                reply,
            } => {
                let _ = reply.send(self.add_query(name, regex, simple, backfill));
            }
            Cmd::RemoveQuery { name, reply } => {
                let _ = reply.send(self.remove_query(name));
            }
            Cmd::ListQueries { reply } => {
                let engine = self.host.registry();
                let queries = engine
                    .query_ids()
                    .into_iter()
                    .map(|id| {
                        let e = engine.engine(id).expect("live id");
                        let stats = e.stats();
                        QueryInfo {
                            id: id.0,
                            name: engine.name(id).unwrap_or("").to_string(),
                            regex: e.query().regex().to_string(),
                            simple: e.semantics() == PathSemantics::Simple,
                            tuples_routed: stats.tuples_routed,
                            results_emitted: stats.results_emitted,
                            eval_ns: stats.eval_ns,
                            group: engine.group_of(id).expect("live id"),
                        }
                    })
                    .collect();
                let _ = reply.send(Msg::QueryList { queries });
            }
            Cmd::Subscribe {
                queries,
                policy,
                tx,
                pending,
                reply,
            } => {
                let engine = self.host.registry();
                let all = queries.is_empty();
                let mut resolved = FxHashSet::default();
                for name in &queries {
                    if let Some(id) = engine.query_id(name) {
                        resolved.insert(id.0);
                    }
                }
                let matched = if all {
                    engine.n_queries() as u32
                } else {
                    resolved.len() as u32
                };
                self.obs.journal().record(
                    EventKind::SubscriberConnect,
                    format!(
                        "queries={} matched={matched}",
                        if all { "*".into() } else { queries.join(",") }
                    ),
                );
                self.subscribers
                    .push(Subscriber::new(queries, resolved, tx, policy, pending));
                self.metrics
                    .gauge_subscribers
                    .set(self.subscribers.len() as u64);
                let _ = reply.send(Msg::SubAck { matched });
            }
            Cmd::Drain { reply } => {
                self.drain();
                let _ = reply.send(Msg::Drained { seq: self.seq });
            }
            Cmd::Checkpoint { reply } => {
                let msg = match self.host.checkpoint() {
                    None => Msg::Error {
                        msg: "server runs without --wal-dir; nothing to checkpoint".into(),
                    },
                    Some(Ok(seq)) => Msg::CheckpointDone { seq },
                    Some(Err(e)) => Msg::Error { msg: e },
                };
                let _ = reply.send(msg);
            }
            Cmd::Stats { reply } => {
                let engine = self.host.registry();
                let (mut eval_ns, mut delta_nodes_live, mut delta_capacity, mut compactions) =
                    (0u64, 0u64, 0u64, 0u64);
                // Sum over groups, not query ids: a shared Δ forest
                // counts once however many subscribers ride it.
                for g in engine.group_ids() {
                    if let Some(s) = engine.group_engine(g).map(|e| e.stats()) {
                        eval_ns += s.eval_ns;
                        delta_nodes_live += s.delta_nodes_live;
                        delta_capacity += s.delta_capacity;
                        compactions += s.compactions;
                    }
                }
                let _ = reply.send(Msg::ServerStats(StatsSnapshot {
                    seq: self.seq,
                    live_queries: engine.n_queries() as u32,
                    slots: engine.n_slots() as u32,
                    subscribers: self.subscribers.len() as u32,
                    labels: self.labels.len() as u32,
                    results_pushed: self.results_pushed,
                    results_dropped: self.results_dropped,
                    workers: engine.workers() as u32,
                    eval_ns,
                    delta_nodes_live,
                    delta_capacity,
                    compactions,
                    worker_ns: engine.worker_ns(),
                    groups_live: engine.groups_live() as u32,
                }));
            }
            Cmd::Metrics { reply } => {
                self.refresh_gauges();
                let _ = reply.send(Msg::MetricsText {
                    text: self.obs.render_prometheus(),
                });
            }
            Cmd::Events { since, reply } => {
                let (events, dropped) = self.obs.journal().since_with_dropped(since);
                let events = events
                    .into_iter()
                    .map(|e| EventWire {
                        seq: e.seq,
                        unix_ms: e.unix_ms,
                        kind: e.kind.as_u8(),
                        detail: e.detail,
                    })
                    .collect();
                let _ = reply.send(Msg::EventList { events, dropped });
            }
            Cmd::Explain { name, reply } => {
                let _ = reply.send(self.explain(&name));
            }
            Cmd::Shutdown { .. } => unreachable!("handled by run()"),
        }
    }

    fn ingest(&mut self, tuples: Vec<StreamTuple>, stamp: Option<BatchStamp>) -> Msg {
        if tuples.is_empty() {
            return Msg::IngestAck {
                seq: self.seq,
                durable: self.host.is_durable(),
            };
        }
        // Validate before anything touches the WAL or the engine: a
        // refused batch leaves no trace and no sequence numbers behind.
        let n_labels = self.labels.len() as u32;
        for (i, t) in tuples.iter().enumerate() {
            if t.ts < Timestamp::ZERO {
                return Msg::Error {
                    msg: format!("tuple {i} carries negative timestamp {}", t.ts),
                };
            }
            if t.label.0 >= n_labels {
                return Msg::Error {
                    msg: format!(
                        "tuple {i} carries unmapped label id {} (server knows {n_labels}); \
                         map labels before ingesting",
                        t.label.0
                    ),
                };
            }
        }
        let dropped_before = self.results_dropped;
        // Pre-batch snapshot for sampled batches: stage totals and
        // per-group counters, diffed after the batch to attribute its
        // evaluation time to causal-trace spans. Groups, not query
        // ids — a shared forest evaluates once per tuple, so its span
        // must appear once, labeled by its first subscriber (plus a
        // `+N` tally when others ride the same forest).
        let trace = stamp.and_then(|s| s.trace);
        let pre = trace.map(|_| {
            let engine = self.host.registry();
            let groups: Vec<(u32, String, u64, u64, u64)> = engine
                .group_ids()
                .into_iter()
                .filter_map(|g| {
                    let s = engine.group_engine(g)?.stats();
                    let subs = engine.group_subscribers(g)?;
                    let mut label = subs
                        .first()
                        .and_then(|&slot| engine.name(QueryId(slot)))
                        .unwrap_or("?")
                        .to_string();
                    if subs.len() > 1 {
                        label.push_str(&format!("+{}", subs.len() - 1));
                    }
                    Some((g, label, s.tuples_routed, s.eval_ns, s.expiry_nanos))
                })
                .collect();
            (engine.stage_totals(), groups)
        });
        if self.host.is_durable() {
            // The WAL append runs on this thread before the engine's
            // batch path takes over the beacon.
            self.beacon.set(stage::WAL);
        }
        let t_b0 = Instant::now();
        let mut sink = FanoutSink {
            subscribers: &mut self.subscribers,
            pushed: &mut self.results_pushed,
            dropped: &mut self.results_dropped,
            stamp,
        };
        if let Err(e) = self.host.process_batch(&tuples, &mut sink) {
            self.beacon.set(stage::IDLE);
            // The WAL refused (e.g. disk trouble): the engine saw
            // nothing, so the session can report and carry on.
            return Msg::Error { msg: e };
        }
        let t_b1 = Instant::now();
        // The emit stage is the end-of-batch hand-off of staged frames
        // to the subscriber queues — where the Block policy can stall
        // and the Drop policy sheds. (Per-entry staging during
        // evaluation is attributed to the extend stage.)
        let t_emit = Instant::now();
        self.beacon.set(stage::EMIT);
        let sink = FanoutSink {
            subscribers: &mut self.subscribers,
            pushed: &mut self.results_pushed,
            dropped: &mut self.results_dropped,
            stamp,
        };
        sink.finish();
        self.beacon.set(stage::IDLE);
        self.beacon.advance();
        let emit_ns = t_emit.elapsed().as_nanos() as u64;
        if let (Some((trace_id, root)), Some((stage_pre, groups_pre))) = (trace, pre) {
            self.record_batch_spans(
                trace_id,
                root,
                (t_b0, t_b1, t_emit, emit_ns),
                stage_pre,
                &groups_pre,
            );
        }
        self.seq += tuples.len() as u64;
        self.metrics.ingest_tuples.add(tuples.len() as u64);
        self.metrics.ingest_batches.inc();
        if self.results_dropped > dropped_before {
            self.obs.journal().record(
                EventKind::BackpressureDrop,
                format!(
                    "seq={} dropped+={}",
                    self.seq,
                    self.results_dropped - dropped_before
                ),
            );
        }
        self.observe_batch(emit_ns);
        self.refresh_gauges();
        Msg::IngestAck {
            seq: self.seq,
            durable: self.host.is_durable(),
        }
    }

    fn add_query(&mut self, name: String, regex: String, simple: bool, backfill: bool) -> Msg {
        let before = self.labels.len();
        let query = match CompiledQuery::compile(&regex, &mut self.labels) {
            Ok(q) => q,
            Err(e) => {
                return Msg::Error {
                    msg: format!("query {regex:?}: {e}"),
                }
            }
        };
        // The label table must be durable before the registration that
        // references it can be checkpointed.
        if let Err(e) = self.persist_labels_if_grown(before) {
            return Msg::Error { msg: e };
        }
        let semantics = if simple {
            PathSemantics::Simple
        } else {
            PathSemantics::Arbitrary
        };
        let engine = self.host.registry_mut();
        let registered = if backfill {
            let mut sink = FanoutSink {
                subscribers: &mut self.subscribers,
                pushed: &mut self.results_pushed,
                dropped: &mut self.results_dropped,
                stamp: None,
            };
            // A subscriber that declared this name must see the
            // backfill results, so resolve name filters *before*
            // replay. The id is the next slot index by construction.
            let id_next = engine.n_slots() as u32;
            for sub in sink.subscribers.iter_mut() {
                if sub.names.iter().any(|n| n == &name) {
                    sub.queries.insert(id_next);
                }
            }
            let r = engine.register_backfilled_dyn(&name, query, semantics, &mut sink);
            sink.finish();
            if r.is_err() {
                // Nothing was registered (duplicate name), so the
                // predicted slot id must not linger in any filter — a
                // later unrelated query would take that id and leak its
                // results to these subscribers.
                for sub in self.subscribers.iter_mut() {
                    sub.queries.remove(&id_next);
                }
            }
            r
        } else {
            engine.register(&name, query, semantics)
        };
        let id = match registered {
            Ok(id) => id,
            Err(e) => return Msg::Error { msg: e.to_string() },
        };
        if !backfill {
            for sub in self.subscribers.iter_mut() {
                if sub.names.iter().any(|n| n == &name) {
                    sub.queries.insert(id.0);
                }
            }
        }
        // Registration becomes durable with the state it applies to.
        if let Some(Err(e)) = self.host.checkpoint() {
            return Msg::Error {
                msg: format!("query registered but checkpoint failed: {e}"),
            };
        }
        self.obs.journal().record(
            EventKind::QueryAdd,
            format!("name={name} id={} regex={regex} backfill={backfill}", id.0),
        );
        self.refresh_gauges();
        Msg::QueryAdded { id: id.0 }
    }

    fn remove_query(&mut self, name: String) -> Msg {
        let engine = self.host.registry_mut();
        let Some(id) = engine.query_id(&name) else {
            return Msg::Error {
                msg: format!("no live query named {name:?}"),
            };
        };
        if let Err(e) = engine.deregister(id) {
            return Msg::Error { msg: e.to_string() };
        }
        for sub in &mut self.subscribers {
            sub.queries.remove(&id.0);
        }
        if let Some(Err(e)) = self.host.checkpoint() {
            return Msg::Error {
                msg: format!("query removed but checkpoint failed: {e}"),
            };
        }
        self.obs
            .journal()
            .record(EventKind::QueryRemove, format!("name={name} id={}", id.0));
        // Stop exporting the removed query's series; a re-registration
        // under the same name starts fresh.
        self.query_gauges.remove(&id.0);
        self.tracker.reset_query(&name);
        self.obs.registry().remove_labeled("query", &name);
        self.refresh_gauges();
        Msg::QueryRemoved { id: id.0 }
    }

    /// The `Drain` fence: every subscriber flushes its queue and socket
    /// before this returns (subscribers that cannot ack within the
    /// timeout are skipped — they are stalled or gone, and the fence
    /// must not wedge the control plane).
    fn drain(&mut self) {
        let mut acks = Vec::new();
        for sub in &mut self.subscribers {
            if let Some(rx) = sub.send_fence(DRAIN_ACK_TIMEOUT) {
                acks.push(rx);
            }
        }
        for rx in acks {
            let _ = rx.recv_timeout(DRAIN_ACK_TIMEOUT);
        }
        self.subscribers.retain(|s| !s.dead);
    }

    /// Synthesizes the engine-side child spans of a sampled batch from
    /// the same monotone counters the stage histograms diff: WAL (batch
    /// wall time not accounted to routing or evaluation; durable hosts
    /// only), routing, one `extend:<group>` span per routed evaluation
    /// group (labeled by its first subscriber, `+N` when shared), the
    /// pooled expiry slice, and the emit hand-off. Stage slices are
    /// laid out sequentially from the batch start — exact for the
    /// sequential host; for the worker pool they are CPU-time
    /// attribution and may overrun the batch's wall clock.
    fn record_batch_spans(
        &self,
        trace_id: u64,
        root: u64,
        timing: (Instant, Instant, Instant, u64),
        stage_pre: StageTotals,
        groups_pre: &[(u32, String, u64, u64, u64)],
    ) {
        const THREAD: &str = "srpq-engine";
        let (t_b0, t_b1, t_emit, emit_ns) = timing;
        let tb = self.obs.trace();
        let engine = self.host.registry();
        let stage_now = engine.stage_totals();
        let route_ns = stage_now.route_ns.saturating_sub(stage_pre.route_ns);
        let eval_ns = stage_now.eval_ns.saturating_sub(stage_pre.eval_ns);
        let batch_ns = t_b1.duration_since(t_b0).as_nanos() as u64;
        let mut cur = t_b0;
        if self.host.is_durable() {
            let wal_ns = batch_ns.saturating_sub(route_ns + eval_ns);
            let end = cur + Duration::from_nanos(wal_ns);
            tb.record(trace_id, root, "wal", cur, end, THREAD, "");
            cur = end;
        }
        let end = cur + Duration::from_nanos(route_ns);
        tb.record(trace_id, root, "route", cur, end, THREAD, "");
        cur = end;
        let mut expiry_total = 0u64;
        for (g, label, routed0, eval0, expiry0) in groups_pre {
            let Some(s) = engine.group_engine(*g).map(|e| e.stats()) else {
                continue;
            };
            let expiry_g = s.expiry_nanos.saturating_sub(*expiry0);
            expiry_total += expiry_g;
            let routed = s.tuples_routed.saturating_sub(*routed0);
            if routed == 0 {
                continue;
            }
            let extend_ns = s.eval_ns.saturating_sub(*eval0).saturating_sub(expiry_g);
            let end = cur + Duration::from_nanos(extend_ns);
            tb.record(
                trace_id,
                root,
                format!("extend:{label}"),
                cur,
                end,
                THREAD,
                format!("tuples={routed}"),
            );
            cur = end;
        }
        if expiry_total > 0 {
            let end = cur + Duration::from_nanos(expiry_total);
            tb.record(trace_id, root, "expiry", cur, end, THREAD, "");
        }
        let emit_end = t_emit + Duration::from_nanos(emit_ns);
        tb.record(trace_id, root, "emit", t_emit, emit_end, THREAD, "");
        // Keep the root open at least through the engine's hand-off;
        // a covering subscriber flush widens it to actual delivery.
        tb.root_candidate(trace_id, root, t_b0, emit_end, THREAD, "handed-off");
    }

    /// The `ctl explain` report: minimized-DFA shape, Δ-forest profile
    /// (an O(|Δ|) walk — never on the tuple path), routing fan-in,
    /// this query's shared-evaluation group (signature hash and
    /// co-subscribers riding the same Δ forest), and the group's share
    /// of evaluation time.
    fn explain(&self, name: &str) -> Msg {
        let engine = self.host.registry();
        let Some(id) = engine.query_id(name) else {
            return Msg::Error {
                msg: format!("no live query named {name:?}"),
            };
        };
        let e = engine.engine(id).expect("live id");
        let stats = *e.stats();
        let dfa = e.query().dfa();
        let profile = e.delta_profile();
        let gids = engine.group_ids();
        let labels = dfa
            .alphabet()
            .iter()
            .map(|&label| {
                // Fan-in counts evaluation *groups*: that is how many
                // shared forests a matching tuple is handed to.
                let sharing = gids
                    .iter()
                    .filter(|&&og| {
                        engine
                            .group_engine(og)
                            .is_some_and(|oe| oe.query().dfa().knows_label(label))
                    })
                    .count() as u32;
                LabelRoute {
                    name: self.labels.resolve(label).unwrap_or("?").to_string(),
                    transitions: dfa.transitions_for(label).len() as u32,
                    sharing_queries: sharing,
                }
            })
            .collect();
        let total_eval_ns = gids
            .iter()
            .filter_map(|&g| engine.group_engine(g))
            .map(|oe| oe.stats().eval_ns)
            .sum();
        let group = engine.group_of(id).expect("live id");
        let co_subscribers = engine
            .group_subscribers(group)
            .unwrap_or(&[])
            .iter()
            .filter(|&&slot| slot != id.0)
            .filter_map(|&slot| engine.name(QueryId(slot)).map(str::to_string))
            .collect();
        Msg::ExplainReport(ExplainWire {
            id: id.0,
            name: name.to_string(),
            regex: e.query().regex().to_string(),
            simple: e.semantics() == PathSemantics::Simple,
            dfa_states: dfa.n_states() as u32,
            dfa_start: dfa.start().0,
            dfa_accepting: dfa.accepting_states().map(|s| s.0).collect(),
            labels,
            delta_trees: profile.trees as u64,
            delta_nodes: profile.nodes as u64,
            delta_slots: profile.slots as u64,
            delta_arena_bytes: profile.arena_bytes as u64,
            compactions: stats.compactions,
            nodes_per_state: profile.nodes_per_state.clone(),
            depth_hist: profile.depth_histogram.clone(),
            tuples_routed: stats.tuples_routed,
            eval_ns: stats.eval_ns,
            expiry_ns: stats.expiry_nanos,
            total_eval_ns,
            results_emitted: stats.results_emitted,
            group,
            signature_hash: engine.group_signature_hash(group).unwrap_or(0),
            co_subscribers,
        })
    }

    fn persist_labels_if_grown(&mut self, before: usize) -> Result<(), String> {
        if self.labels.len() == before {
            return Ok(());
        }
        if let Some(dir) = &self.label_dir {
            labels::save(&self.labels, dir)
                .map_err(|e| format!("persisting the label table failed: {e}"))?;
        }
        Ok(())
    }
}

/// Renders one queue item (session-thread side re-export).
pub(crate) fn render_push(push: &Push) -> Option<Msg> {
    push_to_msg(push)
}
