//! The network serving layer: persistent RPQs as a long-running
//! process.
//!
//! The paper's setting is *persistent* queries over unbounded streams,
//! yet a batch CLI can only replay finite files. This crate turns the
//! engine stack into a service: a multi-threaded TCP server that owns a
//! (optionally durable) [`srpq_core::MultiQueryEngine`] and speaks a
//! length-prefixed binary protocol built from
//! [`srpq_common::frame`] frames over the 21-byte
//! [`srpq_common::wire`] tuple codec — an ingest payload is
//! bit-identical to a WAL record payload.
//!
//! # Session types
//!
//! A connection is a plain request/reply session until it subscribes:
//!
//! * **ingest** — [`protocol::Msg::MapLabels`] once, then
//!   [`protocol::Msg::Ingest`] batches. Each batch is acked at the
//!   WAL-durable sequence number: when the server runs with a WAL, the
//!   ack means the batch is logged (and fsynced per the server's
//!   [`srpq_persist::SyncPolicy`]) *and* evaluated.
//! * **control** — register ([`protocol::Msg::AddQuery`], optionally
//!   backfilled from the live window), deregister, list, checkpoint,
//!   drain, shutdown, stats.
//! * **subscriber** — [`protocol::Msg::Subscribe`] flips the session
//!   into a push stream of [`protocol::Msg::Results`] frames, filtered
//!   by query name (empty filter = everything, including queries
//!   registered later).
//!
//! # Pipeline, ordering, and backpressure
//!
//! Frame decoding runs in per-connection session threads; evaluation is
//! serialized through one bounded command channel into the engine
//! thread. Arrival order on that channel *is* the stream order — the
//! server's output is reproducible by an offline engine performing the
//! same operations in the same order, which the equivalence tests pin.
//! Backpressure composes from three bounds: the command channel (ingest
//! sessions block when evaluation falls behind), per-subscriber result
//! queues ([`protocol::SubPolicy::Block`] stalls the engine,
//! [`protocol::SubPolicy::DropNewest`] sheds load and reports the drop
//! tally), and TCP itself.
//!
//! Timestamps must be non-decreasing across the *merged* ingest
//! sessions for windowing to mean anything; the engines tolerate
//! out-of-order tuples (the clock never regresses), but slides fire on
//! the merged order the server observed.
//!
//! # Durability
//!
//! With a WAL directory the server wraps the engine in
//! [`srpq_persist::Durable`]: batches are logged before evaluation,
//! registrations are made durable by an immediate checkpoint, and the
//! label table is persisted next to the WAL ([`labels`]). Restarting
//! over the same directory recovers checkpoint + WAL suffix + label
//! table and continues at the acked sequence number — a late
//! [`protocol::Msg::HelloAck`] tells resuming ingest clients where to
//! pick up.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod core;
pub mod labels;
pub mod protocol;
mod server;
mod subscriber;

pub use server::{start, ServerConfig, ServerHandle};
