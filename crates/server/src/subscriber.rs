//! Subscriber registry, bounded result queues, and the fan-out sink.
//!
//! Every subscriber session owns one bounded queue of [`Push`] items.
//! The engine thread fans results out by query id: a [`FanoutSink`]
//! buffers entries per subscriber during a batch, then flushes them as
//! [`Push::Results`] frames. When a queue is full the subscriber's
//! [`SubPolicy`] decides:
//!
//! * [`SubPolicy::Block`] — the engine thread blocks until the
//!   subscriber drains. Lossless; the stall backpressures the whole
//!   ingest pipeline (acks are withheld), which in turn backpressures
//!   every ingest client through its bounded command channel and,
//!   transitively, TCP.
//! * [`SubPolicy::DropNewest`] — the frame's entries are counted and
//!   discarded; the tally is delivered as a [`Msg::Dropped`] message as
//!   soon as the queue has room again. Ingest never waits on a slow
//!   subscriber. The pending count lives in an [`AtomicU64`] shared
//!   with the session thread, which sweeps it once its queue closes and
//!   writes one final tally ahead of `ShuttingDown` — so losses reach
//!   the client even when the queue was wedged full to the very end.
//!
//! Flush fences ([`Push::Flush`]) are delivered with a *blocking* send
//! under both policies — they carry the determinism guarantee of
//! `Drain`, so they are never dropped.

use crate::protocol::{Msg, ResultEntry, SubPolicy};
use srpq_common::{FxHashSet, ResultPair, Timestamp};
use srpq_core::multi::{MultiSink, QueryId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Instant;

/// Result entries per [`Push::Results`] frame before an eager flush.
pub(crate) const RESULTS_PER_FRAME: usize = 256;

/// Default queue bound (frames) when the subscriber passes 0.
pub(crate) const DEFAULT_CAPACITY: usize = 64;

/// Sampling marks attached to one ingest batch at decode time, riding
/// every result frame the batch produces: the end-to-end latency
/// sampler's timestamp and/or the causal tracer's identifiers. The two
/// samplers are independent knobs over the same path; a batch can
/// carry either, both, or (the common case — then no stamp exists at
/// all) neither.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BatchStamp {
    /// Ingest-decode completion time.
    pub(crate) t0: Instant,
    /// The e2e latency sampler picked this batch: the pump thread
    /// records `now - t0` into the e2e histogram after the covering
    /// socket write.
    pub(crate) e2e: bool,
    /// The causal tracer picked this batch: `(trace_id,
    /// root_span_id)`; every stage the batch flows through records a
    /// child span under the root.
    pub(crate) trace: Option<(u64, u64)>,
}

/// One item in a subscriber queue.
pub(crate) enum Push {
    /// A batch of results to forward. `stamp` carries the sampling
    /// marks of the batch that produced these entries, when a sampler
    /// picked it — the pump thread observes it after the socket write.
    Results {
        entries: Vec<ResultEntry>,
        stamp: Option<BatchStamp>,
    },
    /// A drop tally to forward ([`Msg::Dropped`]).
    Dropped(u64),
    /// Flush the socket, then acknowledge — the `Drain` fence.
    Flush(SyncSender<()>),
}

/// Engine-side state of one attached subscriber.
pub(crate) struct Subscriber {
    /// Follow every query, including ones registered later.
    pub(crate) all: bool,
    /// The names this subscriber declared (a query registered — or
    /// re-registered — later under one of them is followed too).
    pub(crate) names: Vec<String>,
    /// Slot ids followed when not `all`.
    pub(crate) queries: FxHashSet<u32>,
    /// The bounded queue into the subscriber session thread.
    pub(crate) tx: SyncSender<Push>,
    pub(crate) policy: SubPolicy,
    /// Entries dropped since the last delivered tally. Shared with the
    /// session thread, which sweeps any remainder into a final
    /// [`Msg::Dropped`] when the queue closes; at any instant the count
    /// lives either here or in an enqueued tally, never both.
    pub(crate) dropped_pending: Arc<AtomicU64>,
    /// Per-batch staging buffer (flushed at `RESULTS_PER_FRAME` and at
    /// batch end).
    pub(crate) buf: Vec<ResultEntry>,
    /// The session is gone (queue disconnected); reaped after the batch.
    pub(crate) dead: bool,
}

impl Subscriber {
    pub(crate) fn new(
        names: Vec<String>,
        queries: FxHashSet<u32>,
        tx: SyncSender<Push>,
        policy: SubPolicy,
        dropped_pending: Arc<AtomicU64>,
    ) -> Subscriber {
        Subscriber {
            all: names.is_empty(),
            names,
            queries,
            tx,
            policy,
            dropped_pending,
            buf: Vec::new(),
            dead: false,
        }
    }

    fn matches(&self, query: u32) -> bool {
        self.all || self.queries.contains(&query)
    }

    /// Hands the staged buffer to the session thread under the
    /// subscriber's policy, crediting delivered entries to
    /// `pushed_total` and shed ones to `dropped_total` (an entry is
    /// never both).
    pub(crate) fn flush_buf(
        &mut self,
        pushed_total: &mut u64,
        dropped_total: &mut u64,
        stamp: Option<BatchStamp>,
    ) {
        if self.dead {
            self.buf.clear();
            return;
        }
        if !self.buf.is_empty() {
            let frame = std::mem::take(&mut self.buf);
            let n = frame.len() as u64;
            match self.policy {
                SubPolicy::Block => {
                    if self
                        .tx
                        .send(Push::Results {
                            entries: frame,
                            stamp,
                        })
                        .is_err()
                    {
                        self.dead = true;
                    } else {
                        *pushed_total += n;
                    }
                }
                SubPolicy::DropNewest => match self.tx.try_send(Push::Results {
                    entries: frame,
                    stamp,
                }) {
                    Ok(()) => *pushed_total += n,
                    Err(TrySendError::Full(_)) => {
                        self.dropped_pending.fetch_add(n, Ordering::Relaxed);
                        *dropped_total += n;
                    }
                    Err(TrySendError::Disconnected(_)) => self.dead = true,
                },
            }
        }
        // Deliver an outstanding drop tally opportunistically; if the
        // queue is still full, put the count back and keep accumulating
        // (the session thread sweeps any remainder when the queue
        // closes, so a wedged queue delays the tally but never eats it).
        if !self.dead {
            let pending = self.dropped_pending.swap(0, Ordering::Relaxed);
            if pending > 0 {
                match self.tx.try_send(Push::Dropped(pending)) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        self.dropped_pending.fetch_add(pending, Ordering::Relaxed);
                    }
                    Err(TrySendError::Disconnected(_)) => self.dead = true,
                }
            }
        }
    }

    /// Sends the drain fence and returns the ack receiver. Fences are
    /// never *dropped* — a full queue is retried — but a subscriber
    /// wedged longer than `timeout` (its client stopped reading and the
    /// kernel buffers are full) is skipped with `None` rather than
    /// deadlocking the control plane against the stalled socket.
    pub(crate) fn send_fence(
        &mut self,
        timeout: std::time::Duration,
    ) -> Option<mpsc::Receiver<()>> {
        if self.dead {
            return None;
        }
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        let mut fence = Push::Flush(ack_tx);
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self.tx.try_send(fence) {
                Ok(()) => return Some(ack_rx),
                Err(TrySendError::Disconnected(_)) => {
                    self.dead = true;
                    return None;
                }
                Err(TrySendError::Full(f)) => {
                    if std::time::Instant::now() >= deadline {
                        return None;
                    }
                    fence = f;
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
    }
}

/// A [`MultiSink`] fanning tagged results out to the matching
/// subscribers' staging buffers.
pub(crate) struct FanoutSink<'a> {
    pub(crate) subscribers: &'a mut Vec<Subscriber>,
    /// Running count of entries handed to session threads.
    pub(crate) pushed: &'a mut u64,
    /// Running count of entries lost to drop-policy queues.
    pub(crate) dropped: &'a mut u64,
    /// Sampling marks of the driving batch (e2e latency and/or causal
    /// trace), attached to every frame this sink flushes.
    pub(crate) stamp: Option<BatchStamp>,
}

impl FanoutSink<'_> {
    fn push(&mut self, entry: ResultEntry) {
        for sub in self.subscribers.iter_mut() {
            if sub.dead || !sub.matches(entry.query) {
                continue;
            }
            sub.buf.push(entry);
            if sub.buf.len() >= RESULTS_PER_FRAME {
                sub.flush_buf(self.pushed, self.dropped, self.stamp);
            }
        }
    }

    /// Flushes every staging buffer (end of batch) and reaps dead
    /// subscribers.
    pub(crate) fn finish(self) {
        for sub in self.subscribers.iter_mut() {
            sub.flush_buf(self.pushed, self.dropped, self.stamp);
        }
        self.subscribers.retain(|s| !s.dead);
    }
}

impl MultiSink for FanoutSink<'_> {
    fn emit(&mut self, id: QueryId, pair: ResultPair, ts: Timestamp) {
        self.push(ResultEntry {
            query: id.0,
            invalidated: false,
            src: pair.src.0,
            dst: pair.dst.0,
            ts: ts.0,
        });
    }

    fn invalidate(&mut self, id: QueryId, pair: ResultPair, ts: Timestamp) {
        self.push(ResultEntry {
            query: id.0,
            invalidated: true,
            src: pair.src.0,
            dst: pair.dst.0,
            ts: ts.0,
        });
    }
}

/// Renders one queue item as its wire message.
pub(crate) fn push_to_msg(push: &Push) -> Option<Msg> {
    match push {
        Push::Results { entries, .. } => Some(Msg::Results {
            entries: entries.clone(),
        }),
        Push::Dropped(count) => Some(Msg::Dropped { count: *count }),
        Push::Flush(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srpq_common::VertexId;

    fn entry(q: u32, n: i64) -> ResultEntry {
        ResultEntry {
            query: q,
            invalidated: false,
            src: n as u32,
            dst: n as u32 + 1,
            ts: n,
        }
    }

    #[test]
    fn block_policy_is_lossless() {
        let (tx, rx) = mpsc::sync_channel(2);
        let mut subs = vec![Subscriber::new(
            Vec::new(),
            FxHashSet::default(),
            tx,
            SubPolicy::Block,
            Arc::new(AtomicU64::new(0)),
        )];
        let mut pushed = 0;
        let mut dropped = 0;
        // Fill well past the queue bound; a consumer thread drains.
        let consumer = std::thread::spawn(move || {
            let mut got = 0usize;
            while let Ok(p) = rx.recv() {
                if let Push::Results { entries: v, .. } = p {
                    got += v.len();
                }
            }
            got
        });
        for round in 0..10 {
            let mut sink = FanoutSink {
                subscribers: &mut subs,
                pushed: &mut pushed,
                dropped: &mut dropped,
                stamp: None,
            };
            for i in 0..(RESULTS_PER_FRAME + 1) {
                sink.emit(
                    QueryId(0),
                    ResultPair::new(VertexId(i as u32), VertexId(round)),
                    Timestamp(i as i64),
                );
            }
            sink.finish();
        }
        drop(subs);
        let got = consumer.join().unwrap();
        assert_eq!(got as u64, pushed);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn drop_policy_counts_and_reports() {
        let (tx, rx) = mpsc::sync_channel(1);
        let pending = Arc::new(AtomicU64::new(0));
        let mut subs = vec![Subscriber::new(
            Vec::new(),
            FxHashSet::default(),
            tx,
            SubPolicy::DropNewest,
            Arc::clone(&pending),
        )];
        let mut pushed = 0;
        let mut dropped = 0;
        // Nobody drains: the first frame occupies the queue, later
        // frames drop and are tallied.
        for round in 0..3 {
            let mut sink = FanoutSink {
                subscribers: &mut subs,
                pushed: &mut pushed,
                dropped: &mut dropped,
                stamp: None,
            };
            sink.push(entry(0, round));
            sink.finish();
        }
        assert_eq!(dropped, 2);
        assert_eq!(pending.load(Ordering::Relaxed), 2);
        // Drain the queue: the next flush (even an empty one — no new
        // results required) delivers the tally.
        let Push::Results { entries: first, .. } = rx.recv().unwrap() else {
            panic!("expected results first");
        };
        assert_eq!(first.len(), 1);
        let sink = FanoutSink {
            subscribers: &mut subs,
            pushed: &mut pushed,
            dropped: &mut dropped,
            stamp: None,
        };
        sink.finish();
        let Push::Dropped(n) = rx.recv().unwrap() else {
            panic!("expected the drop tally");
        };
        assert_eq!(n, 2);
        assert_eq!(pending.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn wedged_queue_leaves_tally_for_session_sweep() {
        // A capacity-1 queue that nobody ever drains: every flush finds
        // it full, so the tally can never ride the queue. The shared
        // counter must still hold the full count for the session
        // thread's shutdown sweep — delivered or tallied, never lost.
        let (tx, rx) = mpsc::sync_channel(1);
        let pending = Arc::new(AtomicU64::new(0));
        let mut subs = vec![Subscriber::new(
            Vec::new(),
            FxHashSet::default(),
            tx,
            SubPolicy::DropNewest,
            Arc::clone(&pending),
        )];
        let mut pushed = 0;
        let mut dropped = 0;
        for round in 0..5 {
            let mut sink = FanoutSink {
                subscribers: &mut subs,
                pushed: &mut pushed,
                dropped: &mut dropped,
                stamp: None,
            };
            sink.push(entry(0, round));
            sink.finish();
        }
        assert_eq!(pushed, 1);
        assert_eq!(dropped, 4);
        assert_eq!(pending.load(Ordering::Relaxed), 4);
        // Engine shutdown drops the subscriber; the buffered frame
        // survives inside the channel, and the sweep (modelled here)
        // recovers the exact tally afterwards.
        drop(subs);
        let mut delivered = 0usize;
        while let Ok(p) = rx.recv() {
            if let Push::Results { entries, .. } = p {
                delivered += entries.len();
            }
        }
        let swept = pending.swap(0, Ordering::Relaxed);
        assert_eq!(delivered, 1);
        assert_eq!(swept, 4);
    }

    #[test]
    fn filters_and_reaps_disconnected() {
        let (tx, rx) = mpsc::sync_channel(4);
        let (tx2, rx2) = mpsc::sync_channel(4);
        let mut q0 = FxHashSet::default();
        q0.insert(0);
        let mut subs = vec![
            Subscriber::new(
                vec!["only-q0".into()],
                q0,
                tx,
                SubPolicy::Block,
                Arc::new(AtomicU64::new(0)),
            ),
            Subscriber::new(
                Vec::new(),
                FxHashSet::default(),
                tx2,
                SubPolicy::Block,
                Arc::new(AtomicU64::new(0)),
            ),
        ];
        let mut pushed = 0;
        let mut dropped = 0;
        let mut sink = FanoutSink {
            subscribers: &mut subs,
            pushed: &mut pushed,
            dropped: &mut dropped,
            stamp: None,
        };
        sink.push(entry(0, 1));
        sink.push(entry(1, 2));
        sink.finish();
        // Filtered subscriber only sees query 0; `all` sees both.
        let Push::Results { entries: a, .. } = rx.recv().unwrap() else {
            panic!()
        };
        assert_eq!(a.iter().map(|e| e.query).collect::<Vec<_>>(), vec![0]);
        let Push::Results { entries: b, .. } = rx2.recv().unwrap() else {
            panic!()
        };
        assert_eq!(b.iter().map(|e| e.query).collect::<Vec<_>>(), vec![0, 1]);
        // Disconnect the first subscriber: it is reaped on next flush.
        drop(rx);
        let mut sink = FanoutSink {
            subscribers: &mut subs,
            pushed: &mut pushed,
            dropped: &mut dropped,
            stamp: None,
        };
        sink.push(entry(0, 3));
        sink.finish();
        assert_eq!(subs.len(), 1);
        assert!(subs[0].all);
        drop(rx2);
    }
}
