//! The TCP front-end: listener, session threads, and [`ServerHandle`].
//!
//! One thread owns the engine ([`crate::core::EngineCore`]); one thread
//! accepts connections; each connection gets a session thread that
//! decodes frames, forwards commands through the bounded pipeline, and
//! writes replies. A session that issues `Subscribe` flips into push
//! mode: it stops reading requests and forwards its bounded result
//! queue to the socket until the client hangs up or the server shuts
//! down.

use crate::core::{render_push, Cmd, EngineCore, Host};
use crate::labels;
use crate::protocol::{Msg, SpanWire, PROTO_VERSION};
use crate::subscriber::{BatchStamp, Push, DEFAULT_CAPACITY};
use srpq_common::LabelInterner;
use srpq_core::multi::MultiQueryEngine;
use srpq_core::{EngineConfig, ParallelMultiEngine};
use srpq_obs::{Counter, EventKind, Histogram, MetricsServer, Obs};
use srpq_persist::{checkpoint, DurabilityConfig, Durable, RecoveryReport};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub listen: String,
    /// Per-query engine configuration shared by every registered query
    /// (window, refresh policy, budgets).
    pub engine: EngineConfig,
    /// Durability directory; `None` serves in-memory. A directory that
    /// already holds durable state is **recovered** (checkpoint + WAL
    /// suffix + label table), a fresh one is initialized.
    pub wal_dir: Option<PathBuf>,
    /// WAL/checkpoint tunables (used only with `wal_dir`).
    pub durability: DurabilityConfig,
    /// Bound of the command pipeline: how many decoded batches may wait
    /// for the engine before ingest sessions block.
    pub pipeline_depth: usize,
    /// Evaluation worker threads: `0` = the single-threaded
    /// [`MultiQueryEngine`]; `n ≥ 1` = a `ParallelMultiEngine` with `n`
    /// workers (inter-query parallel evaluation). Durable state is
    /// host-agnostic — the same `wal_dir` may restart under any value.
    pub workers: usize,
    /// Address for the plain-HTTP Prometheus `/metrics` listener;
    /// `None` disables it (`ctl metrics` still works over the frame
    /// protocol).
    pub metrics_addr: Option<String>,
    /// End-to-end latency sampling: stamp 1-in-N ingest frames at
    /// decode and observe the elapsed time when their results hit a
    /// subscriber socket. `1` stamps everything (the histogram `count`
    /// then equals delivered results); `0` disables stamping.
    pub e2e_sample: u32,
    /// Causal-trace sampling: record a full span tree (decode → WAL →
    /// route → per-query extend → expiry → emit → subscriber write) for
    /// 1-in-N ingest frames, exported via `ctl trace` and `/trace`.
    /// `0` (the default) disables tracing entirely.
    pub trace_sample: u32,
}

impl ServerConfig {
    /// An ephemeral localhost server over `engine` defaults.
    pub fn in_memory(engine: EngineConfig) -> ServerConfig {
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            engine,
            wal_dir: None,
            durability: DurabilityConfig::default(),
            pipeline_depth: 16,
            workers: 0,
            metrics_addr: None,
            e2e_sample: 1,
            trace_sample: 0,
        }
    }
}

/// Per-process observability context shared by every session thread.
struct SessionCtx {
    obs: Obs,
    e2e_sample: u32,
    trace_sample: u32,
    /// Ingest frames seen across all sessions (shared by both
    /// samplers, so their picks interleave deterministically).
    ingest_frames: AtomicU64,
    decode_hist: Histogram,
    write_hist: Histogram,
    e2e_hist: Histogram,
    sub_connects: Counter,
    sub_disconnects: Counter,
}

impl SessionCtx {
    fn new(obs: Obs, e2e_sample: u32, trace_sample: u32) -> SessionCtx {
        let r = obs.registry();
        SessionCtx {
            e2e_sample,
            trace_sample,
            ingest_frames: AtomicU64::new(0),
            decode_hist: r.histogram("srpq_stage_ingest_decode_ns", &[]),
            write_hist: r.histogram("srpq_stage_subscriber_write_ns", &[]),
            e2e_hist: r.histogram("srpq_e2e_latency_ns", &[]),
            sub_connects: r.counter("srpq_subscriber_connects_total", &[]),
            sub_disconnects: r.counter("srpq_subscriber_disconnects_total", &[]),
            obs,
        }
    }

    /// Independent 1-in-N sampling decisions (e2e latency, causal
    /// trace) for an ingest frame; `None` when neither sampler picked
    /// it — the hot-path common case costs one relaxed fetch-add.
    fn stamp(&self) -> Option<BatchStamp> {
        let n = self.ingest_frames.fetch_add(1, Ordering::Relaxed);
        let picked = |every: u32| every != 0 && n.is_multiple_of(u64::from(every));
        let e2e = picked(self.e2e_sample);
        let traced = picked(self.trace_sample);
        if !e2e && !traced {
            return None;
        }
        let trace = traced.then(|| {
            let tb = self.obs.trace();
            (tb.alloc_id(), tb.alloc_id())
        });
        Some(BatchStamp {
            t0: Instant::now(),
            e2e,
            trace,
        })
    }
}

/// A running server: the address it listens on plus the handles needed
/// to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    cmd_tx: SyncSender<Cmd>,
    stop: Arc<AtomicBool>,
    engine_thread: Option<JoinHandle<()>>,
    accept_thread: Option<JoinHandle<()>>,
    metrics: Option<MetricsServer>,
    obs: Obs,
    /// What recovery did, when the server came up from durable state.
    pub recovery: Option<RecoveryReport>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `/metrics` listener address, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(|m| m.local_addr())
    }

    /// The server's observability bundle (registry + event journal) —
    /// in-process introspection for tests and embedders.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Requests a graceful shutdown (drain → checkpoint → close) and
    /// waits for the server to exit. Idempotent with a client-issued
    /// `Shutdown` racing it.
    pub fn shutdown(mut self) {
        let (reply_tx, reply_rx) = mpsc::channel();
        if self.cmd_tx.send(Cmd::Shutdown { reply: reply_tx }).is_ok() {
            let _ = reply_rx.recv();
        }
        self.stop_accepting();
        if let Some(t) = self.engine_thread.take() {
            let _ = t.join();
        }
    }

    /// Waits until the server exits (a client sent `Shutdown`).
    pub fn join(mut self) {
        if let Some(t) = self.engine_thread.take() {
            let _ = t.join();
        }
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.obs.profiler().stop();
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// Builds the host (fresh or recovered) and starts the server.
pub fn start(config: ServerConfig) -> Result<ServerHandle, String> {
    let workers = config.workers;
    let obs = Obs::new();
    let (host, interner, seq, recovery) = match &config.wal_dir {
        None => {
            let host = if workers == 0 {
                Host::Plain(Box::new(MultiQueryEngine::with_config(config.engine)))
            } else {
                Host::Parallel(Box::new(ParallelMultiEngine::with_config(
                    config.engine,
                    workers,
                )))
            };
            (host, LabelInterner::new(), 0, None)
        }
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            let has_state = checkpoint::load_latest(dir)
                .map_err(|e| e.to_string())?
                .is_some();
            if has_state {
                let mut interner = labels::load(dir)?;
                // The two multi hosts share one checkpoint format, so
                // `--workers` may change freely across restarts.
                let (host, report) = if workers == 0 {
                    let (mut durable, report) =
                        Durable::<MultiQueryEngine>::recover(dir, &mut interner, config.durability)
                            .map_err(|e| e.to_string())?;
                    durable.set_obs(obs.clone());
                    (Host::Durable(Box::new(durable)), report)
                } else {
                    let (mut durable, report) = Durable::<ParallelMultiEngine>::recover(
                        dir,
                        &mut interner,
                        config.durability,
                    )
                    .map_err(|e| e.to_string())?;
                    durable.inner_mut().resize_workers(workers);
                    durable.set_obs(obs.clone());
                    (Host::DurableParallel(Box::new(durable)), report)
                };
                let seq = report.resume_seq;
                (host, interner, seq, Some(report))
            } else {
                let host = if workers == 0 {
                    let mut durable = Durable::create(
                        MultiQueryEngine::with_config(config.engine),
                        dir,
                        config.durability,
                    )
                    .map_err(|e| e.to_string())?;
                    durable.set_obs(obs.clone());
                    Host::Durable(Box::new(durable))
                } else {
                    let mut durable = Durable::create(
                        ParallelMultiEngine::with_config(config.engine, workers),
                        dir,
                        config.durability,
                    )
                    .map_err(|e| e.to_string())?;
                    durable.set_obs(obs.clone());
                    Host::DurableParallel(Box::new(durable))
                };
                (host, LabelInterner::new(), 0, None)
            }
        }
    };

    let listener =
        TcpListener::bind(&config.listen).map_err(|e| format!("bind {}: {e}", config.listen))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;

    let (cmd_tx, cmd_rx) = mpsc::sync_channel::<Cmd>(config.pipeline_depth.max(1));
    let core = EngineCore::new(host, interner, config.wal_dir.clone(), seq, obs.clone());
    let engine_thread = std::thread::Builder::new()
        .name("srpq-engine".into())
        .spawn(move || core.run(cmd_rx))
        .map_err(|e| e.to_string())?;

    let metrics = match &config.metrics_addr {
        Some(maddr) => Some(
            MetricsServer::start(maddr, obs.clone())
                .map_err(|e| format!("metrics listener {maddr}: {e}"))?,
        ),
        None => None,
    };

    // The stage sampler + stall watchdog: ~997 Hz over the beacons the
    // engine core registered above. Runs for the server's lifetime.
    obs.start_profiler();

    let ctx = Arc::new(SessionCtx::new(
        obs.clone(),
        config.e2e_sample,
        config.trace_sample,
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = stop.clone();
    let accept_tx = cmd_tx.clone();
    let accept_thread = std::thread::Builder::new()
        .name("srpq-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let tx = accept_tx.clone();
                let session_ctx = Arc::clone(&ctx);
                let _ = std::thread::Builder::new()
                    .name("srpq-session".into())
                    .spawn(move || {
                        let peer = stream
                            .peer_addr()
                            .map(|a| a.to_string())
                            .unwrap_or_else(|_| "?".into());
                        if let Err(e) = run_session(stream, tx, &session_ctx) {
                            // Client-side disconnects are routine; only
                            // protocol violations are worth a log line.
                            if e.kind() == std::io::ErrorKind::InvalidData {
                                eprintln!("srpq-server: session {peer}: {e}");
                            }
                        }
                    });
            }
        })
        .map_err(|e| e.to_string())?;

    Ok(ServerHandle {
        addr,
        cmd_tx,
        stop,
        engine_thread: Some(engine_thread),
        accept_thread: Some(accept_thread),
        metrics,
        obs,
        recovery,
    })
}

/// Sends one command and waits for the engine's reply. `None` means the
/// engine is gone (shutdown).
fn roundtrip(cmd_tx: &SyncSender<Cmd>, make: impl FnOnce(mpsc::Sender<Msg>) -> Cmd) -> Option<Msg> {
    let (reply_tx, reply_rx) = mpsc::channel();
    if cmd_tx.send(make(reply_tx)).is_err() {
        return None;
    }
    reply_rx.recv().ok()
}

/// One connection's request/reply loop.
fn run_session(
    stream: TcpStream,
    cmd_tx: SyncSender<Cmd>,
    ctx: &SessionCtx,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some((msg, decode_ns)) = Msg::read_from_timed(&mut reader)? {
        let reply = match msg {
            Msg::Hello { proto } => {
                if proto != PROTO_VERSION {
                    Some(Msg::Error {
                        msg: format!(
                            "protocol mismatch: client speaks v{proto}, server v{PROTO_VERSION}"
                        ),
                    })
                } else {
                    roundtrip(&cmd_tx, |reply| Cmd::Hello { reply })
                }
            }
            Msg::MapLabels { names } => roundtrip(&cmd_tx, |reply| Cmd::MapLabels { names, reply }),
            Msg::Ingest { tuples } => {
                ctx.decode_hist.record(decode_ns);
                let stamp = ctx.stamp();
                if let Some(BatchStamp {
                    t0,
                    trace: Some((trace_id, root)),
                    ..
                }) = stamp
                {
                    // Back-date the decode span over the just-measured
                    // decode time and open the root at its start; the
                    // engine and subscriber pumps widen it from here.
                    let start = t0
                        .checked_sub(Duration::from_nanos(decode_ns))
                        .unwrap_or(t0);
                    let tb = ctx.obs.trace();
                    tb.root_candidate(trace_id, root, start, t0, "srpq-session", "decoded");
                    tb.record(
                        trace_id,
                        root,
                        "decode",
                        start,
                        t0,
                        "srpq-session",
                        format!("tuples={}", tuples.len()),
                    );
                }
                let reply = roundtrip(&cmd_tx, |reply| Cmd::Ingest {
                    tuples,
                    stamp,
                    reply,
                });
                if let Some(BatchStamp {
                    t0,
                    trace: Some((trace_id, root)),
                    ..
                }) = stamp
                {
                    // Without subscribers no covering flush ever
                    // reports delivery; the ack still closes the root.
                    ctx.obs.trace().root_candidate(
                        trace_id,
                        root,
                        t0,
                        Instant::now(),
                        "srpq-session",
                        "acked",
                    );
                }
                reply
            }
            Msg::AddQuery {
                name,
                regex,
                simple,
                backfill,
            } => roundtrip(&cmd_tx, |reply| Cmd::AddQuery {
                name,
                regex,
                simple,
                backfill,
                reply,
            }),
            Msg::RemoveQuery { name } => {
                roundtrip(&cmd_tx, |reply| Cmd::RemoveQuery { name, reply })
            }
            Msg::ListQueries => roundtrip(&cmd_tx, |reply| Cmd::ListQueries { reply }),
            Msg::Drain => roundtrip(&cmd_tx, |reply| Cmd::Drain { reply }),
            Msg::Checkpoint => roundtrip(&cmd_tx, |reply| Cmd::Checkpoint { reply }),
            Msg::Stats => roundtrip(&cmd_tx, |reply| Cmd::Stats { reply }),
            Msg::Metrics => roundtrip(&cmd_tx, |reply| Cmd::Metrics { reply }),
            Msg::Events { since } => roundtrip(&cmd_tx, |reply| Cmd::Events { since, reply }),
            // The trace buffer is process-shared; answer without a
            // trip through the engine thread.
            Msg::Trace => Some(Msg::TraceList {
                spans: ctx
                    .obs
                    .trace()
                    .snapshot()
                    .into_iter()
                    .map(|s| SpanWire {
                        trace_id: s.trace_id,
                        span_id: s.span_id,
                        parent: s.parent,
                        name: s.name,
                        start_us: s.start_us,
                        dur_us: s.dur_us,
                        thread: s.thread,
                        detail: s.detail,
                    })
                    .collect(),
            }),
            Msg::Explain { name } => roundtrip(&cmd_tx, |reply| Cmd::Explain { name, reply }),
            Msg::Shutdown => roundtrip(&cmd_tx, |reply| Cmd::Shutdown { reply }),
            Msg::Subscribe {
                queries,
                policy,
                capacity,
            } => {
                let cap = if capacity == 0 {
                    DEFAULT_CAPACITY
                } else {
                    capacity as usize
                };
                let (push_tx, push_rx) = mpsc::sync_channel::<Push>(cap);
                let pending = Arc::new(AtomicU64::new(0));
                let ack = roundtrip(&cmd_tx, |reply| Cmd::Subscribe {
                    queries,
                    policy,
                    tx: push_tx,
                    pending: Arc::clone(&pending),
                    reply,
                });
                match ack {
                    Some(ack) => {
                        ack.write_to(&mut writer)?;
                        writer.flush()?;
                        ctx.sub_connects.inc();
                        // The session is a push stream from here on.
                        let peer = writer
                            .get_ref()
                            .peer_addr()
                            .map(|a| a.to_string())
                            .unwrap_or_else(|_| "?".into());
                        let result = pump_subscription(push_rx, writer, ctx, pending);
                        ctx.sub_disconnects.inc();
                        ctx.obs
                            .journal()
                            .record(EventKind::SubscriberDisconnect, format!("peer={peer}"));
                        return result;
                    }
                    None => Some(Msg::Error {
                        msg: "server is shutting down".into(),
                    }),
                }
            }
            // Server-to-client message kinds are not valid requests.
            other => Some(Msg::Error {
                msg: format!("unexpected message {other:?} on a request session"),
            }),
        };
        match reply {
            Some(reply) => {
                let shutting_down = matches!(reply, Msg::ShuttingDown);
                reply.write_to(&mut writer)?;
                writer.flush()?;
                if shutting_down {
                    break;
                }
            }
            None => {
                let _ = Msg::Error {
                    msg: "server is shutting down".into(),
                }
                .write_to(&mut writer);
                let _ = writer.flush();
                break;
            }
        }
    }
    Ok(())
}

/// Forwards the bounded queue to the socket until the engine closes the
/// queue (shutdown) or the socket dies (client gone — the engine
/// notices on its next send and reaps this subscriber).
///
/// `pending` is the drop-tally counter shared with the engine-side
/// [`Subscriber`](crate::subscriber::Subscriber). Once the queue closes
/// the engine can no longer touch it, so sweeping it here — after the
/// buffered frames have drained — delivers losses the engine could
/// never fit into a wedged queue, ahead of `ShuttingDown`.
fn pump_subscription(
    push_rx: Receiver<Push>,
    mut writer: BufWriter<TcpStream>,
    ctx: &SessionCtx,
    pending: Arc<AtomicU64>,
) -> std::io::Result<()> {
    // Sampled batches whose frames are written but not yet flushed;
    // observed once the covering flush makes them visible to the client.
    let mut stamped: Vec<(BatchStamp, u64)> = Vec::new();
    loop {
        let Ok(first) = push_rx.recv() else {
            // Engine dropped the queue: graceful end of stream. Any
            // drop tally that never fit into the queue goes out now.
            let swept = pending.swap(0, Ordering::Relaxed);
            if swept > 0 {
                let _ = (Msg::Dropped { count: swept }).write_to(&mut writer);
            }
            let _ = Msg::ShuttingDown.write_to(&mut writer);
            let _ = writer.flush();
            return Ok(());
        };
        // Drain everything already queued, then flush once — low-rate
        // streams see results promptly, high-rate streams amortize
        // syscalls over the backlog.
        let mut item = Some(first);
        while let Some(push) = item.take() {
            match push {
                Push::Flush(ack) => {
                    writer.flush()?;
                    observe_delivered(ctx, &mut stamped);
                    let _ = ack.send(());
                }
                other => {
                    if let Some(msg) = render_push(&other) {
                        let t0 = Instant::now();
                        msg.write_to(&mut writer)?;
                        let t1 = Instant::now();
                        ctx.write_hist
                            .record(t1.duration_since(t0).as_nanos() as u64);
                        if let Push::Results {
                            stamp: Some(st), ..
                        } = &other
                        {
                            if let Some((trace_id, root)) = st.trace {
                                ctx.obs.trace().record(
                                    trace_id,
                                    root,
                                    "write",
                                    t0,
                                    t1,
                                    "srpq-session",
                                    "",
                                );
                            }
                        }
                    }
                    if let Push::Results {
                        entries,
                        stamp: Some(st),
                    } = &other
                    {
                        stamped.push((*st, entries.len() as u64));
                    }
                }
            }
            item = push_rx.try_recv().ok();
        }
        writer.flush()?;
        observe_delivered(ctx, &mut stamped);
    }
}

/// Observes flushed sampled batches: end-to-end latency into the
/// histogram, delivery time into the trace root — both against the same
/// decode timestamp, so span durations reconcile with the histogram.
fn observe_delivered(ctx: &SessionCtx, stamped: &mut Vec<(BatchStamp, u64)>) {
    if stamped.is_empty() {
        return;
    }
    let now = Instant::now();
    for (st, n) in stamped.drain(..) {
        if st.e2e {
            ctx.e2e_hist
                .record_n(now.duration_since(st.t0).as_nanos() as u64, n);
        }
        if let Some((trace_id, root)) = st.trace {
            ctx.obs
                .trace()
                .root_candidate(trace_id, root, st.t0, now, "srpq-session", "delivered");
        }
    }
}
