//! Property-based tests for the automata pipeline: random regexes,
//! display/parse round-trips, NFA↔DFA↔minimal-DFA equivalence, and
//! containment-table laws.

use proptest::prelude::*;
use srpq_automata::minimize::minimize;
use srpq_automata::{parse, ContainmentTable, Dfa, Regex};
use srpq_automata::nfa::Nfa;
use srpq_common::{Label, LabelInterner, StateId};

/// A random regex over labels {a, b, c} with bounded size.
fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Regex::label),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| x.then(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.or(y)),
            inner.clone().prop_map(Regex::star),
            inner.clone().prop_map(Regex::plus),
            inner.prop_map(Regex::optional),
        ]
    })
}

fn compile(regex: &Regex) -> (Nfa, Dfa, Dfa, LabelInterner) {
    let mut labels = LabelInterner::new();
    let nfa = Nfa::build(regex, &mut labels);
    let alphabet: Vec<Label> = regex
        .alphabet()
        .into_iter()
        .map(|n| labels.get(n).expect("interned"))
        .collect();
    let dfa = Dfa::from_nfa(&nfa, &alphabet);
    let min = minimize(&dfa);
    (nfa, dfa, min, labels)
}

fn all_words(alphabet: &[Label], max_len: usize) -> Vec<Vec<Label>> {
    let mut words: Vec<Vec<Label>> = vec![vec![]];
    let mut frontier: Vec<Vec<Label>> = vec![vec![]];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for w in &frontier {
            for &a in alphabet {
                let mut w2 = w.clone();
                w2.push(a);
                next.push(w2);
            }
        }
        words.extend(next.iter().cloned());
        frontier = next;
    }
    words
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Display output re-parses to the same AST.
    #[test]
    fn display_parse_round_trip(regex in regex_strategy()) {
        let printed = regex.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("{printed:?}: {e}"));
        prop_assert_eq!(regex, reparsed);
    }

    /// NFA, raw DFA, and minimal DFA accept exactly the same words
    /// (up to length 5 over the query alphabet).
    #[test]
    fn nfa_dfa_minimal_equivalence(regex in regex_strategy()) {
        let (nfa, dfa, min, labels) = compile(&regex);
        let alphabet: Vec<Label> = regex
            .alphabet()
            .into_iter()
            .map(|n| labels.get(n).unwrap())
            .collect();
        if alphabet.len() > 2 {
            // Keep the word universe small.
            return Ok(());
        }
        for word in all_words(&alphabet, 5) {
            let n = nfa.accepts(&word);
            prop_assert_eq!(n, dfa.accepts(&word), "raw DFA diverges on {:?}", word);
            prop_assert_eq!(n, min.accepts(&word), "minimal DFA diverges on {:?}", word);
        }
    }

    /// Minimization never increases the state count and is idempotent.
    #[test]
    fn minimization_shrinks_and_is_idempotent(regex in regex_strategy()) {
        let (_, dfa, min, _) = compile(&regex);
        prop_assert!(min.n_states() <= dfa.n_states().max(1));
        let again = minimize(&min);
        prop_assert_eq!(again.n_states(), min.n_states());
    }

    /// Containment is reflexive and transitive on every compiled DFA.
    #[test]
    fn containment_is_a_preorder(regex in regex_strategy()) {
        let (_, _, min, _) = compile(&regex);
        let table = ContainmentTable::build(&min);
        let k = min.n_states();
        for s in 0..k {
            prop_assert!(table.contains(StateId(s as u32), StateId(s as u32)));
        }
        for s in 0..k {
            for t in 0..k {
                for u in 0..k {
                    let (s, t, u) =
                        (StateId(s as u32), StateId(t as u32), StateId(u as u32));
                    if table.contains(s, t) && table.contains(t, u) {
                        prop_assert!(table.contains(s, u));
                    }
                }
            }
        }
    }

    /// `accepts_empty` agrees with running the empty word.
    #[test]
    fn epsilon_agreement(regex in regex_strategy()) {
        let (nfa, _, min, _) = compile(&regex);
        prop_assert_eq!(min.accepts_empty(), nfa.accepts(&[]));
    }

    /// Every state of a minimized DFA (except possibly the start) is
    /// useful: reachable and co-reachable.
    #[test]
    fn minimized_dfa_is_trim(regex in regex_strategy()) {
        let (_, _, min, _) = compile(&regex);
        let n = min.n_states();
        // Reachability from start.
        let mut reach = vec![false; n];
        let mut stack = vec![min.start()];
        reach[min.start().index()] = true;
        while let Some(s) = stack.pop() {
            for &l in min.alphabet() {
                if let Some(t) = min.next(s, l) {
                    if !reach[t.index()] {
                        reach[t.index()] = true;
                        stack.push(t);
                    }
                }
            }
        }
        for (i, &r) in reach.iter().enumerate() {
            prop_assert!(r, "state s{i} unreachable");
        }
        // Co-reachability.
        for s in 0..n {
            let s = StateId(s as u32);
            if s == min.start() {
                continue;
            }
            let mut seen = vec![false; n];
            let mut stack = vec![s];
            seen[s.index()] = true;
            let mut ok = min.is_accepting(s);
            while let Some(q) = stack.pop() {
                for &l in min.alphabet() {
                    if let Some(t) = min.next(q, l) {
                        if !seen[t.index()] {
                            seen[t.index()] = true;
                            ok = ok || min.is_accepting(t);
                            stack.push(t);
                        }
                    }
                }
            }
            prop_assert!(ok, "state {s} is dead");
        }
    }
}
