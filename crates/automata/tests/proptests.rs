//! Randomized property tests for the automata pipeline: random regexes,
//! display/parse round-trips, NFA↔DFA↔minimal-DFA equivalence, and
//! containment-table laws. Seeded and deterministic (no external
//! property-testing framework): each property runs over a fixed sweep
//! of seeds, and failures print the offending regex for replay.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srpq_automata::minimize::minimize;
use srpq_automata::nfa::Nfa;
use srpq_automata::{parse, ContainmentTable, Dfa, Regex};
use srpq_common::{Label, LabelInterner, StateId};

const CASES: u64 = 128;

/// A random regex over labels {a, b, c} with bounded depth/size.
fn random_regex(rng: &mut SmallRng, depth: usize) -> Regex {
    if depth == 0 || rng.gen_bool(0.3) {
        // Leaf: a label most of the time, occasionally ε.
        return if rng.gen_bool(0.15) {
            Regex::Epsilon
        } else {
            Regex::label(["a", "b", "c"][rng.gen_range(0..3usize)])
        };
    }
    match rng.gen_range(0..5u32) {
        0 => random_regex(rng, depth - 1).then(random_regex(rng, depth - 1)),
        1 => random_regex(rng, depth - 1).or(random_regex(rng, depth - 1)),
        2 => random_regex(rng, depth - 1).star(),
        3 => random_regex(rng, depth - 1).plus(),
        _ => random_regex(rng, depth - 1).optional(),
    }
}

fn for_each_case(mut check: impl FnMut(&Regex)) {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let regex = random_regex(&mut rng, 4);
        check(&regex);
    }
}

fn compile(regex: &Regex) -> (Nfa, Dfa, Dfa, LabelInterner) {
    let mut labels = LabelInterner::new();
    let nfa = Nfa::build(regex, &mut labels);
    let alphabet: Vec<Label> = regex
        .alphabet()
        .into_iter()
        .map(|n| labels.get(n).expect("interned"))
        .collect();
    let dfa = Dfa::from_nfa(&nfa, &alphabet);
    let min = minimize(&dfa);
    (nfa, dfa, min, labels)
}

fn all_words(alphabet: &[Label], max_len: usize) -> Vec<Vec<Label>> {
    let mut words: Vec<Vec<Label>> = vec![vec![]];
    let mut frontier: Vec<Vec<Label>> = vec![vec![]];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for w in &frontier {
            for &a in alphabet {
                let mut w2 = w.clone();
                w2.push(a);
                next.push(w2);
            }
        }
        words.extend(next.iter().cloned());
        frontier = next;
    }
    words
}

/// Display output re-parses to the same AST.
#[test]
fn display_parse_round_trip() {
    for_each_case(|regex| {
        let printed = regex.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{printed:?}: {e}"));
        assert_eq!(regex, &reparsed, "{printed:?} re-parsed differently");
    });
}

/// NFA, raw DFA, and minimal DFA accept exactly the same words
/// (up to length 5 over the query alphabet).
#[test]
fn nfa_dfa_minimal_equivalence() {
    for_each_case(|regex| {
        let (nfa, dfa, min, labels) = compile(regex);
        let alphabet: Vec<Label> = regex
            .alphabet()
            .into_iter()
            .map(|n| labels.get(n).unwrap())
            .collect();
        if alphabet.len() > 2 {
            // Keep the word universe small.
            return;
        }
        for word in all_words(&alphabet, 5) {
            let n = nfa.accepts(&word);
            assert_eq!(
                n,
                dfa.accepts(&word),
                "{regex}: raw DFA diverges on {word:?}"
            );
            assert_eq!(
                n,
                min.accepts(&word),
                "{regex}: minimal DFA diverges on {word:?}"
            );
        }
    });
}

/// Minimization never increases the state count and is idempotent.
#[test]
fn minimization_shrinks_and_is_idempotent() {
    for_each_case(|regex| {
        let (_, dfa, min, _) = compile(regex);
        assert!(min.n_states() <= dfa.n_states().max(1), "{regex} grew");
        let again = minimize(&min);
        assert_eq!(again.n_states(), min.n_states(), "{regex} not idempotent");
    });
}

/// Containment is reflexive and transitive on every compiled DFA.
#[test]
fn containment_is_a_preorder() {
    for_each_case(|regex| {
        let (_, _, min, _) = compile(regex);
        let table = ContainmentTable::build(&min);
        let k = min.n_states();
        for s in 0..k {
            assert!(
                table.contains(StateId(s as u32), StateId(s as u32)),
                "{regex}: containment not reflexive at s{s}"
            );
        }
        for s in 0..k {
            for t in 0..k {
                for u in 0..k {
                    let (s, t, u) = (StateId(s as u32), StateId(t as u32), StateId(u as u32));
                    if table.contains(s, t) && table.contains(t, u) {
                        assert!(
                            table.contains(s, u),
                            "{regex}: containment not transitive at {s},{t},{u}"
                        );
                    }
                }
            }
        }
    });
}

/// `accepts_empty` agrees with running the empty word.
#[test]
fn epsilon_agreement() {
    for_each_case(|regex| {
        let (nfa, _, min, _) = compile(regex);
        assert_eq!(min.accepts_empty(), nfa.accepts(&[]), "{regex}");
    });
}

/// Every state of a minimized DFA (except possibly the start) is
/// useful: reachable and co-reachable.
#[test]
fn minimized_dfa_is_trim() {
    for_each_case(|regex| {
        let min = compile(regex).2;
        let n = min.n_states();
        // Reachability from start.
        let mut reach = vec![false; n];
        let mut stack = vec![min.start()];
        reach[min.start().index()] = true;
        while let Some(s) = stack.pop() {
            for &l in min.alphabet() {
                if let Some(t) = min.next(s, l) {
                    if !reach[t.index()] {
                        reach[t.index()] = true;
                        stack.push(t);
                    }
                }
            }
        }
        for (i, &r) in reach.iter().enumerate() {
            assert!(r, "{regex}: state s{i} unreachable");
        }
        // Co-reachability.
        for s in 0..n {
            let s = StateId(s as u32);
            if s == min.start() {
                continue;
            }
            let mut seen = vec![false; n];
            let mut stack = vec![s];
            seen[s.index()] = true;
            let mut ok = min.is_accepting(s);
            while let Some(q) = stack.pop() {
                for &l in min.alphabet() {
                    if let Some(t) = min.next(q, l) {
                        if !seen[t.index()] {
                            seen[t.index()] = true;
                            ok = ok || min.is_accepting(t);
                            stack.push(t);
                        }
                    }
                }
            }
            assert!(ok, "{regex}: state {s} is dead");
        }
    });
}
