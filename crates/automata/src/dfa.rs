//! Deterministic finite automata (Definition 10).
//!
//! The DFA is *partial*: missing transitions mean "this word cannot be a
//! prefix of any word in L(R)", which is exactly what the streaming
//! algorithms want — a tuple whose label has no outgoing transition from
//! any live state is discarded immediately.
//!
//! The layout is optimized for the two access patterns of Algorithms
//! RAPQ/RSPQ:
//!
//! * `transitions_for(label)` — "for each `s, t ∈ S` where `t = δ(s, l)`"
//!   (line 5 of both algorithms): a precomputed `(from, to)` pair list per
//!   label;
//! * `next(state, label)` — single δ lookup during tree expansion: a dense
//!   row-major table indexed by `(state, label column)`.

use srpq_common::{FxHashMap, Label, StateId};

use crate::nfa::Nfa;

/// A deterministic finite automaton over a (small) label alphabet.
#[derive(Debug, Clone)]
pub struct Dfa {
    start: StateId,
    accepting: Vec<bool>,
    /// Sorted, distinct query alphabet.
    alphabet: Vec<Label>,
    /// Global label → column in `table`.
    label_pos: FxHashMap<Label, u32>,
    /// Row-major `n_states × alphabet.len()` transition table.
    table: Vec<Option<StateId>>,
    /// Per-column `(from, to)` transition pairs.
    by_label: Vec<Vec<(StateId, StateId)>>,
    /// Per-state outgoing `(label, to)` transitions — drives the
    /// label-partitioned forward expansion of the streaming engines.
    from_state: Vec<Vec<(Label, StateId)>>,
    /// Per-state incoming `(from, label)` transitions — drives the
    /// label-partitioned reconnection scans of the expiry algorithms.
    into_state: Vec<Vec<(StateId, Label)>>,
}

impl Dfa {
    /// Builds a DFA from raw parts. `transitions` maps
    /// `(state, label) → state`. Panics if a state index is out of range.
    pub fn from_parts(
        n_states: usize,
        start: StateId,
        accepting_states: &[StateId],
        alphabet: &[Label],
        transitions: &[(StateId, Label, StateId)],
    ) -> Dfa {
        let mut alphabet: Vec<Label> = alphabet.to_vec();
        alphabet.sort_unstable();
        alphabet.dedup();
        let label_pos: FxHashMap<Label, u32> = alphabet
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i as u32))
            .collect();
        let mut accepting = vec![false; n_states];
        for &s in accepting_states {
            accepting[s.index()] = true;
        }
        let mut table = vec![None; n_states * alphabet.len()];
        let mut by_label = vec![Vec::new(); alphabet.len()];
        let mut from_state = vec![Vec::new(); n_states];
        let mut into_state = vec![Vec::new(); n_states];
        for &(from, label, to) in transitions {
            assert!(from.index() < n_states && to.index() < n_states);
            let col = label_pos[&label] as usize;
            let slot = &mut table[from.index() * alphabet.len() + col];
            assert!(
                slot.is_none() || *slot == Some(to),
                "nondeterministic transition ({from}, {label})"
            );
            if slot.is_none() {
                *slot = Some(to);
                by_label[col].push((from, to));
                from_state[from.index()].push((label, to));
                into_state[to.index()].push((from, label));
            }
        }
        for pairs in &mut by_label {
            pairs.sort_unstable();
        }
        for pairs in &mut from_state {
            pairs.sort_unstable();
        }
        for pairs in &mut into_state {
            pairs.sort_unstable();
        }
        Dfa {
            start,
            accepting,
            alphabet,
            label_pos,
            table,
            by_label,
            from_state,
            into_state,
        }
    }

    /// Subset construction: determinizes `nfa` over `alphabet`.
    pub fn from_nfa(nfa: &Nfa, alphabet: &[Label]) -> Dfa {
        let mut alphabet: Vec<Label> = alphabet.to_vec();
        alphabet.sort_unstable();
        alphabet.dedup();

        let start_set = nfa.epsilon_closure(&[nfa.start()]);
        let mut subset_ids: FxHashMap<Vec<usize>, u32> = FxHashMap::default();
        subset_ids.insert(start_set.clone(), 0);
        let mut subsets = vec![start_set];
        let mut transitions: Vec<(StateId, Label, StateId)> = Vec::new();
        let mut work = vec![0u32];

        while let Some(id) = work.pop() {
            let current = subsets[id as usize].clone();
            for &l in &alphabet {
                let moved = nfa.step(&current, l);
                if moved.is_empty() {
                    continue;
                }
                let closed = nfa.epsilon_closure(&moved);
                let next_id = *subset_ids.entry(closed.clone()).or_insert_with(|| {
                    let nid = subsets.len() as u32;
                    subsets.push(closed);
                    work.push(nid);
                    nid
                });
                transitions.push((StateId(id), l, StateId(next_id)));
            }
        }

        let accepting: Vec<StateId> = subsets
            .iter()
            .enumerate()
            .filter(|(_, set)| set.contains(&nfa.accept()))
            .map(|(i, _)| StateId(i as u32))
            .collect();

        Dfa::from_parts(
            subsets.len(),
            StateId(0),
            &accepting,
            &alphabet,
            &transitions,
        )
    }

    /// Completes (adds an explicit sink) and complements this DFA over
    /// `alphabet`: the result accepts exactly the words over `alphabet`
    /// this DFA rejects.
    pub fn complement(&self, alphabet: &[Label]) -> Dfa {
        let mut alphabet: Vec<Label> = alphabet.to_vec();
        alphabet.sort_unstable();
        alphabet.dedup();

        let n = self.n_states();
        let sink = StateId(n as u32);
        let mut transitions: Vec<(StateId, Label, StateId)> = Vec::new();
        let mut used_sink = false;
        for s in 0..n {
            let s = StateId(s as u32);
            for &l in &alphabet {
                match self.next(s, l) {
                    Some(t) => transitions.push((s, l, t)),
                    None => {
                        transitions.push((s, l, sink));
                        used_sink = true;
                    }
                }
            }
        }
        let total = if used_sink { n + 1 } else { n };
        if used_sink {
            for &l in &alphabet {
                transitions.push((sink, l, sink));
            }
        }
        let accepting: Vec<StateId> = (0..total)
            .map(|i| StateId(i as u32))
            .filter(|&s| s.index() >= n || !self.accepting[s.index()])
            .collect();
        Dfa::from_parts(total, self.start, &accepting, &alphabet, &transitions)
    }

    /// Number of states `k`.
    pub fn n_states(&self) -> usize {
        self.accepting.len()
    }

    /// The start state `s0`.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether `s` is a final state (`s ∈ F`).
    #[inline]
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.accepting[s.index()]
    }

    /// Whether `ε ∈ L(R)` (the start state is final).
    pub fn accepts_empty(&self) -> bool {
        self.is_accepting(self.start)
    }

    /// The query alphabet Σ_Q (sorted).
    pub fn alphabet(&self) -> &[Label] {
        &self.alphabet
    }

    /// Whether `label` occurs in the query alphabet. Tuples with labels
    /// outside Σ_Q are discarded before touching the index (§5.2).
    #[inline]
    pub fn knows_label(&self, label: Label) -> bool {
        self.label_pos.contains_key(&label)
    }

    /// δ(s, label), if defined.
    #[inline]
    pub fn next(&self, s: StateId, label: Label) -> Option<StateId> {
        let col = *self.label_pos.get(&label)? as usize;
        self.table[s.index() * self.alphabet.len() + col]
    }

    /// All `(s, t)` with `t = δ(s, label)` — the per-tuple iteration of
    /// Algorithms RAPQ/RSPQ. Empty if the label is outside Σ_Q.
    #[inline]
    pub fn transitions_for(&self, label: Label) -> &[(StateId, StateId)] {
        match self.label_pos.get(&label) {
            Some(&col) => &self.by_label[col as usize],
            None => &[],
        }
    }

    /// All `(label, t)` with `t = δ(s, label)`: the outgoing transitions
    /// of `s`. Paired with the label-partitioned adjacency this lets
    /// tree expansion visit exactly the matching window edges.
    #[inline]
    pub fn transitions_from(&self, s: StateId) -> &[(Label, StateId)] {
        &self.from_state[s.index()]
    }

    /// All `(s, label)` with `δ(s, label) = t`: the incoming transitions
    /// of `t`. Drives the reconnection scans of `ExpiryRAPQ`/`ExpiryRSPQ`
    /// over only the in-edges whose label can actually reach `t`.
    #[inline]
    pub fn transitions_into(&self, t: StateId) -> &[(StateId, Label)] {
        &self.into_state[t.index()]
    }

    /// Iterates all transitions `(from, label, to)`.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Label, StateId)> + '_ {
        self.alphabet
            .iter()
            .enumerate()
            .flat_map(move |(col, &l)| self.by_label[col].iter().map(move |&(s, t)| (s, l, t)))
    }

    /// Extended transition function δ*(start, word).
    pub fn run(&self, word: &[Label]) -> Option<StateId> {
        let mut s = self.start;
        for &l in word {
            s = self.next(s, l)?;
        }
        Some(s)
    }

    /// Whether the DFA accepts `word`.
    pub fn accepts(&self, word: &[Label]) -> bool {
        self.run(word)
            .map(|s| self.is_accepting(s))
            .unwrap_or(false)
    }

    /// Final states.
    pub fn accepting_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.accepting
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| StateId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use srpq_common::LabelInterner;

    fn dfa_for(s: &str) -> (Dfa, LabelInterner) {
        let mut labels = LabelInterner::new();
        let regex = parse(s).unwrap();
        let nfa = Nfa::build(&regex, &mut labels);
        let alphabet: Vec<Label> = regex
            .alphabet()
            .into_iter()
            .map(|n| labels.get(n).unwrap())
            .collect();
        (Dfa::from_nfa(&nfa, &alphabet), labels)
    }

    fn w(l: &LabelInterner, names: &[&str]) -> Vec<Label> {
        names.iter().map(|n| l.get(n).unwrap()).collect()
    }

    #[test]
    fn determinization_matches_nfa_semantics() {
        let (dfa, l) = dfa_for("(a b)+");
        assert!(!dfa.accepts(&[]));
        assert!(dfa.accepts(&w(&l, &["a", "b"])));
        assert!(dfa.accepts(&w(&l, &["a", "b", "a", "b"])));
        assert!(!dfa.accepts(&w(&l, &["a"])));
        assert!(!dfa.accepts(&w(&l, &["b", "a"])));
    }

    #[test]
    fn partiality_discards_unknown_labels() {
        let (dfa, _) = dfa_for("a b*");
        let foreign = Label(999);
        assert!(!dfa.knows_label(foreign));
        assert!(dfa.transitions_for(foreign).is_empty());
        assert!(dfa.next(dfa.start(), foreign).is_none());
    }

    #[test]
    fn transitions_for_lists_all_pairs() {
        let (dfa, l) = dfa_for("a* b a");
        let a = l.get("a").unwrap();
        // Every pair must agree with δ.
        for &(s, t) in dfa.transitions_for(a) {
            assert_eq!(dfa.next(s, a), Some(t));
        }
        // And every δ entry must be listed.
        let listed = dfa.transitions_for(a).len();
        let mut counted = 0;
        for s in 0..dfa.n_states() {
            if dfa.next(StateId(s as u32), a).is_some() {
                counted += 1;
            }
        }
        assert_eq!(listed, counted);
    }

    #[test]
    fn complement_flips_membership() {
        let (dfa, l) = dfa_for("a b");
        let comp = dfa.complement(dfa.alphabet());
        for word in [
            vec![],
            w(&l, &["a"]),
            w(&l, &["a", "b"]),
            w(&l, &["b", "a"]),
            w(&l, &["a", "b", "a"]),
        ] {
            assert_ne!(dfa.accepts(&word), comp.accepts(&word), "word {word:?}");
        }
    }

    #[test]
    fn accepts_empty_detection() {
        assert!(dfa_for("a*").0.accepts_empty());
        assert!(dfa_for("a?").0.accepts_empty());
        assert!(!dfa_for("a").0.accepts_empty());
        assert!(!dfa_for("a+").0.accepts_empty());
    }

    #[test]
    fn run_returns_intermediate_states() {
        let (dfa, l) = dfa_for("a b c");
        let s1 = dfa.run(&w(&l, &["a"])).unwrap();
        assert!(!dfa.is_accepting(s1));
        let s3 = dfa.run(&w(&l, &["a", "b", "c"])).unwrap();
        assert!(dfa.is_accepting(s3));
        assert!(dfa.run(&w(&l, &["b"])).is_none());
    }

    #[test]
    fn from_parts_rejects_nondeterminism() {
        let r = std::panic::catch_unwind(|| {
            Dfa::from_parts(
                2,
                StateId(0),
                &[StateId(1)],
                &[Label(0)],
                &[
                    (StateId(0), Label(0), StateId(0)),
                    (StateId(0), Label(0), StateId(1)),
                ],
            )
        });
        assert!(r.is_err());
    }

    #[test]
    fn per_state_transition_lists_agree_with_delta() {
        let (dfa, _) = dfa_for("(a | b)* c (a b)+");
        let mut n_from = 0;
        for s in 0..dfa.n_states() {
            let s = StateId(s as u32);
            for &(l, t) in dfa.transitions_from(s) {
                assert_eq!(dfa.next(s, l), Some(t));
                assert!(dfa.transitions_into(t).contains(&(s, l)));
                n_from += 1;
            }
        }
        let n_into: usize = (0..dfa.n_states())
            .map(|t| dfa.transitions_into(StateId(t as u32)).len())
            .sum();
        assert_eq!(n_from, n_into);
        assert_eq!(n_from, dfa.transitions().count());
    }

    #[test]
    fn transitions_iterator_is_consistent() {
        let (dfa, _) = dfa_for("(a | b)* c");
        let count = dfa.transitions().count();
        let by_label: usize = dfa
            .alphabet()
            .iter()
            .map(|&l| dfa.transitions_for(l).len())
            .sum();
        assert_eq!(count, by_label);
        for (s, l, t) in dfa.transitions() {
            assert_eq!(dfa.next(s, l), Some(t));
        }
    }
}
