//! Thompson's construction (§2, ref. 65 of the paper).
//!
//! Builds a nondeterministic finite automaton with ε-transitions from a
//! [`Regex`]. Each construction step introduces at most two states, so the
//! NFA has O(|R|) states. Negation (`¬R`) is handled by determinizing the
//! sub-NFA over the *query alphabet* and embedding the complemented DFA as
//! a fragment.

use crate::ast::Regex;
use crate::dfa::Dfa;
use srpq_common::{Label, LabelInterner};

/// An NFA with ε-transitions and a single accept state (Thompson normal
/// form).
#[derive(Debug, Clone)]
pub struct Nfa {
    /// `trans[s]` lists `(label-or-ε, target)` transitions out of `s`.
    trans: Vec<Vec<(Option<Label>, usize)>>,
    start: usize,
    accept: usize,
}

impl Nfa {
    /// Builds the Thompson NFA for `regex`, interning label names through
    /// `labels`.
    pub fn build(regex: &Regex, labels: &mut LabelInterner) -> Nfa {
        // Intern the full query alphabet upfront: negation complements
        // with respect to it.
        let alphabet: Vec<Label> = regex
            .alphabet()
            .into_iter()
            .map(|name| labels.intern(name))
            .collect();
        let mut b = Builder {
            trans: Vec::new(),
            alphabet,
        };
        let frag = b.compile(regex, labels);
        Nfa {
            trans: b.trans,
            start: frag.start,
            accept: frag.accept,
        }
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.trans.len()
    }

    /// The start state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// The (unique) accept state.
    pub fn accept(&self) -> usize {
        self.accept
    }

    /// Transitions out of `s`.
    pub fn transitions(&self, s: usize) -> &[(Option<Label>, usize)] {
        &self.trans[s]
    }

    /// ε-closure of a set of states (sorted, deduplicated).
    pub fn epsilon_closure(&self, states: &[usize]) -> Vec<usize> {
        let mut seen = vec![false; self.trans.len()];
        let mut stack: Vec<usize> = Vec::with_capacity(states.len());
        for &s in states {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
        let mut out = stack.clone();
        while let Some(s) = stack.pop() {
            for &(label, t) in &self.trans[s] {
                if label.is_none() && !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// States reachable from set `from` on `label` (before ε-closure).
    pub fn step(&self, from: &[usize], label: Label) -> Vec<usize> {
        let mut out = Vec::new();
        for &s in from {
            for &(l, t) in &self.trans[s] {
                if l == Some(label) {
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether the NFA accepts `word` (test helper; the streaming engine
    /// always goes through the DFA).
    pub fn accepts(&self, word: &[Label]) -> bool {
        let mut current = self.epsilon_closure(&[self.start]);
        for &l in word {
            let next = self.step(&current, l);
            current = self.epsilon_closure(&next);
            if current.is_empty() {
                return false;
            }
        }
        current.contains(&self.accept)
    }
}

/// A fragment with dangling start/accept, composed by the builder.
struct Fragment {
    start: usize,
    accept: usize,
}

struct Builder {
    trans: Vec<Vec<(Option<Label>, usize)>>,
    alphabet: Vec<Label>,
}

impl Builder {
    fn new_state(&mut self) -> usize {
        self.trans.push(Vec::new());
        self.trans.len() - 1
    }

    fn edge(&mut self, from: usize, label: Option<Label>, to: usize) {
        self.trans[from].push((label, to));
    }

    fn compile(&mut self, regex: &Regex, labels: &mut LabelInterner) -> Fragment {
        match regex {
            Regex::Epsilon => {
                let s = self.new_state();
                let a = self.new_state();
                self.edge(s, None, a);
                Fragment {
                    start: s,
                    accept: a,
                }
            }
            Regex::Label(name) => {
                let l = labels.intern(name);
                let s = self.new_state();
                let a = self.new_state();
                self.edge(s, Some(l), a);
                Fragment {
                    start: s,
                    accept: a,
                }
            }
            Regex::Concat(x, y) => {
                let fx = self.compile(x, labels);
                let fy = self.compile(y, labels);
                self.edge(fx.accept, None, fy.start);
                Fragment {
                    start: fx.start,
                    accept: fy.accept,
                }
            }
            Regex::Alt(x, y) => {
                let fx = self.compile(x, labels);
                let fy = self.compile(y, labels);
                let s = self.new_state();
                let a = self.new_state();
                self.edge(s, None, fx.start);
                self.edge(s, None, fy.start);
                self.edge(fx.accept, None, a);
                self.edge(fy.accept, None, a);
                Fragment {
                    start: s,
                    accept: a,
                }
            }
            Regex::Star(x) => {
                let fx = self.compile(x, labels);
                let s = self.new_state();
                let a = self.new_state();
                self.edge(s, None, fx.start);
                self.edge(s, None, a);
                self.edge(fx.accept, None, fx.start);
                self.edge(fx.accept, None, a);
                Fragment {
                    start: s,
                    accept: a,
                }
            }
            Regex::Plus(x) => {
                // R+ = R ◦ R*: reuse the star loop but require one pass.
                let fx = self.compile(x, labels);
                let s = self.new_state();
                let a = self.new_state();
                self.edge(s, None, fx.start);
                self.edge(fx.accept, None, fx.start);
                self.edge(fx.accept, None, a);
                Fragment {
                    start: s,
                    accept: a,
                }
            }
            Regex::Optional(x) => {
                let fx = self.compile(x, labels);
                let s = self.new_state();
                let a = self.new_state();
                self.edge(s, None, fx.start);
                self.edge(s, None, a);
                self.edge(fx.accept, None, a);
                Fragment {
                    start: s,
                    accept: a,
                }
            }
            Regex::Not(x) => {
                // Complement over the query alphabet: determinize the
                // sub-NFA, complete + complement, then embed the DFA as an
                // NFA fragment.
                let sub = {
                    let fx = self.compile(x, labels);
                    Nfa {
                        trans: self.trans.clone(),
                        start: fx.start,
                        accept: fx.accept,
                    }
                };
                let dfa = Dfa::from_nfa(&sub, &self.alphabet).complement(&self.alphabet);
                self.embed_dfa(&dfa)
            }
        }
    }

    /// Embeds a DFA as a Thompson-style fragment with one accept state.
    fn embed_dfa(&mut self, dfa: &Dfa) -> Fragment {
        let base = self.trans.len();
        for _ in 0..dfa.n_states() {
            self.new_state();
        }
        let accept = self.new_state();
        for s in 0..dfa.n_states() {
            for &l in dfa.alphabet() {
                if let Some(t) = dfa.next(srpq_common::StateId(s as u32), l) {
                    self.edge(base + s, Some(l), base + t.index());
                }
            }
            if dfa.is_accepting(srpq_common::StateId(s as u32)) {
                self.edge(base + s, None, accept);
            }
        }
        Fragment {
            start: base + dfa.start().index(),
            accept,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn nfa_for(s: &str) -> (Nfa, LabelInterner) {
        let mut labels = LabelInterner::new();
        let nfa = Nfa::build(&parse(s).unwrap(), &mut labels);
        (nfa, labels)
    }

    fn word(labels: &LabelInterner, names: &[&str]) -> Vec<Label> {
        names
            .iter()
            .map(|n| labels.get(n).expect("label interned"))
            .collect()
    }

    #[test]
    fn single_label() {
        let (nfa, l) = nfa_for("a");
        assert!(nfa.accepts(&word(&l, &["a"])));
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&word(&l, &["a", "a"])));
    }

    #[test]
    fn concat_and_alt() {
        let (nfa, l) = nfa_for("a b | c");
        assert!(nfa.accepts(&word(&l, &["a", "b"])));
        assert!(nfa.accepts(&word(&l, &["c"])));
        assert!(!nfa.accepts(&word(&l, &["a"])));
        assert!(!nfa.accepts(&word(&l, &["a", "c"])));
    }

    #[test]
    fn star_accepts_empty_and_repeats() {
        let (nfa, l) = nfa_for("a*");
        assert!(nfa.accepts(&[]));
        for n in 1..5 {
            assert!(nfa.accepts(&vec![l.get("a").unwrap(); n]));
        }
    }

    #[test]
    fn plus_requires_one() {
        let (nfa, l) = nfa_for("(a b)+");
        assert!(!nfa.accepts(&[]));
        assert!(nfa.accepts(&word(&l, &["a", "b"])));
        assert!(nfa.accepts(&word(&l, &["a", "b", "a", "b"])));
        assert!(!nfa.accepts(&word(&l, &["a", "b", "a"])));
    }

    #[test]
    fn optional() {
        let (nfa, l) = nfa_for("a? b");
        assert!(nfa.accepts(&word(&l, &["b"])));
        assert!(nfa.accepts(&word(&l, &["a", "b"])));
        assert!(!nfa.accepts(&word(&l, &["a"])));
    }

    #[test]
    fn negation_over_query_alphabet() {
        // !(a) over alphabet {a, b}: everything except the word "a".
        let (nfa, l) = nfa_for("!a | b b");
        // ε is not "a", so it is accepted by the !a branch.
        assert!(nfa.accepts(&[]));
        assert!(!nfa.accepts(&word(&l, &["a"])));
        assert!(nfa.accepts(&word(&l, &["b"])));
        assert!(nfa.accepts(&word(&l, &["a", "a"])));
        assert!(nfa.accepts(&word(&l, &["b", "b"])));
    }

    #[test]
    fn epsilon_closure_transitive() {
        let (nfa, _) = nfa_for("a* b*");
        let closure = nfa.epsilon_closure(&[nfa.start()]);
        // From start we can skip both stars and reach accept.
        assert!(closure.contains(&nfa.accept()));
    }

    #[test]
    fn linear_size() {
        let (nfa, _) = nfa_for("a b c d e f g h");
        assert!(nfa.n_states() <= 2 * 8 + 16, "{} states", nfa.n_states());
    }
}
