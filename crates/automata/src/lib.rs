//! Regular expression compilation for streaming RPQ evaluation.
//!
//! The pipeline follows §2 of the paper exactly:
//!
//! 1. parse a regular expression over the alphabet of edge labels
//!    ([`ast`], [`parser`]);
//! 2. build an NFA with Thompson's construction ([`nfa`]);
//! 3. determinize with the subset construction and minimize with
//!    Hopcroft's algorithm ([`dfa`], [`minimize`]);
//! 4. trim dead/unreachable states, producing the *partial* DFA the
//!    streaming algorithms traverse;
//! 5. precompute the suffix-language containment relation `[s] ⊇ [t]`
//!    (Definitions 14–15) used by RSPQ conflict detection
//!    ([`containment`]).
//!
//! The one-stop entry point is [`CompiledQuery::compile`].

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ast;
pub mod containment;
pub mod dfa;
pub mod minimize;
pub mod nfa;
pub mod parser;
pub mod query;
pub mod signature;

pub use ast::Regex;
pub use containment::ContainmentTable;
pub use dfa::Dfa;
pub use parser::{parse, ParseError};
pub use query::CompiledQuery;
pub use signature::DfaSignature;
