//! Canonical automaton signatures for multi-query sharing.
//!
//! Thousands of registered RPQs are typically near-duplicates of a few
//! templates, and two registrations whose expressions denote the same
//! language compile — via subset construction and Hopcroft minimization
//! — to *isomorphic* minimal partial DFAs (Myhill–Nerode). A
//! [`DfaSignature`] is a deterministic canonical form of such a DFA:
//! states are renumbered in BFS order from the start state (exploring
//! transitions in sorted-alphabet order), and the renumbered automaton
//! — state count, interned alphabet, accepting set, and sorted
//! transition table — is serialized into a byte string and hashed.
//! Equal-language, equal-alphabet registrations therefore collapse to
//! one key, which the multi-query registry uses to attach them to one
//! shared evaluation group.
//!
//! Equality compares the full canonical byte string (hash first as a
//! fast path), so signature collisions cannot silently merge distinct
//! languages. The declared alphabet Σ_Q participates in the signature
//! even where it adds no transitions: routing and per-query
//! `tuples_routed` accounting follow Σ_Q, so automata that differ only
//! in dead alphabet labels must not share a group.

use std::fmt;
use std::hash::{Hash, Hasher};

use srpq_common::hash::FxHasher;
use srpq_common::StateId;

use crate::dfa::Dfa;

/// A deterministic canonical form of a minimized partial DFA, hashed
/// into a compact key. Two DFAs have equal signatures iff their
/// canonical forms are byte-identical — i.e. they are isomorphic
/// automata over the same interned alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfaSignature {
    /// FxHash of `canon` — the fast-path comparison and display key.
    hash: u64,
    /// The canonical serialization itself; equality is decided here, so
    /// hash collisions cannot merge distinct languages.
    canon: Vec<u8>,
}

impl DfaSignature {
    /// Computes the signature of `dfa`.
    ///
    /// The minimizer already renumbers states in BFS order from the
    /// start, but the canonicalization does not rely on that: it
    /// re-derives the BFS numbering here, so any isomorphic relabeling
    /// of the same automaton (e.g. one built by [`Dfa::from_parts`]
    /// directly) maps to the same canonical form. States unreachable
    /// from the start — absent from minimized DFAs — are appended in
    /// ascending original order so the form stays total.
    pub fn of(dfa: &Dfa) -> DfaSignature {
        let n = dfa.n_states();
        let mut renum = vec![u32::MAX; n];
        let mut bfs: Vec<StateId> = Vec::with_capacity(n);
        if n > 0 {
            renum[dfa.start().index()] = 0;
            bfs.push(dfa.start());
        }
        let mut head = 0;
        while head < bfs.len() {
            let s = bfs[head];
            head += 1;
            for &l in dfa.alphabet() {
                if let Some(t) = dfa.next(s, l) {
                    if renum[t.index()] == u32::MAX {
                        renum[t.index()] = bfs.len() as u32;
                        bfs.push(t);
                    }
                }
            }
        }
        let mut next = bfs.len() as u32;
        for slot in renum.iter_mut() {
            if *slot == u32::MAX {
                *slot = next;
                next += 1;
            }
        }

        let alphabet = dfa.alphabet();
        let mut accepting: Vec<u32> = dfa.accepting_states().map(|s| renum[s.index()]).collect();
        accepting.sort_unstable();
        // Transitions as (from, alphabet column, to) over renumbered
        // states; the column index is canonical because the alphabet is
        // itself part of the serialization.
        let mut transitions: Vec<(u32, u32, u32)> = dfa
            .transitions()
            .map(|(s, l, t)| {
                let col = alphabet.binary_search(&l).expect("label in alphabet") as u32;
                (renum[s.index()], col, renum[t.index()])
            })
            .collect();
        transitions.sort_unstable();

        let mut canon = Vec::with_capacity(
            16 + 4 * (alphabet.len() + accepting.len()) + 12 * transitions.len(),
        );
        let push = |canon: &mut Vec<u8>, v: u32| canon.extend_from_slice(&v.to_le_bytes());
        push(&mut canon, n as u32);
        push(&mut canon, alphabet.len() as u32);
        for &l in alphabet {
            push(&mut canon, l.0);
        }
        push(&mut canon, accepting.len() as u32);
        for a in accepting {
            push(&mut canon, a);
        }
        push(&mut canon, transitions.len() as u32);
        for (s, col, t) in transitions {
            push(&mut canon, s);
            push(&mut canon, col);
            push(&mut canon, t);
        }

        let mut hasher = FxHasher::default();
        hasher.write(&canon);
        DfaSignature {
            hash: hasher.finish(),
            canon,
        }
    }

    /// The 64-bit hash of the canonical form — stable across processes
    /// (FxHash is unseeded), used for display and fast comparison.
    pub fn hash64(&self) -> u64 {
        self.hash
    }

    /// The canonical serialization (state count, alphabet, accepting
    /// set, sorted transition table; all little-endian u32).
    pub fn canon_bytes(&self) -> &[u8] {
        &self.canon
    }
}

impl Hash for DfaSignature {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl fmt::Display for DfaSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::CompiledQuery;
    use srpq_common::{Label, LabelInterner};

    fn sig(expr: &str, labels: &mut LabelInterner) -> DfaSignature {
        CompiledQuery::compile(expr, labels).unwrap().signature()
    }

    #[test]
    fn equal_languages_share_a_signature() {
        let mut labels = LabelInterner::new();
        // AST-level rewrites that minimize to the same DFA.
        assert_eq!(sig("a | b", &mut labels), sig("b | a", &mut labels));
        assert_eq!(sig("a* a*", &mut labels), sig("a*", &mut labels));
        assert_eq!(sig("a a*", &mut labels), sig("a+", &mut labels));
        assert_eq!(sig("(a b)+", &mut labels), sig("a b (a b)*", &mut labels));
    }

    #[test]
    fn distinct_languages_differ() {
        let mut labels = LabelInterner::new();
        let exprs = ["a", "a*", "a+", "a | b", "a b", "b a", "(a b)+", "a b*"];
        let sigs: Vec<DfaSignature> = exprs.iter().map(|e| sig(e, &mut labels)).collect();
        for i in 0..sigs.len() {
            for j in 0..sigs.len() {
                if i != j {
                    assert_ne!(sigs[i], sigs[j], "{} vs {}", exprs[i], exprs[j]);
                }
            }
        }
    }

    #[test]
    fn invariant_under_state_renumbering() {
        // The same automaton with states permuted must canonicalize
        // identically: a -> b with states (0 start, 1 accept) vs
        // (1 start, 0 accept).
        let a = Label(0);
        let b = Label(1);
        let d1 = Dfa::from_parts(
            3,
            StateId(0),
            &[StateId(2)],
            &[a, b],
            &[(StateId(0), a, StateId(1)), (StateId(1), b, StateId(2))],
        );
        let d2 = Dfa::from_parts(
            3,
            StateId(2),
            &[StateId(0)],
            &[a, b],
            &[(StateId(2), a, StateId(1)), (StateId(1), b, StateId(0))],
        );
        assert_eq!(DfaSignature::of(&d1), DfaSignature::of(&d2));
    }

    #[test]
    fn dead_alphabet_labels_keep_automata_apart() {
        // Same transition structure, but d2 declares an extra alphabet
        // label with no transitions — routing follows the alphabet, so
        // the signatures must differ.
        let a = Label(0);
        let b = Label(1);
        let t = [(StateId(0), a, StateId(1))];
        let d1 = Dfa::from_parts(2, StateId(0), &[StateId(1)], &[a], &t);
        let d2 = Dfa::from_parts(2, StateId(0), &[StateId(1)], &[a, b], &t);
        assert_ne!(DfaSignature::of(&d1), DfaSignature::of(&d2));
    }

    #[test]
    fn hash_is_stable_and_displayed_as_hex() {
        let mut labels = LabelInterner::new();
        let s1 = sig("(knows | follows)+", &mut labels);
        let s2 = sig("(follows | knows)+", &mut labels);
        assert_eq!(s1.hash64(), s2.hash64());
        assert_eq!(format!("{s1}"), format!("{:016x}", s1.hash64()));
        assert_eq!(s1.canon_bytes(), s2.canon_bytes());
    }

    #[test]
    fn property_random_equivalent_rewrites_collapse() {
        // A light property sweep: for each base expression, a handful
        // of language-preserving rewrites must hash identically, and a
        // language-changing tweak must not.
        let mut labels = LabelInterner::new();
        let families = [
            ("a+", "a a*", "a?"),
            ("(a | b)*", "(b | a)*", "(a b)*"),
            ("a b* c", "a (b)* c", "a b+ c"),
            ("(a b)+ c?", "a b (a b)* c?", "(a b)+ c"),
        ];
        for (base, same, different) in families {
            assert_eq!(
                sig(base, &mut labels),
                sig(same, &mut labels),
                "{base} vs {same}"
            );
            assert_ne!(
                sig(base, &mut labels),
                sig(different, &mut labels),
                "{base} vs {different}"
            );
        }
    }
}
