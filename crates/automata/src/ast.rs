//! Regular expression abstract syntax (Definition 7).
//!
//! `R ::= ε | a | R ◦ R | R + R | R*` plus the derived forms the paper
//! uses: `R+` (one or more), `R?` (optional, used by Q8 `a? ◦ b*`), and
//! `¬R` (negation, mentioned in Definition 7; compiled by DFA
//! complementation over the query alphabet).

use std::collections::BTreeSet;
use std::fmt;

/// A regular expression over label names.
///
/// Labels are kept as strings at this level; [`crate::CompiledQuery`]
/// resolves them against a [`srpq_common::LabelInterner`] when compiling.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Regex {
    /// The empty string ε.
    Epsilon,
    /// A single label `a ∈ Σ`.
    Label(String),
    /// Concatenation `R ◦ S`.
    Concat(Box<Regex>, Box<Regex>),
    /// Alternation `R + S`.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star `R*`.
    Star(Box<Regex>),
    /// One or more repetitions `R+` (sugar for `R ◦ R*`, kept explicit
    /// so `Display` round-trips).
    Plus(Box<Regex>),
    /// Zero or one occurrence `R?` (sugar for `ε + R`).
    Optional(Box<Regex>),
    /// Negation `¬R`: all words over the query alphabet not in `L(R)`.
    Not(Box<Regex>),
}

impl Regex {
    /// A label leaf.
    pub fn label(name: impl Into<String>) -> Regex {
        Regex::Label(name.into())
    }

    /// `self ◦ other`.
    pub fn then(self, other: Regex) -> Regex {
        Regex::Concat(Box::new(self), Box::new(other))
    }

    /// `self + other`.
    pub fn or(self, other: Regex) -> Regex {
        Regex::Alt(Box::new(self), Box::new(other))
    }

    /// `self*`.
    pub fn star(self) -> Regex {
        Regex::Star(Box::new(self))
    }

    /// `self+`.
    pub fn plus(self) -> Regex {
        Regex::Plus(Box::new(self))
    }

    /// `self?`.
    pub fn optional(self) -> Regex {
        Regex::Optional(Box::new(self))
    }

    /// `¬self`.
    pub fn negate(self) -> Regex {
        Regex::Not(Box::new(self))
    }

    /// Concatenation of a sequence of labels: `a1 ◦ a2 ◦ ... ◦ ak` (the
    /// shape of Q11 in Table 2).
    pub fn concat_labels<I, S>(labels: I) -> Regex
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = labels.into_iter();
        let first = iter
            .next()
            .map(|s| Regex::label(s))
            .unwrap_or(Regex::Epsilon);
        iter.fold(first, |acc, l| acc.then(Regex::label(l)))
    }

    /// Alternation of a set of labels: `a1 + a2 + ... + ak` (the inner
    /// shape of Q4/Q9/Q10 in Table 2).
    pub fn alt_labels<I, S>(labels: I) -> Regex
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = labels.into_iter();
        let first = iter
            .next()
            .map(|s| Regex::label(s))
            .unwrap_or(Regex::Epsilon);
        iter.fold(first, |acc, l| acc.or(Regex::label(l)))
    }

    /// The set of distinct label names mentioned in the expression
    /// (the query alphabet Σ_Q).
    pub fn alphabet(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_alphabet(&mut out);
        out
    }

    fn collect_alphabet<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            Regex::Epsilon => {}
            Regex::Label(l) => {
                out.insert(l.as_str());
            }
            Regex::Concat(a, b) | Regex::Alt(a, b) => {
                a.collect_alphabet(out);
                b.collect_alphabet(out);
            }
            Regex::Star(r) | Regex::Plus(r) | Regex::Optional(r) | Regex::Not(r) => {
                r.collect_alphabet(out)
            }
        }
    }

    /// Query size |Q_R| as defined in §5.1.2: the number of label
    /// occurrences plus the number of `*` and `+` operators.
    pub fn size(&self) -> usize {
        match self {
            Regex::Epsilon => 0,
            Regex::Label(_) => 1,
            Regex::Concat(a, b) | Regex::Alt(a, b) => a.size() + b.size(),
            Regex::Star(r) | Regex::Plus(r) => 1 + r.size(),
            Regex::Optional(r) | Regex::Not(r) => r.size(),
        }
    }

    /// Whether the expression contains a Kleene star or plus (i.e. is
    /// *recursive* in the terminology of the query-log studies the paper
    /// draws its workload from).
    pub fn is_recursive(&self) -> bool {
        match self {
            Regex::Epsilon | Regex::Label(_) => false,
            Regex::Concat(a, b) | Regex::Alt(a, b) => a.is_recursive() || b.is_recursive(),
            Regex::Star(_) | Regex::Plus(_) => true,
            Regex::Optional(r) | Regex::Not(r) => r.is_recursive(),
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            Regex::Alt(..) => 0,
            Regex::Concat(..) => 1,
            Regex::Not(..) => 2,
            Regex::Star(..) | Regex::Plus(..) | Regex::Optional(..) => 3,
            Regex::Epsilon | Regex::Label(..) => 4,
        }
    }

    fn fmt_child(&self, child: &Regex, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if child.precedence() < self.precedence()
            || (matches!(
                self,
                Regex::Star(..) | Regex::Plus(..) | Regex::Optional(..)
            ) && child.precedence() < 4)
        {
            write!(f, "({child})")
        } else {
            write!(f, "{child}")
        }
    }
}

impl fmt::Display for Regex {
    /// Prints in the surface syntax accepted by [`crate::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Epsilon => write!(f, "()"),
            Regex::Label(l) => write!(f, "{l}"),
            Regex::Concat(a, b) => {
                self.fmt_child(a, f)?;
                write!(f, " ")?;
                // Parenthesize a right-nested concat: the parser is
                // left-associative, so `a (b c)` must keep its parens
                // for the AST to round-trip.
                if matches!(**b, Regex::Concat(..)) {
                    write!(f, "({b})")
                } else {
                    self.fmt_child(b, f)
                }
            }
            Regex::Alt(a, b) => {
                self.fmt_child(a, f)?;
                write!(f, " | ")?;
                if matches!(**b, Regex::Alt(..)) {
                    write!(f, "({b})")
                } else {
                    self.fmt_child(b, f)
                }
            }
            Regex::Star(r) => {
                self.fmt_child(r, f)?;
                write!(f, "*")
            }
            Regex::Plus(r) => {
                self.fmt_child(r, f)?;
                write!(f, "+")
            }
            Regex::Optional(r) => {
                self.fmt_child(r, f)?;
                write!(f, "?")
            }
            Regex::Not(r) => {
                write!(f, "!")?;
                self.fmt_child(r, f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        // Q1 from Figure 1: (follows ◦ mentions)+
        let q = Regex::label("follows")
            .then(Regex::label("mentions"))
            .plus();
        assert_eq!(q.to_string(), "(follows mentions)+");
        assert_eq!(q.size(), 3);
        assert!(q.is_recursive());
    }

    #[test]
    fn alphabet_collects_distinct_labels() {
        let q = Regex::label("a")
            .then(Regex::label("b").star())
            .then(Regex::label("a"));
        let alpha: Vec<_> = q.alphabet().into_iter().collect();
        assert_eq!(alpha, vec!["a", "b"]);
    }

    #[test]
    fn size_counts_labels_and_stars() {
        // a ◦ b* ◦ c* : 3 labels + 2 stars = 5
        let q = Regex::label("a")
            .then(Regex::label("b").star())
            .then(Regex::label("c").star());
        assert_eq!(q.size(), 5);
    }

    #[test]
    fn alt_and_concat_helpers() {
        let alt = Regex::alt_labels(["a", "b", "c"]);
        assert_eq!(alt.to_string(), "a | b | c");
        let cat = Regex::concat_labels(["a", "b", "c"]);
        assert_eq!(cat.to_string(), "a b c");
        assert!(!cat.is_recursive());
    }

    #[test]
    fn display_parenthesizes_correctly() {
        let q = Regex::label("a")
            .or(Regex::label("b"))
            .then(Regex::label("c"));
        assert_eq!(q.to_string(), "(a | b) c");
        let q2 = Regex::label("a").or(Regex::label("b").then(Regex::label("c")));
        assert_eq!(q2.to_string(), "a | b c");
        let q3 = Regex::label("a").or(Regex::label("b")).star();
        assert_eq!(q3.to_string(), "(a | b)*");
        let q4 = Regex::label("a").negate().then(Regex::label("b"));
        assert_eq!(q4.to_string(), "!a b");
    }

    #[test]
    fn empty_helpers_degrade_to_epsilon() {
        assert_eq!(Regex::concat_labels(Vec::<String>::new()), Regex::Epsilon);
        assert_eq!(Regex::alt_labels(Vec::<String>::new()), Regex::Epsilon);
    }

    #[test]
    fn optional_is_not_counted_in_size() {
        // Q8: a? ◦ b* — size counts 2 labels + 1 star = 3.
        let q = Regex::label("a").optional().then(Regex::label("b").star());
        assert_eq!(q.size(), 3);
    }
}
