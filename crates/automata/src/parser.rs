//! A recursive-descent parser for the surface regex syntax.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! alt     := concat ('|' concat)*
//! concat  := postfix (('.' | '/')? postfix)*      -- juxtaposition concatenates
//! postfix := prefix ('*' | '+' | '?')*
//! prefix  := '!' prefix | atom
//! atom    := label | '(' alt? ')'
//! label   := [A-Za-z_][A-Za-z0-9_:-]*
//! ```
//!
//! `()` denotes ε. The paper writes alternation as `+`; since `+` is also
//! the one-or-more postfix operator, the surface syntax uses `|` for
//! alternation (as SPARQL property paths do). Q1 of Figure 1 is written
//! `(follows mentions)+` or equivalently `(follows/mentions)+`.

use crate::ast::Regex;
use std::fmt;

/// A parse error with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

/// Parses a regular expression in the surface syntax.
pub fn parse(input: &str) -> Result<Regex, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    if p.peek().is_none() {
        return Err(p.error("empty regular expression"));
    }
    let r = p.parse_alt()?;
    p.skip_ws();
    if let Some(c) = p.peek() {
        return Err(p.error(format!("unexpected character {c:?}")));
    }
    Ok(r)
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn parse_alt(&mut self) -> Result<Regex, ParseError> {
        let mut lhs = self.parse_concat()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.bump();
                self.skip_ws();
                let rhs = self.parse_concat()?;
                lhs = lhs.or(rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn starts_atom(&self) -> bool {
        matches!(self.peek(), Some(c) if c == '(' || c == '!' || is_label_start(c))
    }

    fn parse_concat(&mut self) -> Result<Regex, ParseError> {
        let mut lhs = self.parse_postfix()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('.') | Some('/') => {
                    self.bump();
                    self.skip_ws();
                    let rhs = self.parse_postfix()?;
                    lhs = lhs.then(rhs);
                }
                _ if self.starts_atom() => {
                    let rhs = self.parse_postfix()?;
                    lhs = lhs.then(rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_postfix(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.parse_prefix()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    r = r.star();
                }
                Some('+') => {
                    self.bump();
                    r = r.plus();
                }
                Some('?') => {
                    self.bump();
                    r = r.optional();
                }
                _ => return Ok(r),
            }
        }
    }

    fn parse_prefix(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        if self.peek() == Some('!') {
            self.bump();
            let inner = self.parse_prefix()?;
            return Ok(inner.negate());
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.bump();
                self.skip_ws();
                if self.peek() == Some(')') {
                    self.bump();
                    return Ok(Regex::Epsilon);
                }
                let inner = self.parse_alt()?;
                self.skip_ws();
                if self.peek() == Some(')') {
                    self.bump();
                    Ok(inner)
                } else {
                    Err(self.error("expected ')'"))
                }
            }
            Some(c) if is_label_start(c) => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if is_label_continue(c)) {
                    self.bump();
                }
                Ok(Regex::label(&self.input[start..self.pos]))
            }
            Some(c) => Err(self.error(format!("unexpected character {c:?}"))),
            None => Err(self.error("unexpected end of input")),
        }
    }
}

fn is_label_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_label_continue(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | ':' | '-')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) -> String {
        parse(s).unwrap().to_string()
    }

    #[test]
    fn parses_figure_1_query() {
        let q = parse("(follows mentions)+").unwrap();
        assert_eq!(
            q,
            Regex::label("follows")
                .then(Regex::label("mentions"))
                .plus()
        );
    }

    #[test]
    fn parses_table_2_shapes() {
        // Q1: a*
        assert_eq!(roundtrip("a*"), "a*");
        // Q2: a b*
        assert_eq!(roundtrip("a b*"), "a b*");
        // Q3: a b* c*
        assert_eq!(roundtrip("a b* c*"), "a b* c*");
        // Q4: (a | b | c)*
        assert_eq!(roundtrip("(a1 | a2 | a3)*"), "(a1 | a2 | a3)*");
        // Q5: a b* c
        assert_eq!(roundtrip("a b* c"), "a b* c");
        // Q8: a? b*
        assert_eq!(roundtrip("a? b*"), "a? b*");
        // Q11: a b c
        assert_eq!(roundtrip("a b c"), "a b c");
    }

    #[test]
    fn slash_and_dot_concatenate() {
        assert_eq!(parse("a/b").unwrap(), parse("a b").unwrap());
        assert_eq!(parse("a.b").unwrap(), parse("a b").unwrap());
        assert_eq!(parse("a / b . c").unwrap(), parse("a b c").unwrap());
    }

    #[test]
    fn precedence_alt_below_concat() {
        // a | b c  ==  a | (b c)
        assert_eq!(
            parse("a | b c").unwrap(),
            Regex::label("a").or(Regex::label("b").then(Regex::label("c")))
        );
    }

    #[test]
    fn postfix_binds_tightest() {
        assert_eq!(
            parse("a b*").unwrap(),
            Regex::label("a").then(Regex::label("b").star())
        );
        // Double postfix: (a*)+ parses.
        assert_eq!(roundtrip("a*+"), "(a*)+");
    }

    #[test]
    fn negation() {
        assert_eq!(parse("!a").unwrap(), Regex::label("a").negate());
        assert_eq!(
            parse("!(a b)").unwrap(),
            Regex::label("a").then(Regex::label("b")).negate()
        );
    }

    #[test]
    fn epsilon_literal() {
        assert_eq!(parse("()").unwrap(), Regex::Epsilon);
        assert_eq!(
            parse("() | a").unwrap(),
            Regex::Epsilon.or(Regex::label("a"))
        );
    }

    #[test]
    fn label_charset() {
        assert_eq!(
            parse("rdf:type-of_2").unwrap(),
            Regex::label("rdf:type-of_2")
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("a |").unwrap_err();
        assert_eq!(err.offset, 3);
        let err = parse("(a").unwrap_err();
        assert!(err.message.contains(")"));
        assert!(parse("").is_err());
        assert!(parse("*a").is_err());
        let err = parse("a )").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn display_parse_round_trip() {
        for s in [
            "a*",
            "a b*",
            "(a | b)* c",
            "a? b* c+",
            "!a b",
            "((a b) | c)+",
            "a1 a2 a3 a4",
        ] {
            let r = parse(s).unwrap();
            let r2 = parse(&r.to_string()).unwrap();
            assert_eq!(r, r2, "round-trip failed for {s}");
        }
    }
}
