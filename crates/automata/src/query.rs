//! Query compilation: regex → minimal DFA + containment table.
//!
//! [`CompiledQuery`] is the artifact of "query registration" (§4): the
//! minimal partial DFA the streaming algorithms traverse, plus the
//! precomputed suffix-language containment relation used by RSPQ conflict
//! detection.

use crate::ast::Regex;
use crate::containment::ContainmentTable;
use crate::dfa::Dfa;
use crate::minimize::minimize;
use crate::nfa::Nfa;
use crate::parser::{parse, ParseError};
use srpq_common::{Label, LabelInterner};

/// A registered RPQ: the parsed expression, its minimal DFA, and the
/// suffix-language containment relation.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    regex: Regex,
    dfa: Dfa,
    containment: ContainmentTable,
}

impl CompiledQuery {
    /// Compiles a surface-syntax expression, interning labels through
    /// `labels`.
    pub fn compile(input: &str, labels: &mut LabelInterner) -> Result<CompiledQuery, ParseError> {
        Ok(Self::from_regex(parse(input)?, labels))
    }

    /// Compiles an already-parsed expression.
    pub fn from_regex(regex: Regex, labels: &mut LabelInterner) -> CompiledQuery {
        let nfa = Nfa::build(&regex, labels);
        let alphabet: Vec<Label> = regex
            .alphabet()
            .into_iter()
            .map(|name| labels.get(name).expect("alphabet interned by Nfa::build"))
            .collect();
        let dfa = minimize(&Dfa::from_nfa(&nfa, &alphabet));
        let containment = ContainmentTable::build(&dfa);
        CompiledQuery {
            regex,
            dfa,
            containment,
        }
    }

    /// The source expression.
    pub fn regex(&self) -> &Regex {
        &self.regex
    }

    /// The minimal partial DFA.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// The suffix-language containment relation.
    pub fn containment(&self) -> &ContainmentTable {
        &self.containment
    }

    /// Number of DFA states `k` (the paper's complexity parameter).
    pub fn k(&self) -> usize {
        self.dfa.n_states()
    }

    /// Whether the automaton has the suffix-language containment property
    /// (Definition 15), guaranteeing conflict-freedom on any graph.
    pub fn has_containment_property(&self) -> bool {
        self.containment.has_containment_property()
    }

    /// The canonical signature of the minimal DFA: equal for any two
    /// registrations denoting the same language over the same alphabet.
    /// Computed on demand — the DFA is small and this runs only on
    /// registration paths, never per tuple.
    pub fn signature(&self) -> crate::signature::DfaSignature {
        crate::signature::DfaSignature::of(&self.dfa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_pipeline_end_to_end() {
        let mut labels = LabelInterner::new();
        let q = CompiledQuery::compile("(follows mentions)+", &mut labels).unwrap();
        assert_eq!(q.k(), 3);
        assert!(!q.has_containment_property());
        assert_eq!(q.regex().size(), 3);

        let follows = labels.get("follows").unwrap();
        let mentions = labels.get("mentions").unwrap();
        assert!(q.dfa().accepts(&[follows, mentions]));
        assert!(!q.dfa().accepts(&[follows]));
        assert!(q.dfa().accepts(&[follows, mentions, follows, mentions]));
    }

    #[test]
    fn parse_errors_propagate() {
        let mut labels = LabelInterner::new();
        assert!(CompiledQuery::compile("(a", &mut labels).is_err());
    }

    #[test]
    fn shared_interner_across_queries() {
        let mut labels = LabelInterner::new();
        let q1 = CompiledQuery::compile("a b*", &mut labels).unwrap();
        let q2 = CompiledQuery::compile("b a*", &mut labels).unwrap();
        // Same label ids across queries.
        let a = labels.get("a").unwrap();
        let b = labels.get("b").unwrap();
        assert!(q1.dfa().knows_label(a) && q1.dfa().knows_label(b));
        assert!(q2.dfa().knows_label(a) && q2.dfa().knows_label(b));
        assert_eq!(labels.len(), 2);
    }
}
