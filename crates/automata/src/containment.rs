//! Suffix languages and the containment relation (Definitions 14–16).
//!
//! For a DFA `A = (S, Σ, δ, s0, F)`, the *suffix language* of a state `s`
//! is `[s] = {w | δ*(s, w) ∈ F}`. RSPQ conflict detection asks, for pairs
//! of states, whether `[s] ⊇ [t]`. We precompute the full k×k relation at
//! query registration ("we compute and store the suffix language
//! containment relation for all pairs of states during query
//! registration", §4).
//!
//! `[s] ⊇ [t]` fails iff some word is in `[t]` but not in `[s]`; that is,
//! iff the pair `(t, s)` can reach a pair `(accepting, non-accepting)` in
//! the product automaton (treating missing transitions as a rejecting
//! sink). We compute all failing pairs with one backward fixpoint over the
//! product, O(k² · |Σ|).

use crate::dfa::Dfa;
use srpq_common::StateId;

/// The precomputed suffix-language containment relation of a DFA.
#[derive(Debug, Clone)]
pub struct ContainmentTable {
    k: usize,
    /// Row-major k×k: `contains[s·k + t]` ⟺ `[s] ⊇ [t]`.
    contains: Vec<bool>,
    has_property: bool,
}

impl ContainmentTable {
    /// Builds the relation for `dfa`.
    pub fn build(dfa: &Dfa) -> ContainmentTable {
        let k = dfa.n_states();
        // Pair index with an extra "sink" row/column at index k.
        let total = k + 1;
        let idx = |p: usize, q: usize| p * total + q;

        // `bad[(p, q)]` ⟺ ∃w: δ*(p,w) ∈ F ∧ δ*(q,w) ∉ F.
        // Base: p accepting, q not (sink never accepts).
        // Step: bad(δ(p,a), δ(q,a)) ⇒ bad(p, q).
        let accepting = |s: usize| s < k && dfa.is_accepting(StateId(s as u32));
        let step = |s: usize, col: usize| -> usize {
            if s == k {
                k
            } else {
                dfa.next(StateId(s as u32), dfa.alphabet()[col])
                    .map(|t| t.index())
                    .unwrap_or(k)
            }
        };

        let n_cols = dfa.alphabet().len();
        let mut bad = vec![false; total * total];
        let mut queue: Vec<(usize, usize)> = Vec::new();
        for p in 0..total {
            for q in 0..total {
                if accepting(p) && !accepting(q) {
                    bad[idx(p, q)] = true;
                    queue.push((p, q));
                }
            }
        }
        // Backward closure via inverse product transitions. k is tiny
        // (Figure 7 tops out around 12), so we scan predecessors directly.
        while let Some((p, q)) = queue.pop() {
            for col in 0..n_cols {
                for sp in 0..total {
                    if step(sp, col) != p {
                        continue;
                    }
                    for sq in 0..total {
                        if step(sq, col) == q && !bad[idx(sp, sq)] {
                            bad[idx(sp, sq)] = true;
                            queue.push((sp, sq));
                        }
                    }
                }
            }
        }

        // [s] ⊇ [t] ⟺ ¬bad(t, s).
        let mut contains = vec![false; k * k];
        for s in 0..k {
            for t in 0..k {
                contains[s * k + t] = !bad[idx(t, s)];
            }
        }

        // Suffix language containment property (Definition 15): for every
        // transition s →a t (all states in a trimmed DFA lie on a path
        // from s0 to a final state), require [s] ⊇ [t].
        let mut has_property = true;
        'outer: for (s, _, t) in dfa.transitions() {
            if !contains[s.index() * k + t.index()] {
                has_property = false;
                break 'outer;
            }
        }

        ContainmentTable {
            k,
            contains,
            has_property,
        }
    }

    /// Whether `[s] ⊇ [t]`.
    #[inline]
    pub fn contains(&self, s: StateId, t: StateId) -> bool {
        self.contains[s.index() * self.k + t.index()]
    }

    /// Whether the automaton has the suffix-language containment property
    /// (Definition 15) — a sufficient condition for conflict-freedom on
    /// *any* graph, hence for the `O(n·k²)` RSPQ bound.
    pub fn has_containment_property(&self) -> bool {
        self.has_property
    }

    /// Number of states the relation covers.
    pub fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimize::minimize;
    use crate::nfa::Nfa;
    use crate::parser::parse;
    use srpq_common::{Label, LabelInterner};

    fn compile(s: &str) -> (Dfa, ContainmentTable, LabelInterner) {
        let mut labels = LabelInterner::new();
        let regex = parse(s).unwrap();
        let nfa = Nfa::build(&regex, &mut labels);
        let alphabet: Vec<Label> = regex
            .alphabet()
            .into_iter()
            .map(|n| labels.get(n).unwrap())
            .collect();
        let dfa = minimize(&Dfa::from_nfa(&nfa, &alphabet));
        let table = ContainmentTable::build(&dfa);
        (dfa, table, labels)
    }

    /// Brute-force `[s] ⊇ [t]` check over all words up to `max_len`.
    fn brute_contains(dfa: &Dfa, s: StateId, t: StateId, max_len: usize) -> bool {
        let suffix_accepts = |from: StateId, word: &[Label]| -> bool {
            let mut cur = from;
            for &l in word {
                match dfa.next(cur, l) {
                    Some(n) => cur = n,
                    None => return false,
                }
            }
            dfa.is_accepting(cur)
        };
        let alpha = dfa.alphabet();
        let mut words: Vec<Vec<Label>> = vec![vec![]];
        for _ in 0..max_len {
            let mut next: Vec<Vec<Label>> = Vec::new();
            for w in &words {
                for &a in alpha {
                    let mut w2 = w.clone();
                    w2.push(a);
                    next.push(w2);
                }
            }
            words.extend(next.clone());
            // bound growth: dedup not needed for small alphabets/lengths
            if words.len() > 100_000 {
                break;
            }
        }
        words
            .iter()
            .all(|w| !suffix_accepts(t, w) || suffix_accepts(s, w))
    }

    #[test]
    fn reflexive() {
        let (dfa, table, _) = compile("(a b)+ c?");
        for s in 0..dfa.n_states() {
            let s = StateId(s as u32);
            assert!(table.contains(s, s), "not reflexive at {s}");
        }
    }

    #[test]
    fn transitive() {
        let (dfa, table, _) = compile("a b* c* (a | b)");
        let k = dfa.n_states();
        for s in 0..k {
            for t in 0..k {
                for u in 0..k {
                    let (s, t, u) = (StateId(s as u32), StateId(t as u32), StateId(u as u32));
                    if table.contains(s, t) && table.contains(t, u) {
                        assert!(table.contains(s, u), "not transitive {s} {t} {u}");
                    }
                }
            }
        }
    }

    #[test]
    fn matches_brute_force() {
        for q in ["a*", "a b*", "(a b)+", "a b* c", "(a | b)* a", "a? b+"] {
            let (dfa, table, _) = compile(q);
            let k = dfa.n_states();
            for s in 0..k {
                for t in 0..k {
                    let (s, t) = (StateId(s as u32), StateId(t as u32));
                    assert_eq!(
                        table.contains(s, t),
                        brute_contains(&dfa, s, t, 6),
                        "query {q}, pair ({s}, {t})"
                    );
                }
            }
        }
    }

    #[test]
    fn star_expressions_have_property() {
        // a* and (a1 | a2 | a3)* compile to a single accepting state with
        // self-loops, so containment holds on every transition.
        for q in ["a*", "(a | b | c)*"] {
            let (_, table, _) = compile(q);
            assert!(table.has_containment_property(), "query {q}");
        }
        // Fixed-length concatenations do NOT have the containment
        // property ([s0] = {abc} ⊉ [s1] = {bc}); their conflict-freedom
        // in Table 4 comes from bounded path length, not Definition 15.
        let (_, table, _) = compile("a b c");
        assert!(!table.has_containment_property());
    }

    #[test]
    fn figure_1_query_lacks_property() {
        // (follows mentions)+ — Example 4.1 exhibits a conflict, so the
        // automaton cannot have the containment property.
        let (_, table, _) = compile("(follows mentions)+");
        assert!(!table.has_containment_property());
    }

    #[test]
    fn star_suffix_contains_continuations() {
        // For a b*: state after 'a' loops on b and accepts; [s1] = b*.
        // Start state [s0] = a b*. Suffix of s1 contains itself.
        let (dfa, table, l) = compile("a b*");
        let a = l.get("a").unwrap();
        let s0 = dfa.start();
        let s1 = dfa.next(s0, a).unwrap();
        // [s1] = b*, [s0] = a b*: neither contains the other... check via
        // brute force agreement instead of hand-waving:
        assert_eq!(table.contains(s0, s1), brute_contains(&dfa, s0, s1, 6));
        assert_eq!(table.contains(s1, s0), brute_contains(&dfa, s1, s0, 6));
        // b-loop: δ(s1,b) = s1, containment trivially holds on the loop.
        assert!(table.contains(s1, s1));
    }
}
