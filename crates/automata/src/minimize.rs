//! DFA minimization (Hopcroft's n·log n algorithm, ref. 41 of the paper) and
//! trimming.
//!
//! The streaming algorithms traverse the product graph guided by the DFA,
//! so every useless automaton state multiplies into useless tree nodes.
//! [`minimize`] therefore produces the *canonical minimal partial* DFA:
//! Hopcroft partition refinement over the completed automaton, followed by
//! removal of unreachable and dead (non-co-reachable) states, with states
//! renumbered in BFS order from the start state for determinism.

use crate::dfa::Dfa;
use srpq_common::{Label, StateId};

/// Minimizes and trims `dfa`. The result recognizes the same language with
/// the minimum number of states; only the start state may be non-useful
/// (when `L = ∅` or `L = {ε}` the result has a single state and no
/// transitions).
pub fn minimize(dfa: &Dfa) -> Dfa {
    let alphabet: Vec<Label> = dfa.alphabet().to_vec();
    let n = dfa.n_states();
    if n == 0 {
        return dfa.clone();
    }
    let n_cols = alphabet.len();
    let sink = n; // implicit completion state
    let total = n + 1;

    // Completed transition function.
    let step = |s: usize, col: usize| -> usize {
        if s == sink {
            sink
        } else {
            dfa.next(StateId(s as u32), alphabet[col])
                .map(|t| t.index())
                .unwrap_or(sink)
        }
    };

    // Inverse transitions per column.
    let mut inverse: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); total]; n_cols];
    for s in 0..total {
        for (col, inv) in inverse.iter_mut().enumerate() {
            inv[step(s, col)].push(s as u32);
        }
    }

    // Hopcroft partition refinement.
    let mut block_of: Vec<u32> = (0..total)
        .map(|s| {
            if s != sink && dfa.is_accepting(StateId(s as u32)) {
                0
            } else {
                1
            }
        })
        .collect();
    let mut blocks: Vec<Vec<u32>> = vec![Vec::new(), Vec::new()];
    for s in 0..total {
        blocks[block_of[s] as usize].push(s as u32);
    }
    // Drop an empty initial block (e.g. no accepting states).
    if blocks[0].is_empty() {
        blocks.remove(0);
        for b in block_of.iter_mut() {
            *b = 0;
        }
    }

    let mut worklist: Vec<u32> = (0..blocks.len() as u32).collect();
    let mut in_worklist: Vec<bool> = vec![true; blocks.len()];

    while let Some(a) = worklist.pop() {
        in_worklist[a as usize] = false;
        let splitter = blocks[a as usize].clone();
        for inv in &inverse {
            // X = predecessors of the splitter block under this column.
            let mut touched: Vec<u32> = Vec::new(); // blocks with members in X
            let mut hits: Vec<Vec<u32>> = Vec::new();
            let mut hit_index: Vec<i32> = vec![-1; blocks.len()];
            for &q in &splitter {
                for &p in &inv[q as usize] {
                    let b = block_of[p as usize];
                    if hit_index[b as usize] < 0 {
                        hit_index[b as usize] = touched.len() as i32;
                        touched.push(b);
                        hits.push(Vec::new());
                    }
                    hits[hit_index[b as usize] as usize].push(p);
                }
            }
            for (ti, &b) in touched.iter().enumerate() {
                let hit = &mut hits[ti];
                hit.sort_unstable();
                hit.dedup();
                if hit.len() == blocks[b as usize].len() {
                    continue; // no split: all members hit
                }
                // Split block b into (hit, rest).
                let new_block_id = blocks.len() as u32;
                let old = std::mem::take(&mut blocks[b as usize]);
                let mut stay = Vec::with_capacity(old.len() - hit.len());
                let mut moved = Vec::with_capacity(hit.len());
                let hit_set: std::collections::HashSet<u32> = hit.iter().copied().collect();
                for s in old {
                    if hit_set.contains(&s) {
                        moved.push(s);
                    } else {
                        stay.push(s);
                    }
                }
                for &s in &moved {
                    block_of[s as usize] = new_block_id;
                }
                blocks[b as usize] = stay;
                blocks.push(moved);
                in_worklist.push(false);
                hit_index.push(-1);
                // Hopcroft's trick: enqueue the smaller half (or the new
                // block if b is already queued).
                if in_worklist[b as usize] {
                    worklist.push(new_block_id);
                    in_worklist[new_block_id as usize] = true;
                } else {
                    let (smaller, larger) =
                        if blocks[b as usize].len() <= blocks[new_block_id as usize].len() {
                            (b, new_block_id)
                        } else {
                            (new_block_id, b)
                        };
                    let _ = larger;
                    worklist.push(smaller);
                    in_worklist[smaller as usize] = true;
                }
            }
        }
    }

    // Rebuild over blocks, skipping the sink's block.
    let start_block = block_of[dfa.start().index()];
    let mut transitions: Vec<(StateId, Label, StateId)> = Vec::new();
    let mut accepting_blocks: Vec<bool> = vec![false; blocks.len()];
    for (bid, members) in blocks.iter().enumerate() {
        let Some(&rep) = members.first() else {
            continue;
        };
        if rep as usize != sink && dfa.is_accepting(StateId(rep)) {
            accepting_blocks[bid] = true;
        }
        for (col, &l) in alphabet.iter().enumerate() {
            let t = step(rep as usize, col);
            let tb = block_of[t];
            // Omit transitions into the sink's block — keeps partiality.
            if blocks[tb as usize].contains(&(sink as u32)) {
                continue;
            }
            transitions.push((StateId(bid as u32), l, StateId(tb)));
        }
    }

    let accepting: Vec<StateId> = accepting_blocks
        .iter()
        .enumerate()
        .filter(|(_, &a)| a)
        .map(|(i, _)| StateId(i as u32))
        .collect();

    let merged = Dfa::from_parts(
        blocks.len(),
        StateId(start_block),
        &accepting,
        &alphabet,
        &transitions,
    );
    trim(&merged)
}

/// Removes unreachable and dead states, renumbering survivors in BFS order
/// from the start (the start state is always kept).
pub fn trim(dfa: &Dfa) -> Dfa {
    let n = dfa.n_states();
    // Forward reachability.
    let mut reachable = vec![false; n];
    let mut queue = vec![dfa.start().index()];
    reachable[dfa.start().index()] = true;
    while let Some(s) = queue.pop() {
        for &l in dfa.alphabet() {
            if let Some(t) = dfa.next(StateId(s as u32), l) {
                if !reachable[t.index()] {
                    reachable[t.index()] = true;
                    queue.push(t.index());
                }
            }
        }
    }
    // Backward reachability from accepting states.
    let mut co_reachable = vec![false; n];
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (s, _, t) in dfa.transitions() {
        rev[t.index()].push(s.index());
    }
    let mut queue: Vec<usize> = dfa.accepting_states().map(|s| s.index()).collect();
    for &s in &queue {
        co_reachable[s] = true;
    }
    while let Some(s) = queue.pop() {
        for &p in &rev[s] {
            if !co_reachable[p] {
                co_reachable[p] = true;
                queue.push(p);
            }
        }
    }

    let useful = |s: usize| reachable[s] && (co_reachable[s] || s == dfa.start().index());

    // Renumber in BFS order from start (deterministic).
    let mut id_map: Vec<Option<u32>> = vec![None; n];
    let mut order: Vec<usize> = Vec::new();
    let mut bfs = std::collections::VecDeque::new();
    bfs.push_back(dfa.start().index());
    id_map[dfa.start().index()] = Some(0);
    order.push(dfa.start().index());
    while let Some(s) = bfs.pop_front() {
        for &l in dfa.alphabet() {
            if let Some(t) = dfa.next(StateId(s as u32), l) {
                let t = t.index();
                if useful(t) && id_map[t].is_none() {
                    id_map[t] = Some(order.len() as u32);
                    order.push(t);
                    bfs.push_back(t);
                }
            }
        }
    }

    let mut transitions = Vec::new();
    for &s in &order {
        for &l in dfa.alphabet() {
            if let Some(t) = dfa.next(StateId(s as u32), l) {
                if let Some(tid) = id_map[t.index()] {
                    transitions.push((StateId(id_map[s].unwrap()), l, StateId(tid)));
                }
            }
        }
    }
    let accepting: Vec<StateId> = order
        .iter()
        .filter(|&&s| dfa.is_accepting(StateId(s as u32)))
        .map(|&s| StateId(id_map[s].unwrap()))
        .collect();

    Dfa::from_parts(
        order.len(),
        StateId(0),
        &accepting,
        dfa.alphabet(),
        &transitions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::parser::parse;
    use srpq_common::LabelInterner;

    fn min_dfa(s: &str) -> (Dfa, LabelInterner) {
        let mut labels = LabelInterner::new();
        let regex = parse(s).unwrap();
        let nfa = Nfa::build(&regex, &mut labels);
        let alphabet: Vec<Label> = regex
            .alphabet()
            .into_iter()
            .map(|n| labels.get(n).unwrap())
            .collect();
        let dfa = Dfa::from_nfa(&nfa, &alphabet);
        (minimize(&dfa), labels)
    }

    fn w(l: &LabelInterner, names: &[&str]) -> Vec<Label> {
        names.iter().map(|n| l.get(n).unwrap()).collect()
    }

    #[test]
    fn figure_1_automaton_has_three_states() {
        // Q1: (follows ◦ mentions)+ — Figure 1(c) shows exactly 3 states.
        let (dfa, _) = min_dfa("(follows mentions)+");
        assert_eq!(dfa.n_states(), 3);
        assert_eq!(dfa.accepting_states().count(), 1);
    }

    #[test]
    fn kleene_star_single_label_is_one_state() {
        let (dfa, l) = min_dfa("a*");
        assert_eq!(dfa.n_states(), 1);
        assert!(dfa.accepts_empty());
        assert!(dfa.accepts(&w(&l, &["a", "a", "a"])));
    }

    #[test]
    fn minimization_merges_equivalent_states() {
        // (a a)* | (a a)* has redundant structure; minimal DFA for
        // even-length a-strings has 2 states.
        let (dfa, _) = min_dfa("(a a)* | (a a)*");
        assert_eq!(dfa.n_states(), 2);
    }

    #[test]
    fn language_preserved() {
        let (dfa, l) = min_dfa("a b* c | a c");
        assert!(dfa.accepts(&w(&l, &["a", "c"])));
        assert!(dfa.accepts(&w(&l, &["a", "b", "c"])));
        assert!(dfa.accepts(&w(&l, &["a", "b", "b", "c"])));
        assert!(!dfa.accepts(&w(&l, &["a", "b"])));
        assert!(!dfa.accepts(&w(&l, &["c"])));
    }

    #[test]
    fn trim_removes_dead_states() {
        // All states in a minimized DFA must be useful (can reach accept),
        // except possibly the start.
        let (dfa, _) = min_dfa("a b c d");
        assert_eq!(dfa.n_states(), 5); // chain of 5 states, no sink
        for s in 0..dfa.n_states() {
            let s = StateId(s as u32);
            // Every state must reach an accepting state.
            let mut seen = vec![false; dfa.n_states()];
            let mut stack = vec![s];
            seen[s.index()] = true;
            let mut ok = dfa.is_accepting(s);
            while let Some(q) = stack.pop() {
                for &l in dfa.alphabet() {
                    if let Some(t) = dfa.next(q, l) {
                        if !seen[t.index()] {
                            seen[t.index()] = true;
                            if dfa.is_accepting(t) {
                                ok = true;
                            }
                            stack.push(t);
                        }
                    }
                }
            }
            assert!(ok, "state {s} is dead");
        }
    }

    #[test]
    fn empty_language_yields_single_state() {
        // !( everything over {a} ) — i.e. !(a*) is the empty language
        // over alphabet {a}.
        let (dfa, l) = min_dfa("!(a*)");
        assert_eq!(dfa.n_states(), 1);
        assert!(!dfa.accepts_empty());
        assert!(!dfa.accepts(&w(&l, &["a"])));
    }

    #[test]
    fn start_state_is_zero() {
        for q in ["a*", "a b c", "(a | b)+ c?"] {
            let (dfa, _) = min_dfa(q);
            assert_eq!(dfa.start(), StateId(0));
        }
    }

    #[test]
    fn minimize_is_idempotent() {
        let (dfa, l) = min_dfa("(a | b)* c (a | c)?");
        let again = minimize(&dfa);
        assert_eq!(dfa.n_states(), again.n_states());
        for word in [
            vec![],
            w(&l, &["c"]),
            w(&l, &["a", "c"]),
            w(&l, &["c", "a"]),
            w(&l, &["b", "b", "c", "c"]),
        ] {
            assert_eq!(dfa.accepts(&word), again.accepts(&word));
        }
    }

    #[test]
    fn brute_force_equivalence_on_short_words() {
        // Compare minimized DFA with direct NFA acceptance for all words
        // up to length 5 over a 2-letter alphabet.
        let mut labels = LabelInterner::new();
        let regex = parse("a (b a)* b?").unwrap();
        let nfa = Nfa::build(&regex, &mut labels);
        let alphabet: Vec<Label> = regex
            .alphabet()
            .into_iter()
            .map(|n| labels.get(n).unwrap())
            .collect();
        let dfa = minimize(&Dfa::from_nfa(&nfa, &alphabet));
        let syms = [labels.get("a").unwrap(), labels.get("b").unwrap()];
        for len in 0..=5usize {
            for mask in 0..(1usize << len) {
                let word: Vec<Label> = (0..len).map(|i| syms[(mask >> i) & 1]).collect();
                assert_eq!(dfa.accepts(&word), nfa.accepts(&word), "word {word:?}");
            }
        }
    }
}
