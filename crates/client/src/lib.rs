//! Thin client library for the `srpq_server` protocol.
//!
//! One [`Client`] wraps one TCP connection. All request/reply commands
//! borrow the client; [`Client::subscribe`] consumes it, because a
//! subscribed session is a one-way push stream from then on.
//!
//! ```no_run
//! use srpq_client::Client;
//! use srpq_common::{Label, StreamTuple, Timestamp, VertexId};
//!
//! let mut c = Client::connect("127.0.0.1:7878").unwrap();
//! let ids = c.map_labels(&["knows".into(), "likes".into()]).unwrap();
//! let t = StreamTuple::insert(Timestamp(1), VertexId(0), VertexId(1), ids[0]);
//! let ack = c.ingest(&[t]).unwrap();
//! assert_eq!(ack.seq, 1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

use srpq_common::{Label, StreamTuple};
pub use srpq_server::protocol::{
    EventWire, ExplainWire, LabelRoute, ResultEntry, SpanWire, SubPolicy as SubscriptionPolicy,
};
use srpq_server::protocol::{Msg, QueryInfo, StatsSnapshot, SubPolicy, PROTO_VERSION};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// What the server told us at connect time.
#[derive(Debug, Clone, Copy)]
pub struct ServerInfo {
    /// Tuples the server has already accepted (resume point for ingest
    /// clients).
    pub seq: u64,
    /// Whether the server runs with a write-ahead log.
    pub durable: bool,
}

/// An ingest acknowledgement.
#[derive(Debug, Clone, Copy)]
pub struct Ack {
    /// Total tuples the server has accepted after this batch.
    pub seq: u64,
    /// Whether the batch hit the write-ahead log before the ack.
    pub durable: bool,
}

/// One event on a subscription stream.
#[derive(Debug, Clone)]
pub enum SubEvent {
    /// A batch of results in emission order.
    Results(Vec<ResultEntry>),
    /// `count` results were dropped since the last tally (drop-policy
    /// subscriptions only).
    Dropped(u64),
}

/// A connected request/reply session.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    info: ServerInfo,
}

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Client {
    /// Connects and performs the handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut client = Client {
            reader,
            writer,
            info: ServerInfo {
                seq: 0,
                durable: false,
            },
        };
        match client.call(Msg::Hello {
            proto: PROTO_VERSION,
        })? {
            Msg::HelloAck { seq, durable, .. } => {
                client.info = ServerInfo { seq, durable };
                Ok(client)
            }
            other => Err(proto_err(format!("unexpected handshake reply {other:?}"))),
        }
    }

    /// The handshake snapshot (accepted sequence, durability).
    pub fn server_info(&self) -> ServerInfo {
        self.info
    }

    fn call(&mut self, msg: Msg) -> io::Result<Msg> {
        msg.write_to(&mut self.writer)?;
        self.writer.flush()?;
        match Msg::read_from(&mut self.reader)? {
            Some(Msg::Error { msg }) => Err(io::Error::other(msg)),
            Some(reply) => Ok(reply),
            None => Err(proto_err("server closed the connection mid-request")),
        }
    }

    /// Interns `names` server-side; returns the server label ids in the
    /// same order. Ingest tuples must carry these ids.
    pub fn map_labels(&mut self, names: &[String]) -> io::Result<Vec<Label>> {
        match self.call(Msg::MapLabels {
            names: names.to_vec(),
        })? {
            Msg::LabelIds { ids } => Ok(ids.into_iter().map(Label).collect()),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Sends one batch; blocks until the server acks it (WAL-durable
    /// when the server runs with a WAL). Batches over the frame-payload
    /// cap (~3.1M tuples) are refused locally — chunk them instead.
    pub fn ingest(&mut self, tuples: &[StreamTuple]) -> io::Result<Ack> {
        let bytes = tuples.len() * srpq_common::wire::TUPLE_WIRE_SIZE;
        if bytes > srpq_common::frame::MAX_FRAME_PAYLOAD as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "batch of {} tuples ({bytes} bytes) exceeds the frame cap; \
                     split it into smaller batches",
                    tuples.len()
                ),
            ));
        }
        match self.call(Msg::Ingest {
            tuples: tuples.to_vec(),
        })? {
            Msg::IngestAck { seq, durable } => Ok(Ack { seq, durable }),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Registers a query at runtime; `backfill` replays the live window
    /// into it so it reports over current content immediately.
    pub fn add_query(
        &mut self,
        name: &str,
        regex: &str,
        simple: bool,
        backfill: bool,
    ) -> io::Result<u32> {
        match self.call(Msg::AddQuery {
            name: name.into(),
            regex: regex.into(),
            simple,
            backfill,
        })? {
            Msg::QueryAdded { id } => Ok(id),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Deregisters the live query registered under `name`.
    pub fn remove_query(&mut self, name: &str) -> io::Result<u32> {
        match self.call(Msg::RemoveQuery { name: name.into() })? {
            Msg::QueryRemoved { id } => Ok(id),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Lists the live queries.
    pub fn list_queries(&mut self) -> io::Result<Vec<QueryInfo>> {
        match self.call(Msg::ListQueries)? {
            Msg::QueryList { queries } => Ok(queries),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Blocks until everything accepted so far is evaluated and every
    /// subscriber's socket is flushed; returns the fenced sequence.
    pub fn drain(&mut self) -> io::Result<u64> {
        match self.call(Msg::Drain)? {
            Msg::Drained { seq } => Ok(seq),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Forces a checkpoint; returns the WAL sequence it covers.
    pub fn checkpoint(&mut self) -> io::Result<u64> {
        match self.call(Msg::Checkpoint)? {
            Msg::CheckpointDone { seq } => Ok(seq),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Server-wide counters.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.call(Msg::Stats)? {
            Msg::ServerStats(s) => Ok(s),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// The server's metrics in Prometheus text exposition format (the
    /// same document `GET /metrics` serves when the server runs with a
    /// metrics listener).
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.call(Msg::Metrics)? {
            Msg::MetricsText { text } => Ok(text),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Structured events from the server's bounded journal with
    /// sequence numbers strictly greater than `since` (pass 0 for
    /// everything still retained), plus the count of events after
    /// `since` the bounded journal has already overwritten — nonzero
    /// means the replay has a gap at its start.
    pub fn events(&mut self, since: u64) -> io::Result<(Vec<EventWire>, u64)> {
        match self.call(Msg::Events { since })? {
            Msg::EventList { events, dropped } => Ok((events, dropped)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// The server's retained causal-trace spans (sampled ingest
    /// batches; empty unless the server runs with `--trace-sample`).
    pub fn trace(&mut self) -> io::Result<Vec<SpanWire>> {
        match self.call(Msg::Trace)? {
            Msg::TraceList { spans } => Ok(spans),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// The introspection report for the live query registered under
    /// `name`: minimized-DFA shape, Δ-forest profile, routing fan-in,
    /// and evaluation time share.
    pub fn explain(&mut self, name: &str) -> io::Result<ExplainWire> {
        match self.call(Msg::Explain { name: name.into() })? {
            Msg::ExplainReport(x) => Ok(x),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Asks the server to shut down gracefully (drain, checkpoint,
    /// close); consumes the client.
    pub fn shutdown(mut self) -> io::Result<()> {
        match self.call(Msg::Shutdown)? {
            Msg::ShuttingDown => Ok(()),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Converts this session into a push stream. `queries` filters by
    /// registration name (empty = everything, including queries
    /// registered later); `capacity` bounds the server-side queue in
    /// result frames (0 = server default).
    pub fn subscribe(
        mut self,
        queries: &[String],
        policy: SubPolicy,
        capacity: u32,
    ) -> io::Result<Subscription> {
        match self.call(Msg::Subscribe {
            queries: queries.to_vec(),
            policy,
            capacity,
        })? {
            Msg::SubAck { matched } => Ok(Subscription {
                reader: self.reader,
                matched,
            }),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }
}

/// A subscribed session: a blocking stream of [`SubEvent`]s.
pub struct Subscription {
    reader: BufReader<TcpStream>,
    matched: u32,
}

impl Subscription {
    /// Live queries the filter matched at subscribe time.
    pub fn matched(&self) -> u32 {
        self.matched
    }

    /// Blocks for the next event; `Ok(None)` when the stream ended
    /// (server shutdown or connection closed).
    pub fn next_event(&mut self) -> io::Result<Option<SubEvent>> {
        loop {
            return match Msg::read_from(&mut self.reader) {
                Ok(None) | Ok(Some(Msg::ShuttingDown)) => Ok(None),
                Ok(Some(Msg::Results { entries })) => Ok(Some(SubEvent::Results(entries))),
                Ok(Some(Msg::Dropped { count })) => Ok(Some(SubEvent::Dropped(count))),
                Ok(Some(_)) => continue,
                // A reset mid-read after ShuttingDown raced the close is
                // still an orderly end of stream for a subscriber.
                Err(e) if e.kind() == io::ErrorKind::ConnectionReset => Ok(None),
                Err(e) => Err(e),
            };
        }
    }

    /// Collects every remaining result entry until the stream ends
    /// (convenience for tests and batch consumers).
    pub fn collect_to_end(mut self) -> io::Result<(Vec<ResultEntry>, u64)> {
        let mut entries = Vec::new();
        let mut dropped = 0;
        while let Some(ev) = self.next_event()? {
            match ev {
                SubEvent::Results(mut batch) => entries.append(&mut batch),
                SubEvent::Dropped(n) => dropped += n,
            }
        }
        Ok((entries, dropped))
    }
}
