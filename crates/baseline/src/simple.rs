//! Batch RPQ evaluation under simple path semantics.
//!
//! Two implementations with different roles:
//!
//! * [`evaluate_simple_bruteforce`] — exhaustive DFS over simple paths.
//!   Worst-case exponential, but unconditionally correct: this is the
//!   ground-truth oracle the property tests compare both the streaming
//!   RSPQ engine and the Mendelzon–Wood DFS against.
//! * [`evaluate_simple_mw`] — the Mendelzon–Wood marking DFS (ref. 54,
//!   §4 "Batch Algorithm"): prunes re-visits of marked product nodes,
//!   with markings withheld below detected conflicts. `O(n·m)` per
//!   source in the absence of conflicts.

use srpq_automata::{CompiledQuery, Dfa};
use srpq_common::{FxHashSet, ResultPair, StateId, Timestamp, VertexId};
use srpq_graph::WindowGraph;

/// Exhaustive simple-path evaluation (the oracle). A path is *simple*
/// if it repeats no vertex; following the paper's examples, a path whose
/// only repetition is `source = target` (a simple cycle) is **not**
/// simple — `⟨x, y, u, v, y⟩` is rejected for repeating `y`.
pub fn evaluate_simple_bruteforce(
    graph: &WindowGraph,
    watermark: Timestamp,
    dfa: &Dfa,
) -> FxHashSet<ResultPair> {
    let mut results = FxHashSet::default();
    for x in graph.vertices(watermark) {
        let mut on_path: FxHashSet<VertexId> = FxHashSet::default();
        on_path.insert(x);
        dfs_brute(
            graph,
            watermark,
            dfa,
            x,
            x,
            dfa.start(),
            &mut on_path,
            &mut results,
        );
    }
    results
}

#[allow(clippy::too_many_arguments)]
fn dfs_brute(
    graph: &WindowGraph,
    watermark: Timestamp,
    dfa: &Dfa,
    x: VertexId,
    v: VertexId,
    s: StateId,
    on_path: &mut FxHashSet<VertexId>,
    results: &mut FxHashSet<ResultPair>,
) {
    for &(label, t) in dfa.transitions_from(s) {
        for e in graph.out_edges(v, label, watermark) {
            if on_path.contains(&e.other) {
                continue; // would repeat a vertex
            }
            if dfa.is_accepting(t) {
                results.insert(ResultPair::new(x, e.other));
            }
            on_path.insert(e.other);
            dfs_brute(graph, watermark, dfa, x, e.other, t, on_path, results);
            on_path.remove(&e.other);
        }
    }
}

/// The Mendelzon–Wood marking DFS. For each source `x`, DFS the product
/// graph; a node `(v, t)` is *marked* once its subtree has been fully
/// explored without conflicts, and marked nodes prune later traversals.
/// A traversal may revisit a vertex when suffix-language containment
/// holds (the witness path can be made simple); when containment fails
/// — a conflict — the extension is dropped and no ancestor gets marked.
pub fn evaluate_simple_mw(
    graph: &WindowGraph,
    watermark: Timestamp,
    query: &CompiledQuery,
) -> FxHashSet<ResultPair> {
    let dfa = query.dfa();
    let mut results = FxHashSet::default();
    for x in graph.vertices(watermark) {
        let mut marked: FxHashSet<(VertexId, StateId)> = FxHashSet::default();
        let mut path: Vec<(VertexId, StateId)> = vec![(x, dfa.start())];
        mw_dfs(
            graph,
            watermark,
            query,
            x,
            x,
            dfa.start(),
            &mut path,
            &mut marked,
            &mut results,
        );
    }
    results
}

/// Returns whether the subtree below `(v, s)` was conflict-free (and
/// hence `(v, s)` may be marked by the caller).
#[allow(clippy::too_many_arguments)]
fn mw_dfs(
    graph: &WindowGraph,
    watermark: Timestamp,
    query: &CompiledQuery,
    x: VertexId,
    v: VertexId,
    s: StateId,
    path: &mut Vec<(VertexId, StateId)>,
    marked: &mut FxHashSet<(VertexId, StateId)>,
    results: &mut FxHashSet<ResultPair>,
) -> bool {
    let dfa = query.dfa();
    let containment = query.containment();
    let mut clean = true;
    for &(label, t) in dfa.transitions_from(s) {
        for e in graph.out_edges(v, label, watermark) {
            let w = e.other;
            if path.iter().any(|&(pv, ps)| pv == w && ps == t) {
                continue; // product-graph cycle
            }
            if let Some(&(_, q)) = path.iter().find(|&&(pv, _)| pv == w) {
                if !containment.contains(q, t) {
                    // Conflict (Definition 16): cannot justify the
                    // re-visit, and ancestors must not be marked.
                    clean = false;
                    continue;
                }
            }
            if marked.contains(&(w, t)) {
                continue;
            }
            if dfa.is_accepting(t) {
                results.insert(ResultPair::new(x, w));
            }
            path.push((w, t));
            let sub_clean = mw_dfs(graph, watermark, query, x, w, t, path, marked, results);
            path.pop();
            if sub_clean {
                marked.insert((w, t));
            } else {
                clean = false;
            }
        }
    }
    clean
}

#[cfg(test)]
mod tests {
    use super::*;
    use srpq_common::{Label, LabelInterner};

    const NEG: Timestamp = Timestamp(i64::MIN);

    fn graph_from(edges: &[(u32, u32, Label)]) -> WindowGraph {
        let mut g = WindowGraph::new();
        for (i, &(u, v, l)) in edges.iter().enumerate() {
            g.insert(VertexId(u), VertexId(v), l, Timestamp(i as i64 + 1));
        }
        g
    }

    fn compile(q: &str) -> (CompiledQuery, LabelInterner) {
        let mut labels = LabelInterner::new();
        let cq = CompiledQuery::compile(q, &mut labels).unwrap();
        (cq, labels)
    }

    #[test]
    fn brute_force_rejects_vertex_repetition() {
        // Figure 1 motivating case: only witness for (x, y) repeats y.
        let (cq, l) = compile("(follows mentions)+");
        let f = l.get("follows").unwrap();
        let m = l.get("mentions").unwrap();
        // x=0 y=1 u=2 v=3: x→y→u→v→y.
        let g = graph_from(&[(0, 1, f), (1, 2, m), (2, 3, f), (3, 1, m)]);
        let res = evaluate_simple_bruteforce(&g, NEG, cq.dfa());
        assert!(res.contains(&ResultPair::new(VertexId(0), VertexId(2))));
        assert!(!res.contains(&ResultPair::new(VertexId(0), VertexId(1))));
    }

    #[test]
    fn brute_force_finds_alternative_simple_path() {
        // Example 4.2: adding x→z→u makes (x, y) answerable via the
        // simple path x→z→u→v→y.
        let (cq, l) = compile("(follows mentions)+");
        let f = l.get("follows").unwrap();
        let m = l.get("mentions").unwrap();
        // x=0 y=1 z=2 u=3 v=4
        let g = graph_from(&[
            (0, 1, f),
            (1, 3, m),
            (3, 4, f),
            (4, 1, m),
            (0, 2, f),
            (2, 3, m),
        ]);
        let res = evaluate_simple_bruteforce(&g, NEG, cq.dfa());
        assert!(res.contains(&ResultPair::new(VertexId(0), VertexId(1))));
    }

    #[test]
    fn mw_matches_bruteforce_on_examples() {
        for (q, edges) in [
            (
                "a+",
                vec![(0u32, 1u32, 0u32), (1, 2, 0), (2, 0, 0), (1, 3, 0)],
            ),
            ("a b*", vec![(0, 1, 0), (1, 2, 1), (2, 3, 1), (3, 1, 1)]),
            (
                "(a b)+",
                vec![
                    (0, 1, 0),
                    (1, 2, 1),
                    (2, 3, 0),
                    (3, 0, 1),
                    (0, 4, 0),
                    (4, 2, 1),
                ],
            ),
        ] {
            let mut labels = LabelInterner::new();
            labels.intern("a");
            labels.intern("b");
            let cq = CompiledQuery::compile(q, &mut labels).unwrap();
            let g = graph_from(
                &edges
                    .iter()
                    .map(|&(u, v, l)| (u, v, Label(l)))
                    .collect::<Vec<_>>(),
            );
            let brute = evaluate_simple_bruteforce(&g, NEG, cq.dfa());
            let mw = evaluate_simple_mw(&g, NEG, &cq);
            assert_eq!(brute, mw, "query {q}");
        }
    }

    #[test]
    fn simple_subset_of_arbitrary() {
        let (cq, l) = compile("(a | b)+");
        let a = l.get("a").unwrap();
        let b = l.get("b").unwrap();
        let g = graph_from(&[(0, 1, a), (1, 2, b), (2, 0, a), (2, 3, b), (3, 2, a)]);
        let simple = evaluate_simple_bruteforce(&g, NEG, cq.dfa());
        let arbitrary = crate::batch::evaluate_arbitrary(&g, NEG, cq.dfa());
        for p in &simple {
            assert!(arbitrary.contains(p), "simple ⊄ arbitrary at {p}");
        }
    }

    #[test]
    fn acyclic_graph_semantics_coincide() {
        let (cq, l) = compile("a+");
        let a = l.get("a").unwrap();
        // A DAG: every path is simple.
        let g = graph_from(&[(0, 1, a), (0, 2, a), (1, 3, a), (2, 3, a), (3, 4, a)]);
        let simple = evaluate_simple_bruteforce(&g, NEG, cq.dfa());
        let arbitrary = crate::batch::evaluate_arbitrary(&g, NEG, cq.dfa());
        assert_eq!(simple, arbitrary);
    }
}
