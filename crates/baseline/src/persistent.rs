//! The Virtuoso emulation (§5.6): persistent query evaluation by
//! per-tuple batch re-evaluation.
//!
//! The paper builds a middle layer over Virtuoso that inserts each
//! incoming tuple and re-evaluates the RPQ over the RDF graph built from
//! the current window content. [`ReevalEngine`] reproduces that
//! architecture with our own batch evaluator as the "RDF system": no
//! state is carried between tuples, so each tuple costs a full
//! `O(n·m·k²)` evaluation — the gap to the incremental engines is what
//! Figure 11 measures.

use crate::batch;
use srpq_automata::CompiledQuery;
use srpq_common::{FxHashSet, ResultPair, StreamTuple, Timestamp};
use srpq_core::sink::ResultSink;
use srpq_graph::{WindowGraph, WindowPolicy};

/// A persistent-query engine that re-runs the batch algorithm on the
/// window snapshot for every arriving tuple.
pub struct ReevalEngine {
    query: CompiledQuery,
    window: WindowPolicy,
    graph: WindowGraph,
    emitted: FxHashSet<ResultPair>,
    now: Timestamp,
    tuples_processed: u64,
}

impl ReevalEngine {
    /// Creates the engine.
    pub fn new(query: CompiledQuery, window: WindowPolicy) -> ReevalEngine {
        ReevalEngine {
            query,
            window,
            graph: WindowGraph::new(),
            emitted: FxHashSet::default(),
            now: Timestamp::NEG_INFINITY,
            tuples_processed: 0,
        }
    }

    /// The window graph.
    pub fn graph(&self) -> &WindowGraph {
        &self.graph
    }

    /// Number of distinct pairs reported so far.
    pub fn result_count(&self) -> usize {
        self.emitted.len()
    }

    /// Whether `pair` has been reported.
    pub fn has_result(&self, pair: ResultPair) -> bool {
        self.emitted.contains(&pair)
    }

    /// Tuples processed (label-relevant only).
    pub fn tuples_processed(&self) -> u64 {
        self.tuples_processed
    }

    /// Processes one tuple: update the window, then re-evaluate the
    /// query from scratch on the snapshot, emitting newly appearing
    /// pairs (implicit window semantics).
    pub fn process<S: ResultSink>(&mut self, tuple: StreamTuple, sink: &mut S) {
        let prev = self.now;
        if tuple.ts > self.now {
            self.now = tuple.ts;
        }
        if prev != Timestamp::NEG_INFINITY && self.window.crosses_slide(prev, self.now) {
            self.graph
                .purge_expired(self.window.lazy_watermark(self.now));
        }
        if !self.query.dfa().knows_label(tuple.label) {
            return;
        }
        self.tuples_processed += 1;
        match tuple.op {
            srpq_common::Op::Insert => {
                self.graph
                    .insert(tuple.edge.src, tuple.edge.dst, tuple.label, tuple.ts);
            }
            srpq_common::Op::Delete => {
                self.graph
                    .remove(tuple.edge.src, tuple.edge.dst, tuple.label);
            }
        }
        // Full re-evaluation over the current snapshot — the emulated
        // system cannot reuse previous computation.
        let wm = self.window.watermark(self.now);
        let results = batch::evaluate_arbitrary(&self.graph, wm, self.query.dfa());
        for pair in results {
            if self.emitted.insert(pair) {
                sink.emit(pair, self.now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srpq_common::{LabelInterner, VertexId};
    use srpq_core::sink::CollectSink;

    #[test]
    fn matches_incremental_engine_results() {
        let mut labels = LabelInterner::new();
        let query = CompiledQuery::compile("a b*", &mut labels).unwrap();
        let a = labels.get("a").unwrap();
        let b = labels.get("b").unwrap();
        let window = WindowPolicy::new(100, 10);

        let mut reeval = ReevalEngine::new(query.clone(), window);
        let mut incremental =
            srpq_core::rapq::RapqEngine::new(query, srpq_core::EngineConfig::with_window(window));

        let stream = [
            StreamTuple::insert(Timestamp(1), VertexId(0), VertexId(1), a),
            StreamTuple::insert(Timestamp(2), VertexId(1), VertexId(2), b),
            StreamTuple::insert(Timestamp(3), VertexId(2), VertexId(3), b),
            StreamTuple::insert(Timestamp(4), VertexId(3), VertexId(1), b),
            StreamTuple::insert(Timestamp(5), VertexId(2), VertexId(0), a),
        ];
        let mut s1 = CollectSink::default();
        let mut s2 = CollectSink::default();
        for t in stream {
            reeval.process(t, &mut s1);
            incremental.process(t, &mut s2);
        }
        assert_eq!(s1.pairs(), s2.pairs());
        assert!(reeval.result_count() > 0);
    }

    #[test]
    fn window_expiry_limits_results() {
        let mut labels = LabelInterner::new();
        let query = CompiledQuery::compile("a a", &mut labels).unwrap();
        let a = labels.get("a").unwrap();
        let mut engine = ReevalEngine::new(query, WindowPolicy::new(5, 1));
        let mut sink = CollectSink::default();
        engine.process(
            StreamTuple::insert(Timestamp(1), VertexId(0), VertexId(1), a),
            &mut sink,
        );
        engine.process(
            StreamTuple::insert(Timestamp(20), VertexId(1), VertexId(2), a),
            &mut sink,
        );
        assert_eq!(engine.result_count(), 0);
    }

    #[test]
    fn deletions_shrink_window() {
        let mut labels = LabelInterner::new();
        let query = CompiledQuery::compile("a", &mut labels).unwrap();
        let a = labels.get("a").unwrap();
        let mut engine = ReevalEngine::new(query, WindowPolicy::new(100, 10));
        let mut sink = CollectSink::default();
        engine.process(
            StreamTuple::insert(Timestamp(1), VertexId(0), VertexId(1), a),
            &mut sink,
        );
        assert_eq!(engine.graph().n_edges(), 1);
        engine.process(
            StreamTuple::delete(Timestamp(2), VertexId(0), VertexId(1), a),
            &mut sink,
        );
        assert_eq!(engine.graph().n_edges(), 0);
        // Implicit window semantics: the earlier emission stands.
        assert_eq!(engine.result_count(), 1);
    }
}
