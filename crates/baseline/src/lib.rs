//! Batch RPQ baselines.
//!
//! Three roles in the reproduction:
//!
//! 1. **Correctness oracles**: [`batch::evaluate_arbitrary`] (product
//!    graph BFS) and [`simple::evaluate_simple_bruteforce`] (exhaustive
//!    simple-path DFS) define ground truth for the streaming engines'
//!    result sets; the integration and property tests compare against
//!    them on every prefix snapshot.
//! 2. **Batch comparators**: [`simple::evaluate_simple_mw`] implements
//!    the Mendelzon–Wood marking DFS the paper's §4 builds on.
//! 3. **The Virtuoso emulation** (Figure 11): [`persistent::ReevalEngine`]
//!    re-evaluates the batch algorithm on the window content for every
//!    arriving tuple — exactly the middle-layer emulation of §5.6 — to
//!    quantify the benefit of incremental maintenance.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod persistent;
pub mod simple;

pub use batch::{evaluate_arbitrary, evaluate_arbitrary_from};
pub use persistent::ReevalEngine;
pub use simple::{evaluate_simple_bruteforce, evaluate_simple_mw};
