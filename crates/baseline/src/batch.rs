//! Batch RPQ evaluation under arbitrary path semantics (§3, "Batch
//! Algorithm").
//!
//! There is a path `x ⇝ y` in `G` with label in `L(R)` iff there is a
//! path in the product graph `P_{G,A}` from `(x, s0)` to `(y, s_f)` for
//! some final `s_f`. The batch algorithm BFSes the product graph from
//! every `(x, s0)`, giving `O(n · m · k²)` total.

use srpq_automata::Dfa;
use srpq_common::{FxHashSet, ResultPair, StateId, Timestamp, VertexId};
use srpq_graph::WindowGraph;
use std::collections::VecDeque;

/// All pairs `(x, y)` connected in the snapshot `G_{W,τ}` (edges with
/// `ts > watermark`) by a path with label in `L(R)` — arbitrary path
/// semantics. Pairs `(x, x)` via the empty path are *not* reported (the
/// streaming engines share this convention; see DESIGN.md).
pub fn evaluate_arbitrary(
    graph: &WindowGraph,
    watermark: Timestamp,
    dfa: &Dfa,
) -> FxHashSet<ResultPair> {
    let mut results = FxHashSet::default();
    for x in graph.vertices(watermark) {
        collect_from(graph, watermark, dfa, x, &mut results);
    }
    results
}

/// Single-source variant: all `y` reachable from `x` via an accepting
/// path, as `(x, y)` pairs added to fresh set.
pub fn evaluate_arbitrary_from(
    graph: &WindowGraph,
    watermark: Timestamp,
    dfa: &Dfa,
    x: VertexId,
) -> FxHashSet<ResultPair> {
    let mut results = FxHashSet::default();
    collect_from(graph, watermark, dfa, x, &mut results);
    results
}

fn collect_from(
    graph: &WindowGraph,
    watermark: Timestamp,
    dfa: &Dfa,
    x: VertexId,
    results: &mut FxHashSet<ResultPair>,
) {
    let s0 = dfa.start();
    let mut visited: FxHashSet<(VertexId, StateId)> = FxHashSet::default();
    let mut queue: VecDeque<(VertexId, StateId)> = VecDeque::new();
    visited.insert((x, s0));
    queue.push_back((x, s0));
    while let Some((v, s)) = queue.pop_front() {
        for &(label, t) in dfa.transitions_from(s) {
            for e in graph.out_edges(v, label, watermark) {
                if visited.insert((e.other, t)) {
                    if dfa.is_accepting(t) {
                        results.insert(ResultPair::new(x, e.other));
                    }
                    queue.push_back((e.other, t));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srpq_automata::CompiledQuery;
    use srpq_common::{Label, LabelInterner};

    const NEG: Timestamp = Timestamp(i64::MIN);

    fn graph_from(edges: &[(u32, u32, Label)]) -> WindowGraph {
        let mut g = WindowGraph::new();
        for (i, &(u, v, l)) in edges.iter().enumerate() {
            g.insert(VertexId(u), VertexId(v), l, Timestamp(i as i64 + 1));
        }
        g
    }

    fn compile(q: &str) -> (CompiledQuery, LabelInterner) {
        let mut labels = LabelInterner::new();
        let cq = CompiledQuery::compile(q, &mut labels).unwrap();
        (cq, labels)
    }

    #[test]
    fn figure_1_snapshot() {
        // Snapshot G_{W,18} of Figure 1(b), query Q1.
        let (cq, l) = compile("(follows mentions)+");
        let f = l.get("follows").unwrap();
        let m = l.get("mentions").unwrap();
        // x=0 y=1 z=2 u=3 v=4 w=5
        let g = graph_from(&[
            (1, 3, m), // y→u
            (0, 2, f), // x→z
            (3, 4, f), // u→v
            (2, 5, m), // z→w
            (0, 1, f), // x→y
            (2, 3, m), // z→u
            (3, 0, m), // u→x
            (4, 1, m), // v→y
        ]);
        let res = evaluate_arbitrary(&g, NEG, cq.dfa());
        // (x,u) via x→y→u; (x,y) via x→y→u→v→y; (x,w) via x→z→w; ...
        assert!(res.contains(&ResultPair::new(VertexId(0), VertexId(3))));
        assert!(res.contains(&ResultPair::new(VertexId(0), VertexId(1))));
        assert!(res.contains(&ResultPair::new(VertexId(0), VertexId(5))));
        // y→u is mentions: no follows-first path from y.
        assert!(!res.contains(&ResultPair::new(VertexId(1), VertexId(3))));
    }

    #[test]
    fn empty_graph_empty_results() {
        let (cq, _) = compile("a+");
        let g = WindowGraph::new();
        assert!(evaluate_arbitrary(&g, NEG, cq.dfa()).is_empty());
    }

    #[test]
    fn watermark_excludes_old_edges() {
        let (cq, l) = compile("a b");
        let a = l.get("a").unwrap();
        let b = l.get("b").unwrap();
        let mut g = WindowGraph::new();
        g.insert(VertexId(0), VertexId(1), a, Timestamp(1));
        g.insert(VertexId(1), VertexId(2), b, Timestamp(10));
        assert_eq!(evaluate_arbitrary(&g, NEG, cq.dfa()).len(), 1);
        assert!(evaluate_arbitrary(&g, Timestamp(5), cq.dfa()).is_empty());
    }

    #[test]
    fn single_source_matches_full() {
        let (cq, l) = compile("a+");
        let a = l.get("a").unwrap();
        let g = graph_from(&[(0, 1, a), (1, 2, a), (2, 0, a), (3, 1, a)]);
        let full = evaluate_arbitrary(&g, NEG, cq.dfa());
        for x in 0..4u32 {
            let single = evaluate_arbitrary_from(&g, NEG, cq.dfa(), VertexId(x));
            for p in &single {
                assert!(full.contains(p));
            }
            let expected: FxHashSet<_> = full
                .iter()
                .filter(|p| p.src == VertexId(x))
                .copied()
                .collect();
            assert_eq!(single, expected);
        }
    }

    #[test]
    fn cycle_reaches_self() {
        let (cq, l) = compile("a+");
        let a = l.get("a").unwrap();
        let g = graph_from(&[(0, 1, a), (1, 0, a)]);
        let res = evaluate_arbitrary(&g, NEG, cq.dfa());
        assert!(res.contains(&ResultPair::new(VertexId(0), VertexId(0))));
        assert!(res.contains(&ResultPair::new(VertexId(1), VertexId(1))));
        assert_eq!(res.len(), 4);
    }
}
