//! Streaming graph tuples and result pairs.
//!
//! A *streaming graph tuple* (sgt, Definition 2) is a quadruple
//! `(τ, e, l, op)`: an event timestamp, a directed edge, an edge label,
//! and an operation (insert `+` or explicit delete `−`). A *streaming
//! graph* (Definition 3) is an unbounded sequence of sgts in
//! non-decreasing timestamp order.

use crate::ids::{Label, Timestamp, VertexId};
use std::fmt;

/// The operation carried by a streaming graph tuple: an edge insertion or
/// an explicit deletion (a *negative tuple*, §3.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Op {
    /// Edge insertion (`+`).
    #[default]
    Insert,
    /// Explicit edge deletion (`−`).
    Delete,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Insert => write!(f, "+"),
            Op::Delete => write!(f, "-"),
        }
    }
}

/// A directed edge `(source, target)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Edge {
    /// Source vertex `u`.
    pub src: VertexId,
    /// Target vertex `v`.
    pub dst: VertexId,
}

impl Edge {
    /// Creates an edge `u → v`.
    #[inline]
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -> {})", self.src, self.dst)
    }
}

/// A streaming graph tuple (sgt): `(τ, e, l, op)` per Definition 2.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StreamTuple {
    /// Event (application) timestamp `τ`, assigned by the source.
    pub ts: Timestamp,
    /// The directed edge `e = (u, v)`.
    pub edge: Edge,
    /// The edge label `l ∈ Σ`.
    pub label: Label,
    /// Insert (`+`) or explicit delete (`−`).
    pub op: Op,
}

impl StreamTuple {
    /// Creates an insertion sgt.
    #[inline]
    pub fn insert(ts: Timestamp, src: VertexId, dst: VertexId, label: Label) -> Self {
        StreamTuple {
            ts,
            edge: Edge::new(src, dst),
            label,
            op: Op::Insert,
        }
    }

    /// Creates an explicit-deletion (negative) sgt.
    #[inline]
    pub fn delete(ts: Timestamp, src: VertexId, dst: VertexId, label: Label) -> Self {
        StreamTuple {
            ts,
            edge: Edge::new(src, dst),
            label,
            op: Op::Delete,
        }
    }

    /// Whether this tuple is an insertion.
    #[inline]
    pub fn is_insert(&self) -> bool {
        self.op == Op::Insert
    }
}

impl fmt::Display for StreamTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]{} {} {}", self.ts, self.op, self.edge, self.label)
    }
}

/// A query result: a pair of vertices `(x, y)` connected by a path whose
/// label is in `L(R)` (Definition 8). Under the implicit window model the
/// result set is an append-only stream of such pairs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ResultPair {
    /// Path source vertex.
    pub src: VertexId,
    /// Path target vertex.
    pub dst: VertexId,
}

impl ResultPair {
    /// Creates a result pair.
    #[inline]
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        ResultPair { src, dst }
    }
}

impl fmt::Display for ResultPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_op() {
        let t = StreamTuple::insert(Timestamp(4), VertexId(0), VertexId(1), Label(0));
        assert!(t.is_insert());
        let d = StreamTuple::delete(Timestamp(5), VertexId(0), VertexId(1), Label(0));
        assert!(!d.is_insert());
        assert_eq!(d.op, Op::Delete);
    }

    #[test]
    fn display_formats() {
        let t = StreamTuple::insert(Timestamp(4), VertexId(0), VertexId(1), Label(2));
        assert_eq!(t.to_string(), "[4]+ (v0 -> v1) l2");
        assert_eq!(
            ResultPair::new(VertexId(1), VertexId(2)).to_string(),
            "(v1, v2)"
        );
        assert_eq!(Op::Delete.to_string(), "-");
    }

    #[test]
    fn tuple_is_small() {
        // 8 (ts) + 4 + 4 (edge) + 4 (label) + 1 (op) + padding.
        assert!(std::mem::size_of::<StreamTuple>() <= 24);
    }

    #[test]
    fn edge_ordering_is_lexicographic() {
        let a = Edge::new(VertexId(0), VertexId(5));
        let b = Edge::new(VertexId(1), VertexId(0));
        assert!(a < b);
    }
}
