//! Length-prefixed, CRC32-guarded message frames — the unit of the
//! `srpq_server` network protocol.
//!
//! A frame carries one opaque payload tagged with a one-byte kind:
//!
//! ```text
//! frame := u8 kind | u32le payload_len | payload | u32le crc
//! crc   := crc32(kind | payload_len_le | payload)
//! ```
//!
//! The checksum is the same [`mod@crate::crc32`] that guards the WAL,
//! checkpoint, and stream-file formats, so a flipped bit anywhere in a
//! frame — kind, length, or payload — is detected instead of silently
//! mis-decoded. The frame layer knows nothing about payload contents;
//! `srpq_server::protocol` defines the message vocabulary on top.
//!
//! Two API surfaces:
//!
//! * buffer-oriented ([`encode_frame`] / [`decode_frame`]) for tests
//!   and in-memory pipelines;
//! * stream-oriented ([`write_frame`] / [`read_frame`]) over any
//!   `io::Write` / `io::Read`, the form the TCP sessions use. A clean
//!   EOF *between* frames reads as `None` (peer hung up); an EOF inside
//!   a frame is an error (torn frame).

use crate::crc32::Crc32;
use std::io::{self, Read, Write};

/// Header bytes before the payload (kind + length).
pub const FRAME_HEADER_BYTES: usize = 1 + 4;

/// Trailer bytes after the payload (checksum).
pub const FRAME_TRAILER_BYTES: usize = 4;

/// Upper bound on one frame's payload: guards the reader against
/// allocating gigabytes off a corrupt or hostile length field.
pub const MAX_FRAME_PAYLOAD: u32 = 64 << 20;

/// Checksum over the covered region of one frame.
fn frame_crc(kind: u8, payload: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(&[kind]);
    h.update(&(payload.len() as u32).to_le_bytes());
    h.update(payload);
    h.finish()
}

/// Appends one frame to `buf`.
pub fn encode_frame(buf: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD as usize);
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&frame_crc(kind, payload).to_le_bytes());
}

/// Why a buffered frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does. Not corruption per se —
    /// a stream reader would keep the bytes and wait for more.
    Truncated,
    /// The length field exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized(u32),
    /// The checksum does not match the received bytes.
    BadChecksum,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Oversized(n) => write!(f, "frame payload of {n} bytes exceeds the cap"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
        }
    }
}

/// Decodes one frame from the front of `buf`. On success returns the
/// kind, the payload, and the total encoded size (so callers can
/// advance their cursor).
pub fn decode_frame(buf: &[u8]) -> Result<(u8, &[u8], usize), FrameError> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Err(FrameError::Truncated);
    }
    let kind = buf[0];
    let len = u32::from_le_bytes(buf[1..5].try_into().unwrap());
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let total = FRAME_HEADER_BYTES + len as usize + FRAME_TRAILER_BYTES;
    if buf.len() < total {
        return Err(FrameError::Truncated);
    }
    let payload = &buf[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len as usize];
    let stored = u32::from_le_bytes(buf[total - 4..total].try_into().unwrap());
    if stored != frame_crc(kind, payload) {
        return Err(FrameError::BadChecksum);
    }
    Ok((kind, payload, total))
}

/// Writes one frame to `w` (no flush — callers batch and flush).
/// Refuses payloads over [`MAX_FRAME_PAYLOAD`] with `InvalidInput` —
/// the peer would reject the frame anyway, and a clear local error
/// beats a killed session (release builds compile the encode-side
/// assert out).
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_PAYLOAD as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame payload of {} bytes exceeds the {}-byte cap; send smaller batches",
                payload.len(),
                MAX_FRAME_PAYLOAD
            ),
        ));
    }
    let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len() + FRAME_TRAILER_BYTES);
    encode_frame(&mut buf, kind, payload);
    w.write_all(&buf)
}

/// Reads one frame from `r`. Returns `Ok(None)` on a clean EOF before
/// any byte of a frame; a torn frame, oversized length, or checksum
/// mismatch is an `InvalidData` error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Torn => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "connection closed inside a frame header",
            ))
        }
        ReadOutcome::Full => {}
    }
    let kind = header[0];
    let len = u32::from_le_bytes(header[1..5].try_into().unwrap());
    if len > MAX_FRAME_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::Oversized(len).to_string(),
        ));
    }
    let mut rest = vec![0u8; len as usize + FRAME_TRAILER_BYTES];
    r.read_exact(&mut rest).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "connection closed inside a frame",
            )
        } else {
            e
        }
    })?;
    let payload_len = len as usize;
    let stored = u32::from_le_bytes(rest[payload_len..].try_into().unwrap());
    rest.truncate(payload_len);
    if stored != frame_crc(kind, &rest) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::BadChecksum.to_string(),
        ));
    }
    Ok(Some((kind, rest)))
}

enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// EOF before the first byte.
    Eof,
    /// EOF after at least one byte.
    Torn,
}

/// `read_exact` that distinguishes a clean EOF at offset 0 from a torn
/// read mid-buffer.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Torn
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = Vec::new();
        encode_frame(&mut buf, 7, b"hello frames");
        encode_frame(&mut buf, 0, b"");
        encode_frame(&mut buf, 255, &[0u8, 1, 2, 3, 254, 255]);
        buf
    }

    #[test]
    fn round_trip_buffer() {
        let buf = sample();
        let (k1, p1, n1) = decode_frame(&buf).unwrap();
        assert_eq!((k1, p1), (7, b"hello frames".as_slice()));
        let (k2, p2, n2) = decode_frame(&buf[n1..]).unwrap();
        assert_eq!((k2, p2.len()), (0, 0));
        let (k3, p3, n3) = decode_frame(&buf[n1 + n2..]).unwrap();
        assert_eq!((k3, p3), (255, [0u8, 1, 2, 3, 254, 255].as_slice()));
        assert_eq!(n1 + n2 + n3, buf.len());
    }

    #[test]
    fn round_trip_stream() {
        let buf = sample();
        let mut cursor = io::Cursor::new(buf);
        let mut seen = Vec::new();
        while let Some((kind, payload)) = read_frame(&mut cursor).unwrap() {
            seen.push((kind, payload));
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], (7, b"hello frames".to_vec()));
        // Clean EOF keeps answering None.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn write_frame_matches_encode() {
        let mut via_writer = Vec::new();
        write_frame(&mut via_writer, 9, b"abc").unwrap();
        let mut via_encode = Vec::new();
        encode_frame(&mut via_encode, 9, b"abc");
        assert_eq!(via_writer, via_encode);
    }

    #[test]
    fn truncation_sweep_never_panics_and_never_misdecodes() {
        // Every strict prefix of a single frame must decode as
        // Truncated from the buffer API and error (torn) or cleanly EOF
        // (len 0) from the stream API — never yield a frame.
        let mut buf = Vec::new();
        encode_frame(&mut buf, 42, b"payload bytes under test");
        for len in 0..buf.len() {
            let prefix = &buf[..len];
            assert_eq!(
                decode_frame(prefix).unwrap_err(),
                FrameError::Truncated,
                "prefix of {len} bytes"
            );
            let mut cursor = io::Cursor::new(prefix.to_vec());
            match read_frame(&mut cursor) {
                Ok(None) => assert_eq!(len, 0, "only the empty prefix is a clean EOF"),
                Ok(Some(_)) => panic!("prefix of {len} bytes decoded as a frame"),
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData),
            }
        }
    }

    #[test]
    fn bit_flip_sweep_is_always_detected() {
        // Single-bit corruption anywhere in the frame must surface as an
        // error — the length field is covered by the checksum, so even
        // length flips that keep the frame well-formed are caught. Flips
        // that grow the length beyond the buffer read as Truncated;
        // everything else as Oversized or BadChecksum.
        let mut buf = Vec::new();
        encode_frame(&mut buf, 3, b"the quick brown fox");
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut mutated = buf.clone();
                mutated[byte] ^= 1 << bit;
                match decode_frame(&mutated) {
                    Err(_) => {}
                    Ok((kind, payload, _)) => panic!(
                        "flip at byte {byte} bit {bit} decoded as kind {kind} ({} bytes)",
                        payload.len()
                    ),
                }
                // The stream reader must agree (and never panic).
                let mut cursor = io::Cursor::new(mutated);
                assert!(read_frame(&mut cursor).is_err() || byte >= buf.len());
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = vec![1u8];
        buf.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(decode_frame(&buf), Err(FrameError::Oversized(_))));
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
