//! Shared primitives for the `streaming-rpq` workspace.
//!
//! This crate hosts the vocabulary types every other crate speaks:
//!
//! * [`ids`] — compact newtype identifiers for vertices, labels, and
//!   automaton states.
//! * [`interner`] — string interners mapping external names to those ids.
//! * [`hash`] — a fast, deterministic hasher (FxHash) plus map/set aliases,
//!   used on every hot path instead of SipHash.
//! * [`mod@tuple`] — the streaming graph tuple (*sgt*, Definition 2 of the
//!   paper) and result-pair types.
//! * [`histogram`] — a log-bucketed latency histogram used by the
//!   experiment harnesses to report p50/p99/p999.
//! * [`wire`] — a tiny length-prefixed binary codec for persisting streams
//!   of sgts (used by the benchmark harness to snapshot datasets).
//! * [`mod@crc32`] — the shared CRC32 checksum guarding every on-disk artifact
//!   (WAL records, checkpoints, stream files).
//! * [`frame`] — length-prefixed, CRC32-guarded message frames, the unit
//!   of the `srpq_server` network protocol.
//! * [`beacon`] — relaxed-atomic stage beacons published by engine and
//!   worker threads, sampled by the std-only profiler in `srpq_obs`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod beacon;
pub mod crc32;
pub mod frame;
pub mod hash;
pub mod histogram;
pub mod ids;
pub mod interner;
pub mod tuple;
pub mod wire;

pub use beacon::StageBeacon;
pub use crc32::{crc32, Crc32};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use histogram::LatencyHistogram;
pub use ids::{Label, StateId, Timestamp, VertexId};
pub use interner::{Interner, LabelInterner, VertexInterner};
pub use tuple::{Edge, Op, ResultPair, StreamTuple};
