//! String interners mapping external names to dense ids.
//!
//! Streaming graph sources identify vertices and labels by strings (user
//! names, RDF IRIs, predicate names). The algorithms want dense `u32` ids:
//! the Δ index stores `(VertexId, StateId)` pairs by the tens of millions
//! (Figure 5), and DFA transition tables are indexed by `Label`. A generic
//! [`Interner`] provides the mapping; [`VertexInterner`] and
//! [`LabelInterner`] are the two typed instantiations.

use crate::hash::FxHashMap;
use crate::ids::{Label, VertexId};

/// A generic string interner producing dense `u32`-backed ids.
///
/// Ids are handed out in first-seen order starting at 0, so they can be
/// used directly as `Vec` indices.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    by_name: FxHashMap<Box<str>, u32>,
    names: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner with capacity for `n` symbols.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            by_name: FxHashMap::with_capacity_and_hasher(n, Default::default()),
            names: Vec::with_capacity(n),
        }
    }

    /// Interns `name`, returning its dense id (allocating one if new).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("more than u32::MAX interned symbols");
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.by_name.insert(boxed, id);
        id
    }

    /// Looks up an already-interned name without allocating.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Resolves an id back to its name.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(AsRef::as_ref)
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_ref()))
    }
}

/// An interner producing [`VertexId`]s.
#[derive(Debug, Default, Clone)]
pub struct VertexInterner(Interner);

impl VertexInterner {
    /// Creates an empty vertex interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a vertex name.
    pub fn intern(&mut self, name: &str) -> VertexId {
        VertexId(self.0.intern(name))
    }

    /// Looks up an already-interned vertex.
    pub fn get(&self, name: &str) -> Option<VertexId> {
        self.0.get(name).map(VertexId)
    }

    /// Resolves a vertex id back to its name.
    pub fn resolve(&self, id: VertexId) -> Option<&str> {
        self.0.resolve(id.0)
    }

    /// Number of interned vertices.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no vertices have been interned.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// An interner producing [`Label`]s (the alphabet Σ).
#[derive(Debug, Default, Clone)]
pub struct LabelInterner(Interner);

impl LabelInterner {
    /// Creates an empty label interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a label name.
    pub fn intern(&mut self, name: &str) -> Label {
        Label(self.0.intern(name))
    }

    /// Looks up an already-interned label.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.0.get(name).map(Label)
    }

    /// Resolves a label back to its name.
    pub fn resolve(&self, label: Label) -> Option<&str> {
        self.0.resolve(label.0)
    }

    /// Number of distinct labels (|Σ|).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over `(Label, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> {
        self.0.iter().map(|(id, n)| (Label(id), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("follows");
        let b = i.intern("mentions");
        assert_eq!(i.intern("follows"), a);
        assert_eq!(i.intern("mentions"), b);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("c"), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let id = i.intern("hasCreator");
        assert_eq!(i.resolve(id), Some("hasCreator"));
        assert_eq!(i.resolve(id + 100), None);
    }

    #[test]
    fn get_does_not_allocate_ids() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let id = i.intern("x");
        assert_eq!(i.get("x"), Some(id));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn typed_interners() {
        let mut v = VertexInterner::new();
        let mut l = LabelInterner::new();
        let x = v.intern("x");
        let follows = l.intern("follows");
        assert_eq!(v.resolve(x), Some("x"));
        assert_eq!(l.resolve(follows), Some("follows"));
        assert_eq!(v.len(), 1);
        assert_eq!(l.len(), 1);
        assert!(!v.is_empty());
        assert!(!l.is_empty());
    }

    #[test]
    fn iter_visits_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let collected: Vec<_> = i.iter().collect();
        assert_eq!(collected, vec![(0, "a"), (1, "b")]);
    }
}
