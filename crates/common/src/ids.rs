//! Compact newtype identifiers.
//!
//! The algorithms in the paper operate over three id spaces: graph
//! *vertices*, edge *labels* (the alphabet Σ), and automaton *states*.
//! We keep them as distinct newtypes so they cannot be confused, while
//! remaining `Copy` and 4 bytes each — tree nodes `(VertexId, StateId)`
//! pack into 8 bytes, which matters for the Δ index footprint (Figure 5
//! reports tens of millions of nodes).

use std::fmt;

/// A graph vertex identifier (dense, produced by [`crate::VertexInterner`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VertexId(pub u32);

/// An edge label from the alphabet Σ (dense, produced by
/// [`crate::LabelInterner`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Label(pub u32);

/// A DFA/NFA state identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct StateId(pub u32);

/// An event (application) timestamp, assigned by the data source
/// (Definition 2). Timestamps are non-decreasing within a stream.
///
/// `i64` so the sentinel values used by the algorithms are representable:
/// `Timestamp::NEG_INFINITY` marks subtrees cut by an explicit deletion
/// (§3.2) and `Timestamp::INFINITY` is the timestamp of tree roots (the
/// minimum over an empty path).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Timestamp(pub i64);

impl VertexId {
    /// The vertex id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Label {
    /// The label id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl StateId {
    /// The state id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Timestamp {
    /// Sentinel for "older than everything": marks nodes invalidated by an
    /// explicit deletion so that the expiry pass removes them.
    pub const NEG_INFINITY: Timestamp = Timestamp(i64::MIN);
    /// Sentinel for "newer than everything": the timestamp of a spanning
    /// tree root, i.e. the minimum over an empty set of edges.
    pub const INFINITY: Timestamp = Timestamp(i64::MAX);
    /// The zero timestamp.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Saturating addition of a duration in time units.
    #[inline]
    pub fn saturating_add(self, delta: i64) -> Timestamp {
        Timestamp(self.0.saturating_add(delta))
    }

    /// Saturating subtraction of a duration in time units.
    #[inline]
    pub fn saturating_sub(self, delta: i64) -> Timestamp {
        Timestamp(self.0.saturating_sub(delta))
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Timestamp::NEG_INFINITY => write!(f, "-inf"),
            Timestamp::INFINITY => write!(f, "+inf"),
            Timestamp(t) => write!(f, "{t}"),
        }
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<u32> for Label {
    fn from(v: u32) -> Self {
        Label(v)
    }
}

impl From<u32> for StateId {
    fn from(v: u32) -> Self {
        StateId(v)
    }
}

impl From<i64> for Timestamp {
    fn from(v: i64) -> Self {
        Timestamp(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_order_correctly() {
        assert!(Timestamp::NEG_INFINITY < Timestamp::ZERO);
        assert!(Timestamp::ZERO < Timestamp::INFINITY);
        assert!(Timestamp(5) < Timestamp(6));
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(Timestamp::INFINITY.saturating_add(1), Timestamp::INFINITY);
        assert_eq!(
            Timestamp::NEG_INFINITY.saturating_sub(1),
            Timestamp::NEG_INFINITY
        );
        assert_eq!(Timestamp(10).saturating_sub(3), Timestamp(7));
        assert_eq!(Timestamp(10).saturating_add(3), Timestamp(13));
    }

    #[test]
    fn display_forms() {
        assert_eq!(VertexId(3).to_string(), "v3");
        assert_eq!(Label(2).to_string(), "l2");
        assert_eq!(StateId(1).to_string(), "s1");
        assert_eq!(Timestamp(42).to_string(), "42");
        assert_eq!(Timestamp::INFINITY.to_string(), "+inf");
        assert_eq!(Timestamp::NEG_INFINITY.to_string(), "-inf");
    }

    #[test]
    fn ids_are_compact() {
        assert_eq!(std::mem::size_of::<VertexId>(), 4);
        assert_eq!(std::mem::size_of::<Label>(), 4);
        assert_eq!(std::mem::size_of::<StateId>(), 4);
        assert_eq!(std::mem::size_of::<(VertexId, StateId)>(), 8);
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(VertexId(7).index(), 7);
        assert_eq!(Label::from(9u32), Label(9));
        assert_eq!(StateId::from(2u32).index(), 2);
        assert_eq!(Timestamp::from(11i64), Timestamp(11));
    }
}
