//! A fast, deterministic hasher for hot-path hash maps.
//!
//! The Δ tree index is "a concurrent hash-based index where each vertex is
//! mapped to its corresponding spanning tree, and "each spanning tree is
//! assisted with an additional hash-based index for efficient node
//! look-ups" (§5.1.1). Those lookups happen O(k²) times per incoming tuple,
//! so SipHash (the std default, DoS-resistant but slow on short integer
//! keys) is the wrong trade-off. We implement the well-known FxHash
//! multiply-rotate scheme (as used by rustc) locally — ~30 lines — instead
//! of pulling in an extra dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiply constant for 64-bit hashing (golden-ratio derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast non-cryptographic hasher; identical scheme to `rustc-hash`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("hello"), hash_one("hello"));
        assert_eq!(hash_one((1u32, 2u32)), hash_one((1u32, 2u32)));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one((1u32, 2u32)), hash_one((2u32, 1u32)));
        assert_ne!(hash_one("ab"), hash_one("ba"));
    }

    #[test]
    fn byte_tail_handling() {
        // 9 bytes: one full chunk + 1-byte remainder; must differ from the
        // 8-byte prefix alone.
        let a: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 9];
        let b: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8];
        assert_ne!(hash_one(a), hash_one(b));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));

        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn reasonable_distribution_on_small_ints() {
        // Sanity check: low 12 bits of hashes of 0..4096 should hit many
        // distinct buckets (no catastrophic clustering).
        let mut buckets = std::collections::HashSet::new();
        for i in 0u64..4096 {
            buckets.insert(hash_one(i) & 0xfff);
        }
        assert!(buckets.len() > 2048, "got {} buckets", buckets.len());
    }
}
