//! Stage beacons: lock-free "what is this thread doing right now"
//! markers for the std-only sampling profiler.
//!
//! Each engine or worker thread owns one [`StageBeacon`] and updates it
//! with two relaxed atomic stores as it moves through the batch path
//! (route → extend → expiry → emit → idle). A sampler thread elsewhere
//! reads the beacons at ~997 Hz and accumulates per-stage tick counts —
//! a wall-clock profile with no locks, no syscalls, and no dependency
//! from the engines on any metrics crate (only this vocabulary crate).
//!
//! The `progress` counter exists for the stall watchdog: a beacon that
//! reports a non-idle stage whose progress value has not moved between
//! two watchdog ticks is a thread stuck mid-batch.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Stage codes published through a [`StageBeacon`]. `u8` so a single
/// relaxed store publishes the whole state.
pub mod stage {
    /// Not inside any tracked stage (parked or between batches).
    pub const IDLE: u8 = 0;
    /// Routing tuples to per-query engines (includes shared window
    /// maintenance).
    pub const ROUTE: u8 = 1;
    /// Per-query Δ-tree extension (`process_with_graph`).
    pub const EXTEND: u8 = 2;
    /// Expiry pass over Δ trees / shared graph purge.
    pub const EXPIRY: u8 = 3;
    /// Emitting results to subscribers.
    pub const EMIT: u8 = 4;
    /// Appending to / fsyncing the write-ahead log.
    pub const WAL: u8 = 5;
    /// Blocked handing a finished batch back to the coordinator.
    pub const HANDOFF: u8 = 6;

    /// Human-readable name for a stage code (collapsed-stack frames).
    pub fn name(code: u8) -> &'static str {
        match code {
            IDLE => "idle",
            ROUTE => "route",
            EXTEND => "extend",
            EXPIRY => "expiry",
            EMIT => "emit",
            WAL => "wal",
            HANDOFF => "handoff",
            _ => "unknown",
        }
    }

    /// Number of distinct stage codes (array-sizing constant for
    /// samplers).
    pub const COUNT: usize = 7;
}

/// A per-thread stage marker read by the sampling profiler and the
/// stall watchdog. All operations are relaxed atomics — the readers
/// only need eventually-visible values, never synchronization.
#[derive(Debug, Default)]
pub struct StageBeacon {
    stage: AtomicU8,
    progress: AtomicU64,
}

impl StageBeacon {
    /// Creates a beacon in the idle stage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes the stage this thread is entering.
    #[inline]
    pub fn set(&self, stage: u8) {
        self.stage.store(stage, Ordering::Relaxed);
    }

    /// Bumps the progress counter (call once per unit of work — batch,
    /// tuple group, job — so the watchdog can tell "busy" from
    /// "stuck").
    #[inline]
    pub fn advance(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// Current `(stage, progress)` pair, as last published.
    #[inline]
    pub fn load(&self) -> (u8, u64) {
        (
            self.stage.load(Ordering::Relaxed),
            self.progress.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beacon_publishes_stage_and_progress() {
        let b = StageBeacon::new();
        assert_eq!(b.load(), (stage::IDLE, 0));
        b.set(stage::ROUTE);
        b.advance();
        b.advance();
        assert_eq!(b.load(), (stage::ROUTE, 2));
        b.set(stage::IDLE);
        assert_eq!(b.load().0, stage::IDLE);
    }

    #[test]
    fn stage_names_cover_all_codes() {
        for code in 0..stage::COUNT as u8 {
            assert_ne!(stage::name(code), "unknown", "code {code}");
        }
        assert_eq!(stage::name(200), "unknown");
    }
}
