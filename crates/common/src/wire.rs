//! A compact binary codec for streams of sgts.
//!
//! The benchmark harness generates synthetic streams once and replays them
//! across configurations (the paper replays the same SO/LDBC/Yago streams
//! across experiments). This module provides a deterministic fixed-width
//! little-endian encoding — 21 bytes per tuple (8 + 4 + 4 + 4 + 1) — over plain byte buffers:
//! encoders append to a `Vec<u8>`, decoders consume from a `&[u8]` cursor
//! that advances as tuples are read.

use crate::ids::{Label, Timestamp, VertexId};
use crate::tuple::{Edge, Op, StreamTuple};

/// Encoded size of one tuple in bytes.
pub const TUPLE_WIRE_SIZE: usize = 8 + 4 + 4 + 4 + 1;

/// Encodes one tuple onto a buffer.
pub fn encode_tuple(buf: &mut Vec<u8>, t: &StreamTuple) {
    buf.extend_from_slice(&t.ts.0.to_le_bytes());
    buf.extend_from_slice(&t.edge.src.0.to_le_bytes());
    buf.extend_from_slice(&t.edge.dst.0.to_le_bytes());
    buf.extend_from_slice(&t.label.0.to_le_bytes());
    buf.push(match t.op {
        Op::Insert => 0,
        Op::Delete => 1,
    });
}

/// Decodes one tuple from a cursor, advancing it past the consumed
/// bytes; returns `None` if the cursor holds fewer than
/// [`TUPLE_WIRE_SIZE`] bytes or the op byte is invalid.
pub fn decode_tuple(buf: &mut &[u8]) -> Option<StreamTuple> {
    if buf.len() < TUPLE_WIRE_SIZE {
        return None;
    }
    let ts = Timestamp(i64::from_le_bytes(buf[0..8].try_into().ok()?));
    let src = VertexId(u32::from_le_bytes(buf[8..12].try_into().ok()?));
    let dst = VertexId(u32::from_le_bytes(buf[12..16].try_into().ok()?));
    let label = Label(u32::from_le_bytes(buf[16..20].try_into().ok()?));
    let op = match buf[20] {
        0 => Op::Insert,
        1 => Op::Delete,
        _ => return None,
    };
    *buf = &buf[TUPLE_WIRE_SIZE..];
    Some(StreamTuple {
        ts,
        edge: Edge::new(src, dst),
        label,
        op,
    })
}

/// Encodes a whole stream into one contiguous byte blob.
pub fn encode_stream(tuples: &[StreamTuple]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(tuples.len() * TUPLE_WIRE_SIZE);
    for t in tuples {
        encode_tuple(&mut buf, t);
    }
    buf
}

/// Decodes a blob produced by [`encode_stream`].
///
/// Returns `None` if the blob length is not a multiple of the tuple size
/// or any tuple is malformed.
pub fn decode_stream(blob: &[u8]) -> Option<Vec<StreamTuple>> {
    if !blob.len().is_multiple_of(TUPLE_WIRE_SIZE) {
        return None;
    }
    let mut buf = blob;
    let mut out = Vec::with_capacity(blob.len() / TUPLE_WIRE_SIZE);
    while !buf.is_empty() {
        out.push(decode_tuple(&mut buf)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<StreamTuple> {
        vec![
            StreamTuple::insert(Timestamp(4), VertexId(0), VertexId(1), Label(0)),
            StreamTuple::insert(Timestamp(6), VertexId(0), VertexId(2), Label(1)),
            StreamTuple::delete(Timestamp(9), VertexId(0), VertexId(1), Label(0)),
        ]
    }

    #[test]
    fn round_trip() {
        let tuples = sample();
        let blob = encode_stream(&tuples);
        assert_eq!(blob.len(), tuples.len() * TUPLE_WIRE_SIZE);
        let decoded = decode_stream(&blob).expect("decodes");
        assert_eq!(decoded, tuples);
    }

    #[test]
    fn rejects_truncated_blob() {
        let blob = encode_stream(&sample());
        assert!(decode_stream(&blob[..blob.len() - 1]).is_none());
    }

    #[test]
    fn rejects_bad_op_byte() {
        let mut blob = encode_stream(&sample()[..1]);
        *blob.last_mut().unwrap() = 7;
        assert!(decode_stream(&blob).is_none());
    }

    #[test]
    fn short_cursor_is_not_consumed() {
        let blob = encode_stream(&sample()[..1]);
        let mut cursor = &blob[..TUPLE_WIRE_SIZE - 1];
        assert!(decode_tuple(&mut cursor).is_none());
        assert_eq!(cursor.len(), TUPLE_WIRE_SIZE - 1);
    }

    #[test]
    fn empty_stream() {
        let blob = encode_stream(&[]);
        assert_eq!(decode_stream(&blob), Some(vec![]));
    }

    #[test]
    fn negative_timestamps_survive() {
        // The raw codec is sign-agnostic (the engines use -inf sentinels
        // internally); the *stream-file and WAL boundaries* reject
        // negative event timestamps on top of this layer.
        let t = StreamTuple::insert(Timestamp(-5), VertexId(1), VertexId(2), Label(3));
        let blob = encode_stream(&[t]);
        assert_eq!(decode_stream(&blob).unwrap()[0], t);
    }

    #[test]
    fn truncation_sweep_rejects_every_partial_length() {
        // Every prefix that is not a whole number of tuples must be
        // rejected by `decode_stream`, and `decode_tuple` must neither
        // panic nor consume bytes it cannot decode.
        let blob = encode_stream(&sample());
        for len in 0..blob.len() {
            let prefix = &blob[..len];
            if len % TUPLE_WIRE_SIZE == 0 {
                let decoded = decode_stream(prefix).expect("whole tuples decode");
                assert_eq!(decoded.len(), len / TUPLE_WIRE_SIZE);
            } else {
                assert!(decode_stream(prefix).is_none(), "len {len} accepted");
            }
            let mut cursor = prefix;
            while decode_tuple(&mut cursor).is_some() {}
            assert!(cursor.len() < TUPLE_WIRE_SIZE);
        }
    }

    #[test]
    fn bit_flip_sweep_never_panics_and_reencodes_faithfully() {
        // Random single-bit corruption: decoding must never panic, and
        // whenever the corrupted blob still decodes, re-encoding must
        // reproduce it byte for byte (the codec is a bijection on its
        // valid region — flipped id/timestamp bits yield *different*
        // tuples, never silently canonicalized ones).
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let blob = encode_stream(&sample());
        let mut rng = SmallRng::seed_from_u64(0x51c3);
        for _ in 0..500 {
            let mut mutated = blob.clone();
            let byte = rng.gen_range(0..mutated.len());
            let bit = rng.gen_range(0..8u32);
            mutated[byte] ^= 1 << bit;
            match decode_stream(&mutated) {
                None => {
                    // Only an op-byte flip can make a tuple undecodable.
                    assert_eq!(byte % TUPLE_WIRE_SIZE, TUPLE_WIRE_SIZE - 1);
                }
                Some(decoded) => {
                    assert_eq!(encode_stream(&decoded), mutated);
                    assert_ne!(
                        decoded,
                        sample(),
                        "flip at byte {byte} bit {bit} undetected"
                    );
                }
            }
        }
    }
}
