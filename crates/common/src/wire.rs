//! A compact binary codec for streams of sgts.
//!
//! The benchmark harness generates synthetic streams once and replays them
//! across configurations (the paper replays the same SO/LDBC/Yago streams
//! across experiments). This module provides a deterministic fixed-width
//! little-endian encoding — 25 bytes per tuple — on top of [`bytes`].

use crate::ids::{Label, Timestamp, VertexId};
use crate::tuple::{Edge, Op, StreamTuple};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Encoded size of one tuple in bytes.
pub const TUPLE_WIRE_SIZE: usize = 8 + 4 + 4 + 4 + 1;

/// Encodes one tuple onto a buffer.
pub fn encode_tuple(buf: &mut BytesMut, t: &StreamTuple) {
    buf.put_i64_le(t.ts.0);
    buf.put_u32_le(t.edge.src.0);
    buf.put_u32_le(t.edge.dst.0);
    buf.put_u32_le(t.label.0);
    buf.put_u8(match t.op {
        Op::Insert => 0,
        Op::Delete => 1,
    });
}

/// Decodes one tuple from a buffer; returns `None` if the buffer holds
/// fewer than [`TUPLE_WIRE_SIZE`] bytes or the op byte is invalid.
pub fn decode_tuple(buf: &mut impl Buf) -> Option<StreamTuple> {
    if buf.remaining() < TUPLE_WIRE_SIZE {
        return None;
    }
    let ts = Timestamp(buf.get_i64_le());
    let src = VertexId(buf.get_u32_le());
    let dst = VertexId(buf.get_u32_le());
    let label = Label(buf.get_u32_le());
    let op = match buf.get_u8() {
        0 => Op::Insert,
        1 => Op::Delete,
        _ => return None,
    };
    Some(StreamTuple {
        ts,
        edge: Edge::new(src, dst),
        label,
        op,
    })
}

/// Encodes a whole stream into one contiguous byte blob.
pub fn encode_stream(tuples: &[StreamTuple]) -> Bytes {
    let mut buf = BytesMut::with_capacity(tuples.len() * TUPLE_WIRE_SIZE);
    for t in tuples {
        encode_tuple(&mut buf, t);
    }
    buf.freeze()
}

/// Decodes a blob produced by [`encode_stream`].
///
/// Returns `None` if the blob length is not a multiple of the tuple size
/// or any tuple is malformed.
pub fn decode_stream(blob: &[u8]) -> Option<Vec<StreamTuple>> {
    if !blob.len().is_multiple_of(TUPLE_WIRE_SIZE) {
        return None;
    }
    let mut buf = blob;
    let mut out = Vec::with_capacity(blob.len() / TUPLE_WIRE_SIZE);
    while buf.remaining() > 0 {
        out.push(decode_tuple(&mut buf)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<StreamTuple> {
        vec![
            StreamTuple::insert(Timestamp(4), VertexId(0), VertexId(1), Label(0)),
            StreamTuple::insert(Timestamp(6), VertexId(0), VertexId(2), Label(1)),
            StreamTuple::delete(Timestamp(9), VertexId(0), VertexId(1), Label(0)),
        ]
    }

    #[test]
    fn round_trip() {
        let tuples = sample();
        let blob = encode_stream(&tuples);
        assert_eq!(blob.len(), tuples.len() * TUPLE_WIRE_SIZE);
        let decoded = decode_stream(&blob).expect("decodes");
        assert_eq!(decoded, tuples);
    }

    #[test]
    fn rejects_truncated_blob() {
        let blob = encode_stream(&sample());
        assert!(decode_stream(&blob[..blob.len() - 1]).is_none());
    }

    #[test]
    fn rejects_bad_op_byte() {
        let mut blob = encode_stream(&sample()[..1]).to_vec();
        *blob.last_mut().unwrap() = 7;
        assert!(decode_stream(&blob).is_none());
    }

    #[test]
    fn empty_stream() {
        let blob = encode_stream(&[]);
        assert_eq!(decode_stream(&blob), Some(vec![]));
    }

    #[test]
    fn negative_timestamps_survive() {
        let t = StreamTuple::insert(Timestamp(-5), VertexId(1), VertexId(2), Label(3));
        let blob = encode_stream(&[t]);
        assert_eq!(decode_stream(&blob).unwrap()[0], t);
    }
}
