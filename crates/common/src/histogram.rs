//! A log-bucketed latency histogram.
//!
//! The paper reports mean throughput and **tail (99th percentile) latency**
//! per tuple (§5.1.1). Storing every sample for millions of tuples would
//! distort the measurement, so we use an HDR-style histogram: power-of-two
//! magnitude buckets, each split into 16 linear sub-buckets, giving a
//! worst-case quantile error of ~6% while using a fixed ~8 KiB.

/// Number of linear sub-buckets per power-of-two magnitude.
const SUB_BUCKETS: usize = 16;
/// log2 of `SUB_BUCKETS`.
const SUB_BITS: u32 = 4;
/// Number of magnitudes tracked (covers values up to 2^40 ns ≈ 18 min).
const MAGNITUDES: usize = 41;

/// A fixed-size log-bucketed histogram of `u64` samples (nanoseconds by
/// convention, but unit-agnostic).
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: Box<[u64; MAGNITUDES * SUB_BUCKETS]>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Box::new([0; MAGNITUDES * SUB_BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    #[inline]
    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let magnitude = 63 - value.leading_zeros(); // >= SUB_BITS here
        let shift = magnitude - SUB_BITS;
        let sub = (value >> shift) as usize & (SUB_BUCKETS - 1);
        let mag_index = (magnitude - SUB_BITS + 1) as usize;
        let idx = mag_index * SUB_BUCKETS + sub;
        idx.min(MAGNITUDES * SUB_BUCKETS - 1)
    }

    /// Lower bound of the bucket at `idx` (the value reported for
    /// quantiles falling in that bucket).
    fn bucket_floor(idx: usize) -> u64 {
        let mag_index = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        if mag_index == 0 {
            return sub;
        }
        let magnitude = mag_index as u32 + SUB_BITS - 1;
        let base = 1u64 << magnitude;
        base + (sub << (magnitude - SUB_BITS))
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Records `n` samples of the same value in one update. Used when a
    /// single measured event stands for a batch of logical samples
    /// (e.g. one subscriber frame carrying many results): the histogram
    /// count then equals the logical sample count exactly.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_index(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Maximum recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Minimum recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at quantile `q ∈ [0, 1]` (0 if empty). Reports the
    /// midpoint of the winning bucket — halving the worst-case error
    /// versus the raw bucket floor — clamped to the observed
    /// `[min, max]` range. Buckets below `SUB_BUCKETS` hold a single
    /// value each, so small samples are still reported exactly.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let floor = Self::bucket_floor(idx);
                let next = if idx + 1 < MAGNITUDES * SUB_BUCKETS {
                    Self::bucket_floor(idx + 1)
                } else {
                    u64::MAX
                };
                let mid = floor + next.saturating_sub(floor) / 2;
                return mid.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Total of all recorded samples (exact, not bucket-approximated).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Cumulative bucket counts as `(upper_bound, cumulative_count)`
    /// pairs, one per non-empty bucket, in ascending order — the shape
    /// a Prometheus histogram's `_bucket{le="…"}` series needs. The
    /// upper bound is inclusive (the largest value the bucket can
    /// hold); the final bucket reports `u64::MAX`.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let le = if idx + 1 < MAGNITUDES * SUB_BUCKETS {
                Self::bucket_floor(idx + 1) - 1
            } else {
                u64::MAX
            };
            out.push((le, cum));
        }
        out
    }

    /// 50th percentile.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile — the paper's "tail latency".
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum = 0;
        self.max = 0;
        self.min = u64::MAX;
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.p50(), 7);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let p99 = h.p99() as f64;
        let exact = 99_000.0;
        let rel = (p99 - exact).abs() / exact;
        assert!(rel < 0.08, "p99={p99} exact={exact} rel={rel}");

        let p50 = h.p50() as f64;
        let rel50 = (p50 - 50_000.0).abs() / 50_000.0;
        assert!(rel50 < 0.08, "p50={p50} rel={rel50}");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in 0..100 {
            a.record(v);
            b.record(v + 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), 0);
        assert!(a.max() >= 1099);
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn bucket_floor_is_monotone() {
        let mut last = 0;
        for idx in 0..(MAGNITUDES * SUB_BUCKETS) {
            let floor = LatencyHistogram::bucket_floor(idx);
            assert!(floor >= last, "idx={idx} floor={floor} last={last}");
            last = floor;
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        // Property: for any sample set and q1 <= q2,
        // quantile(q1) <= quantile(q2). Exercise several distributions
        // (uniform, exponential-ish, point mass, extremes).
        let mut xorshift = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            xorshift ^= xorshift << 13;
            xorshift ^= xorshift >> 7;
            xorshift ^= xorshift << 17;
            xorshift
        };
        let mut sets: Vec<Vec<u64>> =
            vec![(0..1000).collect(), vec![42; 500], vec![0, 1, u64::MAX]];
        let mut random = Vec::new();
        for _ in 0..2000 {
            let r = next();
            random.push(r >> (r % 60) as u32); // spread across magnitudes
        }
        sets.push(random);
        for samples in &sets {
            let mut h = LatencyHistogram::new();
            for &v in samples {
                h.record(v);
            }
            let mut last = 0u64;
            for i in 0..=100 {
                let q = i as f64 / 100.0;
                let v = h.quantile(q);
                assert!(v >= last, "q={q} v={v} last={last}");
                last = v;
            }
            assert!(h.quantile(0.0) >= h.min());
            assert!(h.quantile(1.0) <= h.max());
        }
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..37 {
            a.record(1234);
        }
        b.record_n(1234, 37);
        b.record_n(9999, 0); // no-op
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.p50(), b.p50());
        assert_eq!(a.max(), b.max());
        assert_eq!(a.min(), b.min());
    }

    #[test]
    fn cumulative_buckets_cover_all_samples() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 5, 5, 100, 100_000, u64::MAX] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        // Ascending le, ascending cumulative, final cum == count.
        let mut last_le = 0u64;
        let mut last_cum = 0u64;
        for &(le, cum) in &buckets {
            assert!(le >= last_le);
            assert!(cum > last_cum);
            last_le = le;
            last_cum = cum;
        }
        assert_eq!(buckets.last().unwrap().1, h.count());
        assert_eq!(buckets.last().unwrap().0, u64::MAX);
    }

    #[test]
    fn bucket_index_floor_round_trip() {
        // floor(bucket(v)) <= v for representative values.
        for &v in &[
            0u64,
            1,
            15,
            16,
            17,
            100,
            1000,
            4095,
            4096,
            1 << 20,
            (1 << 30) + 12345,
        ] {
            let idx = LatencyHistogram::bucket_index(v);
            assert!(LatencyHistogram::bucket_floor(idx) <= v, "v={v}");
        }
    }
}
