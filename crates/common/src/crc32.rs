//! CRC32 (IEEE 802.3 polynomial) — the shared checksum of every
//! on-disk artifact in the workspace.
//!
//! The write-ahead log (`srpq_persist::wal`), the checkpoint files
//! (`srpq_persist::checkpoint`), and the CLI stream-file footer all
//! guard their bytes with this checksum so that torn writes and bit rot
//! are detected instead of silently mis-decoded. Table-driven,
//! reflected, `!0` initial value and final inversion — the same
//! parameters as zlib's `crc32`, so external tooling can verify the
//! files.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// A streaming CRC32 hasher (feed chunks, then [`Crc32::finish`]).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Creates a fresh hasher.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// The checksum over everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard zlib test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"hello streaming rpq world";
        let mut h = Crc32::new();
        h.update(&data[..7]);
        h.update(&data[7..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0u8..=255).collect();
        let base = crc32(&data);
        for byte in [0usize, 100, 255] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
