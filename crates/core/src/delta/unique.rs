//! The RAPQ instantiation of the forest: one occurrence per pair, with
//! a keyed API so the engine can address nodes by `(vertex, state)`.

use super::{Node, PairKey, Tree, TreeSemantics};
use srpq_common::{Label, Timestamp};

/// Semantics of Algorithm RAPQ's Δ trees (Definition 12): each
/// `(vertex, state)` pair appears at most once per tree (Lemma 1,
/// invariant 2), so pairs — not arena slots — are the natural node
/// identity and no extra per-tree state is needed.
#[derive(Debug, Default)]
pub struct Unique;

impl super::SnapshotExt for Unique {
    fn import(_marks: Vec<(PairKey, super::NodeId)>, _dead: Vec<PairKey>) -> Unique {
        Unique
    }
}

impl TreeSemantics for Unique {
    fn on_add(&mut self, key: PairKey, _id: super::NodeId, first_occurrence: bool) {
        debug_assert!(first_occurrence, "duplicate node {key:?} in Unique tree");
    }

    fn validate(&self, tree: &Tree<Unique>) -> Result<(), String> {
        for (_, n) in tree.iter() {
            let occ = tree.occurrences(n.key());
            if occ.len() != 1 {
                return Err(format!(
                    "pair {:?} occurs {} times in a Unique tree",
                    n.key(),
                    occ.len()
                ));
            }
        }
        Ok(())
    }
}

/// Keyed accessors and mutators: with the uniqueness invariant, a pair
/// identifies a node, so the RAPQ engine addresses the tree by
/// [`PairKey`] throughout and never sees arena ids.
impl Tree<Unique> {
    /// The arena id of `key`'s sole occurrence.
    #[inline]
    fn id(&self, key: PairKey) -> Option<super::NodeId> {
        self.first_occurrence(key)
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: PairKey) -> bool {
        self.has_pair(key)
    }

    /// The node payload for `key` (a by-value view over the columns).
    #[inline]
    pub fn get(&self, key: PairKey) -> Option<Node> {
        self.node(self.id(key)?)
    }

    /// The timestamp of `key`, if present. One occurrence-map probe
    /// plus one `ts` column read — the per-out-edge guard of the
    /// extend loop, kept off the full node view deliberately.
    #[inline]
    pub fn ts(&self, key: PairKey) -> Option<Timestamp> {
        self.ts_of(self.id(key)?)
    }

    /// The parent pair of `key` (`None` for the root or an absent key).
    pub fn parent_key(&self, key: PairKey) -> Option<PairKey> {
        self.parent_key_of(self.id(key)?)
    }

    /// Adds a new node `key` under `parent`. Panics if `parent` is
    /// absent (and debug-panics if `key` already exists).
    pub fn add(&mut self, key: PairKey, parent: PairKey, via_label: Label, ts: Timestamp) {
        let parent = self.id(parent).expect("parent must exist");
        self.add_child(parent, key.0, key.1, via_label, ts);
    }

    /// Re-parents the existing node `key` (timestamp refresh). The
    /// subtree stays attached. Panics if either key is absent.
    pub fn reparent_key(&mut self, key: PairKey, parent: PairKey, via_label: Label, ts: Timestamp) {
        let id = self.id(key).expect("node must exist");
        let parent = self.id(parent).expect("new parent must exist");
        self.reparent(id, parent, via_label, ts);
    }

    /// Sets the timestamp of the whole subtree under `key` (inclusive).
    pub fn set_subtree_ts_key(&mut self, key: PairKey, ts: Timestamp) {
        if let Some(id) = self.id(key) {
            self.set_subtree_ts(id, ts);
        }
    }

    /// Removes a set of pairs wholesale (must be downward-closed:
    /// whole subtrees). Allocation-free: each pair resolves to its
    /// sole occurrence and is removed directly. (The caller obtains
    /// the expiry candidate set via [`Tree::collect_expired_keys`]
    /// into its own scratch buffer.)
    pub fn remove_all_keys(&mut self, keys: &[PairKey]) {
        for &k in keys {
            if let Some(id) = self.id(k) {
                self.remove(id);
            }
        }
    }

    /// Pairs of the subtree rooted at `key` (inclusive), preorder.
    pub fn subtree_keys(&self, key: PairKey) -> Vec<PairKey> {
        match self.id(key) {
            Some(id) => self
                .subtree_ids(id)
                .into_iter()
                .filter_map(|i| self.key_of(i))
                .collect(),
            None => Vec::new(),
        }
    }
}
