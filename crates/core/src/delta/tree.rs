//! The arena-backed spanning tree shared by both engines.

use super::snapshot::{NodeSnap, SnapshotExt, TreeSnap};
use super::{NodeId, PairKey, TreeSemantics};
use srpq_common::{FxHashMap, Label, StateId, Timestamp, VertexId};

/// A spanning-tree node: a product-graph pair plus tree links and the
/// minimum edge timestamp along its root path (Definition 9).
#[derive(Debug, Clone)]
pub struct Node {
    /// Graph vertex.
    pub vertex: VertexId,
    /// Automaton state.
    pub state: StateId,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Label of the graph edge connecting the parent to this node
    /// (meaningless for the root). Needed by `Delete` to match
    /// tree-edges (Definition 13).
    pub via_label: Label,
    /// Minimum edge timestamp along the root path;
    /// `Timestamp::INFINITY` for the root.
    pub ts: Timestamp,
    /// Child node ids (unordered).
    pub children: Vec<NodeId>,
}

impl Node {
    /// The node's `(vertex, state)` pair.
    #[inline]
    pub fn key(&self) -> PairKey {
        (self.vertex, self.state)
    }
}

/// Occurrence list with the single-occurrence case stored inline:
/// RAPQ ([`super::Unique`]) trees never heap-allocate here, and RSPQ
/// trees only do on a genuine duplicate pair — node attachment is
/// otherwise allocation-free.
#[derive(Debug)]
enum OccSet {
    /// Exactly one occurrence (the overwhelmingly common case).
    One(NodeId),
    /// Two or more occurrences, attachment order. Invariant: never
    /// empty and never a singleton (downgraded on removal).
    Many(Vec<NodeId>),
}

impl OccSet {
    #[inline]
    fn as_slice(&self) -> &[NodeId] {
        match self {
            OccSet::One(id) => std::slice::from_ref(id),
            OccSet::Many(v) => v.as_slice(),
        }
    }

    #[inline]
    fn first(&self) -> NodeId {
        match self {
            OccSet::One(id) => *id,
            OccSet::Many(v) => v[0],
        }
    }

    fn push(&mut self, id: NodeId) {
        match self {
            OccSet::One(a) => *self = OccSet::Many(vec![*a, id]),
            OccSet::Many(v) => v.push(id),
        }
    }

    /// Removes `id`; returns `true` when the set became empty (the
    /// caller then drops the map entry).
    fn remove(&mut self, id: NodeId) -> bool {
        let downgrade = match self {
            OccSet::One(a) => return *a == id,
            OccSet::Many(v) => {
                v.retain(|&o| o != id);
                match v.len() {
                    0 => return true,
                    1 => v[0],
                    _ => return false,
                }
            }
        };
        *self = OccSet::One(downgrade);
        false
    }
}

/// A spanning tree `T_x` rooted at `(x, s0)`, with semantics extension
/// `X` observing every mutation.
///
/// Nodes are arena-allocated and identified by position ([`NodeId`]);
/// the `occurrences` side index lists all live slots holding a given
/// pair, in attachment order (so the first entry is the oldest — the
/// *canonical* — occurrence, and for [`super::Unique`] trees the only
/// one).
#[derive(Debug)]
pub struct Tree<X: TreeSemantics> {
    root: VertexId,
    root_key: PairKey,
    root_id: NodeId,
    arena: Vec<Option<Node>>,
    free: Vec<NodeId>,
    occurrences: FxHashMap<PairKey, OccSet>,
    len: usize,
    ext: X,
}

impl<X: TreeSemantics> Tree<X> {
    /// Creates a tree containing only its root `(x, s0)`.
    pub fn new(root: VertexId, s0: StateId) -> Tree<X> {
        let root_key = (root, s0);
        let node = Node {
            vertex: root,
            state: s0,
            parent: None,
            via_label: Label(u32::MAX),
            ts: Timestamp::INFINITY,
            children: Vec::new(),
        };
        let mut occurrences: FxHashMap<PairKey, OccSet> = FxHashMap::default();
        occurrences.insert(root_key, OccSet::One(0));
        let mut ext = X::default();
        ext.on_add(root_key, 0, true);
        Tree {
            root,
            root_key,
            root_id: 0,
            arena: vec![Some(node)],
            free: Vec::new(),
            occurrences,
            len: 1,
            ext,
        }
    }

    /// The root vertex `x`.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// The root key `(x, s0)`.
    #[inline]
    pub fn root_key(&self) -> PairKey {
        self.root_key
    }

    /// The root node id.
    #[inline]
    pub fn root_id(&self) -> NodeId {
        self.root_id
    }

    /// Number of live nodes including the root.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// A tree always holds at least its root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether only the root remains.
    pub fn is_trivial(&self) -> bool {
        self.len == 1
    }

    /// The semantics extension.
    #[inline]
    pub fn ext(&self) -> &X {
        &self.ext
    }

    /// Mutable access to the semantics extension.
    #[inline]
    pub fn ext_mut(&mut self) -> &mut X {
        &mut self.ext
    }

    /// The node at `id`, if alive.
    #[inline]
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.arena.get(id as usize).and_then(|n| n.as_ref())
    }

    /// All live occurrences of `key`, oldest first.
    #[inline]
    pub fn occurrences(&self, key: PairKey) -> &[NodeId] {
        self.occurrences
            .get(&key)
            .map(OccSet::as_slice)
            .unwrap_or(&[])
    }

    /// Whether any occurrence of `key` is present ("(v, t) ∈ T_x").
    #[inline]
    pub fn has_pair(&self, key: PairKey) -> bool {
        self.occurrences.contains_key(&key)
    }

    /// The oldest (canonical) occurrence of `key`.
    #[inline]
    pub fn first_occurrence(&self, key: PairKey) -> Option<NodeId> {
        self.occurrences.get(&key).map(OccSet::first)
    }

    /// The `(vertex, state)` pair held at `id`, if alive.
    #[inline]
    pub fn key_of(&self, id: NodeId) -> Option<PairKey> {
        self.node(id).map(Node::key)
    }

    /// The parent's pair of the node at `id` (`None` for the root or a
    /// dead id).
    pub fn parent_key_of(&self, id: NodeId) -> Option<PairKey> {
        let parent = self.node(id)?.parent?;
        self.key_of(parent)
    }

    /// Adds a child node under `parent`. Returns the new id. Panics
    /// if `parent` is dead.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        vertex: VertexId,
        state: StateId,
        via_label: Label,
        ts: Timestamp,
    ) -> NodeId {
        let node = Node {
            vertex,
            state,
            parent: Some(parent),
            via_label,
            ts,
            children: Vec::new(),
        };
        let id = match self.free.pop() {
            Some(id) => {
                self.arena[id as usize] = Some(node);
                id
            }
            None => {
                self.arena.push(Some(node));
                (self.arena.len() - 1) as NodeId
            }
        };
        self.arena[parent as usize]
            .as_mut()
            .expect("parent must be alive")
            .children
            .push(id);
        let first = match self.occurrences.entry((vertex, state)) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(OccSet::One(id));
                true
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().push(id);
                false
            }
        };
        self.len += 1;
        self.ext.on_add((vertex, state), id, first);
        id
    }

    /// Re-parents the live node `id` under `new_parent` (timestamp
    /// refresh, Algorithm RAPQ line 7 / Insert lines 2–3). The subtree
    /// stays attached. Panics if either node is dead.
    pub fn reparent(&mut self, id: NodeId, new_parent: NodeId, via_label: Label, ts: Timestamp) {
        let old_parent = {
            let n = self.arena[id as usize]
                .as_mut()
                .expect("node must be alive");
            let old = n.parent;
            n.parent = Some(new_parent);
            n.via_label = via_label;
            n.ts = ts;
            old
        };
        if let Some(op) = old_parent {
            if op != new_parent {
                if let Some(Some(pn)) = self.arena.get_mut(op as usize) {
                    pn.children.retain(|&c| c != id);
                }
                self.arena[new_parent as usize]
                    .as_mut()
                    .expect("new parent must be alive")
                    .children
                    .push(id);
            }
        }
    }

    /// Updates only the timestamp of the live node `id`.
    pub fn set_ts(&mut self, id: NodeId, ts: Timestamp) {
        self.arena[id as usize]
            .as_mut()
            .expect("node must be alive")
            .ts = ts;
    }

    /// Removes a set of node ids wholesale. The caller guarantees the
    /// set is downward-closed (whole subtrees) — which holds for expiry
    /// candidates thanks to the timestamp monotonicity invariant.
    /// Cleans the occurrence index, detaches removed children from
    /// surviving parents, and reports each removal to the semantics
    /// extension.
    pub fn remove_all(&mut self, ids: &[NodeId]) {
        for &id in ids {
            let Some(node) = self.arena.get_mut(id as usize).and_then(Option::take) else {
                continue;
            };
            self.len -= 1;
            self.free.push(id);
            let key = node.key();
            if let Some(occ) = self.occurrences.get_mut(&key) {
                if occ.remove(id) {
                    self.occurrences.remove(&key);
                }
            }
            if let Some(p) = node.parent {
                if let Some(Some(pn)) = self.arena.get_mut(p as usize) {
                    pn.children.retain(|&c| c != id);
                }
            }
            self.ext.on_remove(key, id);
        }
    }

    /// Node ids of the subtree rooted at `id` (inclusive), BFS order.
    pub fn subtree_ids(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        if self.node(id).is_none() {
            return out;
        }
        out.push(id);
        let mut i = 0;
        while i < out.len() {
            if let Some(n) = self.node(out[i]) {
                out.extend(n.children.iter().copied());
            }
            i += 1;
        }
        out
    }

    /// Sets the timestamp of the whole subtree under `id` (inclusive).
    /// Used by `Delete` to mark victims with `-∞` (§3.2).
    pub fn set_subtree_ts(&mut self, id: NodeId, ts: Timestamp) {
        for nid in self.subtree_ids(id) {
            if let Some(Some(n)) = self.arena.get_mut(nid as usize) {
                n.ts = ts;
            }
        }
    }

    /// Live node ids with `ts <= watermark` (the expiry candidate set
    /// P, downward-closed by timestamp monotonicity).
    pub fn expired_ids(&self, watermark: Timestamp) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| n.ts <= watermark)
            .map(|(id, _)| id)
            .collect()
    }

    /// The state of the **first** (closest to root) occurrence of
    /// `vertex` on the root path of `id` — `FIRST(p[v])` in Algorithm
    /// Extend. Walks upward, so the first-from-root is the last found.
    pub fn first_state_on_path(&self, id: NodeId, vertex: VertexId) -> Option<StateId> {
        let mut found = None;
        let mut cur = Some(id);
        while let Some(c) = cur {
            let n = self.node(c)?;
            if n.vertex == vertex {
                found = Some(n.state);
            }
            cur = n.parent;
        }
        found
    }

    /// Whether `(vertex, state)` occurs on the root path of `id` —
    /// `t ∈ p[v]` in Algorithm RSPQ/Extend.
    pub fn path_has(&self, id: NodeId, vertex: VertexId, state: StateId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            let Some(n) = self.node(c) else { return false };
            if n.vertex == vertex && n.state == state {
                return true;
            }
            cur = n.parent;
        }
        false
    }

    /// The root path of `id` as pair keys, root first.
    pub fn path_keys(&self, id: NodeId) -> Vec<PairKey> {
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let Some(n) = self.node(c) else { break };
            out.push(n.key());
            cur = n.parent;
        }
        out.reverse();
        out
    }

    /// The root path of `id` as node ids, root first.
    pub fn path_ids(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            out.push(c);
            cur = self.node(c).and_then(|n| n.parent);
        }
        out.reverse();
        out
    }

    /// Iterates `(id, node)` over live nodes in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.arena
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (i as NodeId, n)))
    }

    /// Debug validation: arena/occurrence-index/parent-child
    /// consistency, timestamp monotonicity, acyclicity, and the
    /// semantics extension's own checks.
    pub fn validate(&self) -> Result<(), String> {
        if self.node(self.root_id).is_none() {
            return Err("root missing".into());
        }
        let mut live = 0usize;
        for (id, n) in self.iter() {
            live += 1;
            match n.parent {
                None if id != self.root_id => return Err(format!("non-root {id} parentless")),
                None => {}
                Some(p) => {
                    let Some(pn) = self.node(p) else {
                        return Err(format!("{id} has dead parent {p}"));
                    };
                    if !pn.children.contains(&id) {
                        return Err(format!("{p} does not list child {id}"));
                    }
                    if pn.ts < n.ts {
                        return Err(format!(
                            "timestamp inversion: parent {p}@{} < child {id}@{}",
                            pn.ts, n.ts
                        ));
                    }
                }
            }
            let occ = self.occurrences(n.key());
            if !occ.contains(&id) {
                return Err(format!("occurrence index misses {id}"));
            }
            for &c in &n.children {
                match self.node(c) {
                    Some(cn) if cn.parent == Some(id) => {}
                    _ => return Err(format!("stale child {c} of {id}")),
                }
            }
        }
        if live != self.len {
            return Err(format!("len drift: {live} vs {}", self.len));
        }
        for (key, occ) in &self.occurrences {
            if occ.as_slice().is_empty() {
                return Err(format!("empty occurrence list for {key:?}"));
            }
            for &id in occ.as_slice() {
                match self.node(id) {
                    Some(n) if n.key() == *key => {}
                    _ => return Err(format!("occurrence {id} of {key:?} dead or mismatched")),
                }
            }
        }
        // Cycle check: every node must reach the root.
        for (id, _) in self.iter() {
            let mut cur = id;
            let mut steps = 0;
            while let Some(n) = self.node(cur) {
                match n.parent {
                    None => break,
                    Some(p) => {
                        cur = p;
                        steps += 1;
                        if steps > self.len {
                            return Err(format!("cycle through {id}"));
                        }
                    }
                }
            }
        }
        self.ext.validate(self)
    }
}

impl<X: SnapshotExt> Tree<X> {
    /// Captures a faithful structural snapshot of this tree (`Full`
    /// checkpoints): arena slot assignment, free list, occurrence order,
    /// children order, and extension state all survive the round trip.
    pub fn to_snapshot(&self) -> TreeSnap {
        let nodes = self
            .iter()
            .map(|(id, n)| NodeSnap {
                id,
                vertex: n.vertex,
                state: n.state,
                parent: n.parent,
                via_label: n.via_label,
                ts: n.ts,
                children: n.children.clone(),
            })
            .collect();
        let mut occurrences: Vec<(PairKey, Vec<NodeId>)> = self
            .occurrences
            .iter()
            .map(|(&k, occ)| (k, occ.as_slice().to_vec()))
            .collect();
        occurrences.sort_unstable_by_key(|&(k, _)| k);
        let (marks, dead_marks) = self.ext.export();
        TreeSnap {
            root: self.root,
            root_state: self.root_key.1,
            root_id: self.root_id,
            arena_len: self.arena.len() as u32,
            free: self.free.clone(),
            nodes,
            occurrences,
            marks,
            dead_marks,
        }
    }

    /// Rebuilds a tree from a snapshot, validating structural
    /// consistency (a corrupt snapshot is reported, never trusted).
    pub fn from_snapshot(snap: TreeSnap) -> Result<Tree<X>, String> {
        let mut arena: Vec<Option<Node>> = (0..snap.arena_len).map(|_| None).collect();
        for n in &snap.nodes {
            let slot = arena
                .get_mut(n.id as usize)
                .ok_or_else(|| format!("node id {} out of arena bounds", n.id))?;
            if slot.is_some() {
                return Err(format!("duplicate node id {}", n.id));
            }
            *slot = Some(Node {
                vertex: n.vertex,
                state: n.state,
                parent: n.parent,
                via_label: n.via_label,
                ts: n.ts,
                children: n.children.clone(),
            });
        }
        let mut seen_free = std::collections::HashSet::new();
        for &f in &snap.free {
            match arena.get(f as usize) {
                Some(None) if seen_free.insert(f) => {}
                Some(None) => return Err(format!("free slot {f} listed twice")),
                _ => return Err(format!("free slot {f} is live or out of bounds")),
            }
        }
        if snap.nodes.len() + snap.free.len() != snap.arena_len as usize {
            return Err(format!(
                "arena accounting drift: {} live + {} free != {} slots",
                snap.nodes.len(),
                snap.free.len(),
                snap.arena_len
            ));
        }
        let mut occurrences: FxHashMap<PairKey, OccSet> = FxHashMap::default();
        for (key, ids) in snap.occurrences {
            let occ = match ids.as_slice() {
                [] => return Err(format!("empty occurrence list for {key:?}")),
                [one] => OccSet::One(*one),
                _ => OccSet::Many(ids),
            };
            occurrences.insert(key, occ);
        }
        let tree = Tree {
            root: snap.root,
            root_key: (snap.root, snap.root_state),
            root_id: snap.root_id,
            len: snap.nodes.len(),
            arena,
            free: snap.free,
            occurrences,
            ext: X::import(snap.marks, snap.dead_marks),
        };
        tree.validate()?;
        Ok(tree)
    }
}
