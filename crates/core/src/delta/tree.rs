//! The arena-backed spanning tree shared by both engines, stored
//! **struct-of-arrays**.
//!
//! Node attributes live in parallel columns indexed by [`NodeId`]:
//! `(vertex, state)` pair, parent link, via-label, and a dedicated
//! contiguous `ts` column so expiry candidate collection is a
//! branch-free threshold scan over one cache-friendly array instead of
//! a pointer-chase through node structs. Tree shape is kept in
//! intrusive `first_child`/`next_sib`/`prev_sib` link columns — no
//! per-node heap `Vec<NodeId>` children list, so node attachment and
//! detachment never allocate.
//!
//! Slots are recycled through a free list; a dead slot is marked by
//! the sentinel [`DEAD`] in its parent column and carries
//! `Timestamp::INFINITY` in the `ts` column so the expiry scan skips
//! it without a liveness branch (the root is immortal for the same
//! reason: its timestamp is `INFINITY` per Definition 9, under which a
//! node's timestamp is the minimum edge timestamp along its root
//! path). Long-running windows are defragmented by [`Tree::maybe_compact`],
//! which packs live slots to the front (preserving relative slot
//! order), remaps every link and the occurrence index, and hands the
//! remap table to the semantics extension.

use super::snapshot::{NodeSnap, SnapshotExt, TreeSnap};
use super::{NodeId, PairKey, TreeSemantics};
use srpq_common::{FxHashMap, Label, StateId, Timestamp, VertexId};

/// "No link" sentinel: absent sibling/child links and the root's
/// parent.
const NIL: NodeId = u32::MAX;

/// Parent-column sentinel marking a dead (free-listed) slot.
const DEAD: NodeId = u32::MAX - 1;

/// A by-value view of one spanning-tree node: its product-graph pair,
/// parent link, and the minimum edge timestamp along its root path
/// (Definition 9). Materialized on demand from the column arrays;
/// child links are walked through [`Tree::children`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// Graph vertex.
    pub vertex: VertexId,
    /// Automaton state.
    pub state: StateId,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Label of the graph edge connecting the parent to this node
    /// (meaningless for the root). Needed by `Delete` to match
    /// tree-edges (Definition 13).
    pub via_label: Label,
    /// Minimum edge timestamp along the root path;
    /// `Timestamp::INFINITY` for the root.
    pub ts: Timestamp,
}

impl Node {
    /// The node's `(vertex, state)` pair.
    #[inline]
    pub fn key(&self) -> PairKey {
        (self.vertex, self.state)
    }
}

/// Occurrence list with the single-occurrence case stored inline:
/// RAPQ ([`super::Unique`]) trees never heap-allocate here, and RSPQ
/// trees only do on a genuine duplicate pair — node attachment is
/// otherwise allocation-free.
#[derive(Debug)]
enum OccSet {
    /// Exactly one occurrence (the overwhelmingly common case).
    One(NodeId),
    /// Two or more occurrences, attachment order. Invariant: never
    /// empty and never a singleton (downgraded on removal).
    Many(Vec<NodeId>),
}

impl OccSet {
    #[inline]
    fn as_slice(&self) -> &[NodeId] {
        match self {
            OccSet::One(id) => std::slice::from_ref(id),
            OccSet::Many(v) => v.as_slice(),
        }
    }

    #[inline]
    fn first(&self) -> NodeId {
        match self {
            OccSet::One(id) => *id,
            OccSet::Many(v) => v[0],
        }
    }

    fn push(&mut self, id: NodeId) {
        match self {
            OccSet::One(a) => *self = OccSet::Many(vec![*a, id]),
            OccSet::Many(v) => v.push(id),
        }
    }

    /// Removes `id`; returns `true` when the set became empty (the
    /// caller then drops the map entry).
    fn remove(&mut self, id: NodeId) -> bool {
        let downgrade = match self {
            OccSet::One(a) => return *a == id,
            OccSet::Many(v) => {
                v.retain(|&o| o != id);
                match v.len() {
                    0 => return true,
                    1 => v[0],
                    _ => return false,
                }
            }
        };
        *self = OccSet::One(downgrade);
        false
    }

    /// Remaps every occurrence through a compaction table.
    fn remap(&mut self, remap: &[NodeId]) {
        match self {
            OccSet::One(id) => *id = remap[*id as usize],
            OccSet::Many(v) => {
                for id in v.iter_mut() {
                    *id = remap[*id as usize];
                }
            }
        }
    }
}

/// A spanning tree `T_x` rooted at `(x, s0)`, with semantics extension
/// `X` observing every mutation.
///
/// Nodes are identified by column index ([`NodeId`]); the
/// `occurrences` side index lists all live slots holding a given pair,
/// in attachment order (so the first entry is the oldest — the
/// *canonical* — occurrence, and for [`super::Unique`] trees the only
/// one).
#[derive(Debug)]
pub struct Tree<X: TreeSemantics> {
    root: VertexId,
    root_key: PairKey,
    root_id: NodeId,
    // Struct-of-arrays node storage, all columns indexed by NodeId.
    vertex: Vec<VertexId>,
    state: Vec<StateId>,
    /// Parent link; `NIL` for the root, `DEAD` marks a free slot.
    parent: Vec<NodeId>,
    via_label: Vec<Label>,
    /// Contiguous timestamp column — the expiry scan reads only this.
    /// Dead slots hold `Timestamp::INFINITY` so the scan needs no
    /// liveness branch.
    ts: Vec<Timestamp>,
    // Intrusive tree links (children = singly-walked doubly-linked
    // sibling chain; `prev_sib` buys O(1) unlink).
    first_child: Vec<NodeId>,
    next_sib: Vec<NodeId>,
    prev_sib: Vec<NodeId>,
    free: Vec<NodeId>,
    occurrences: FxHashMap<PairKey, OccSet>,
    len: usize,
    ext: X,
}

impl<X: TreeSemantics> Tree<X> {
    /// Creates a tree containing only its root `(x, s0)`.
    pub fn new(root: VertexId, s0: StateId) -> Tree<X> {
        let root_key = (root, s0);
        let mut occurrences: FxHashMap<PairKey, OccSet> = FxHashMap::default();
        occurrences.insert(root_key, OccSet::One(0));
        let mut ext = X::default();
        ext.on_add(root_key, 0, true);
        Tree {
            root,
            root_key,
            root_id: 0,
            vertex: vec![root],
            state: vec![s0],
            parent: vec![NIL],
            via_label: vec![Label(u32::MAX)],
            ts: vec![Timestamp::INFINITY],
            first_child: vec![NIL],
            next_sib: vec![NIL],
            prev_sib: vec![NIL],
            free: Vec::new(),
            occurrences,
            len: 1,
            ext,
        }
    }

    /// Resets a recycled tree to a fresh single-root state rooted at
    /// `(root, s0)`. Every column, the free list, and the occurrence
    /// map are cleared *in place* — capacity is retained — so
    /// forest-level tree pooling re-roots without heap allocation.
    pub fn reset_root(&mut self, root: VertexId, s0: StateId) {
        self.root = root;
        self.root_key = (root, s0);
        self.root_id = 0;
        self.vertex.clear();
        self.state.clear();
        self.parent.clear();
        self.via_label.clear();
        self.ts.clear();
        self.first_child.clear();
        self.next_sib.clear();
        self.prev_sib.clear();
        self.free.clear();
        self.occurrences.clear();
        self.len = 1;
        self.vertex.push(root);
        self.state.push(s0);
        self.parent.push(NIL);
        self.via_label.push(Label(u32::MAX));
        self.ts.push(Timestamp::INFINITY);
        self.first_child.push(NIL);
        self.next_sib.push(NIL);
        self.prev_sib.push(NIL);
        self.occurrences.insert(self.root_key, OccSet::One(0));
        self.ext.reset();
        self.ext.on_add(self.root_key, 0, true);
    }

    /// The root vertex `x`.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// The root key `(x, s0)`.
    #[inline]
    pub fn root_key(&self) -> PairKey {
        self.root_key
    }

    /// The root node id.
    #[inline]
    pub fn root_id(&self) -> NodeId {
        self.root_id
    }

    /// Number of live nodes including the root.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// A tree always holds at least its root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether only the root remains.
    pub fn is_trivial(&self) -> bool {
        self.len == 1
    }

    /// Number of arena slots (live + free-listed).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.parent.len()
    }

    /// Bytes held by the column arrays for the current capacity
    /// (excludes the occurrence index and the free list).
    pub fn arena_bytes(&self) -> usize {
        use std::mem::size_of;
        self.capacity()
            * (size_of::<VertexId>()
                + size_of::<StateId>()
                + size_of::<Label>()
                + size_of::<Timestamp>()
                + 4 * size_of::<NodeId>())
    }

    /// The semantics extension.
    #[inline]
    pub fn ext(&self) -> &X {
        &self.ext
    }

    /// Mutable access to the semantics extension.
    #[inline]
    pub fn ext_mut(&mut self) -> &mut X {
        &mut self.ext
    }

    #[inline]
    fn live(&self, i: usize) -> bool {
        i < self.parent.len() && self.parent[i] != DEAD
    }

    #[inline]
    fn view(&self, i: usize) -> Node {
        Node {
            vertex: self.vertex[i],
            state: self.state[i],
            parent: match self.parent[i] {
                NIL => None,
                p => Some(p),
            },
            via_label: self.via_label[i],
            ts: self.ts[i],
        }
    }

    /// The node at `id`, if alive.
    #[inline]
    pub fn node(&self, id: NodeId) -> Option<Node> {
        let i = id as usize;
        if self.live(i) {
            Some(self.view(i))
        } else {
            None
        }
    }

    /// The timestamp of the live node `id` — one array read, no view
    /// materialization.
    #[inline]
    pub fn ts_of(&self, id: NodeId) -> Option<Timestamp> {
        let i = id as usize;
        if self.live(i) {
            Some(self.ts[i])
        } else {
            None
        }
    }

    /// Lean upward-walk step: `(vertex, state, parent)` of the live
    /// node `id` in three column reads. The engines' per-item path
    /// walks are the hottest loops over the arena; this keeps them off
    /// the full [`Node`] view (which also touches `via_label` and
    /// `ts`).
    #[inline]
    pub fn step_up(&self, id: NodeId) -> Option<(VertexId, StateId, Option<NodeId>)> {
        let i = id as usize;
        if !self.live(i) {
            return None;
        }
        let parent = match self.parent[i] {
            NIL => None,
            p => Some(p),
        };
        Some((self.vertex[i], self.state[i], parent))
    }

    /// Iterates the child ids of `id` by walking its intrusive sibling
    /// chain (newest attachment first). Empty for a dead id.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = if self.live(id as usize) {
            self.first_child[id as usize]
        } else {
            NIL
        };
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let c = cur;
            cur = self.next_sib[c as usize];
            Some(c)
        })
    }

    /// All live occurrences of `key`, oldest first.
    #[inline]
    pub fn occurrences(&self, key: PairKey) -> &[NodeId] {
        self.occurrences
            .get(&key)
            .map(OccSet::as_slice)
            .unwrap_or(&[])
    }

    /// Whether any occurrence of `key` is present ("(v, t) ∈ T_x").
    #[inline]
    pub fn has_pair(&self, key: PairKey) -> bool {
        self.occurrences.contains_key(&key)
    }

    /// The oldest (canonical) occurrence of `key`.
    #[inline]
    pub fn first_occurrence(&self, key: PairKey) -> Option<NodeId> {
        self.occurrences.get(&key).map(OccSet::first)
    }

    /// The `(vertex, state)` pair held at `id`, if alive.
    #[inline]
    pub fn key_of(&self, id: NodeId) -> Option<PairKey> {
        let i = id as usize;
        if self.live(i) {
            Some((self.vertex[i], self.state[i]))
        } else {
            None
        }
    }

    /// The parent's pair of the node at `id` (`None` for the root or a
    /// dead id).
    pub fn parent_key_of(&self, id: NodeId) -> Option<PairKey> {
        let i = id as usize;
        if !self.live(i) || self.parent[i] == NIL {
            return None;
        }
        self.key_of(self.parent[i])
    }

    /// Prepends `id` to `parent`'s sibling chain.
    fn link_under(&mut self, parent: NodeId, id: NodeId) {
        let i = id as usize;
        let fc = self.first_child[parent as usize];
        self.first_child[parent as usize] = id;
        self.next_sib[i] = fc;
        self.prev_sib[i] = NIL;
        if fc != NIL {
            self.prev_sib[fc as usize] = id;
        }
    }

    /// Detaches the live node `id` from its (live) parent's sibling
    /// chain in O(1).
    fn unlink(&mut self, id: NodeId) {
        let i = id as usize;
        let p = self.parent[i] as usize;
        let prev = self.prev_sib[i];
        let next = self.next_sib[i];
        if prev == NIL {
            self.first_child[p] = next;
        } else {
            self.next_sib[prev as usize] = next;
        }
        if next != NIL {
            self.prev_sib[next as usize] = prev;
        }
    }

    /// Adds a child node under `parent`. Returns the new id. Never
    /// heap-allocates once the columns have warmed up (free-listed
    /// slots are reused, the sibling chain is intrusive). Panics if
    /// `parent` is dead.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        vertex: VertexId,
        state: StateId,
        via_label: Label,
        ts: Timestamp,
    ) -> NodeId {
        assert!(self.live(parent as usize), "parent must be alive");
        let id = match self.free.pop() {
            Some(id) => {
                let i = id as usize;
                self.vertex[i] = vertex;
                self.state[i] = state;
                self.parent[i] = parent;
                self.via_label[i] = via_label;
                self.ts[i] = ts;
                self.first_child[i] = NIL;
                id
            }
            None => {
                let id = self.parent.len() as NodeId;
                debug_assert!(id < DEAD, "arena overflow");
                self.vertex.push(vertex);
                self.state.push(state);
                self.parent.push(parent);
                self.via_label.push(via_label);
                self.ts.push(ts);
                self.first_child.push(NIL);
                self.next_sib.push(NIL);
                self.prev_sib.push(NIL);
                id
            }
        };
        self.link_under(parent, id);
        let first = match self.occurrences.entry((vertex, state)) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(OccSet::One(id));
                true
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().push(id);
                false
            }
        };
        self.len += 1;
        self.ext.on_add((vertex, state), id, first);
        id
    }

    /// Re-parents the live node `id` under `new_parent` (timestamp
    /// refresh, Algorithm RAPQ line 7 / Insert lines 2–3). The subtree
    /// stays attached. Panics if either node is dead.
    pub fn reparent(&mut self, id: NodeId, new_parent: NodeId, via_label: Label, ts: Timestamp) {
        let i = id as usize;
        assert!(self.live(i), "node must be alive");
        assert!(self.live(new_parent as usize), "new parent must be alive");
        self.via_label[i] = via_label;
        self.ts[i] = ts;
        let old = self.parent[i];
        if old == new_parent || old == NIL {
            return;
        }
        self.unlink(id);
        self.parent[i] = new_parent;
        self.link_under(new_parent, id);
    }

    /// Updates only the timestamp of the live node `id`.
    pub fn set_ts(&mut self, id: NodeId, ts: Timestamp) {
        assert!(self.live(id as usize), "node must be alive");
        self.ts[id as usize] = ts;
    }

    /// Removes the node at `id`, if alive. Cleans the occurrence index,
    /// detaches it from a surviving parent's sibling chain (a parent
    /// dying in the same batch needs no unlink), and reports the
    /// removal to the semantics extension. Returns whether a node was
    /// removed.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let i = id as usize;
        if !self.live(i) {
            return false;
        }
        let p = self.parent[i];
        if p != NIL && self.parent[p as usize] != DEAD {
            self.unlink(id);
        }
        let key = (self.vertex[i], self.state[i]);
        self.parent[i] = DEAD;
        self.ts[i] = Timestamp::INFINITY;
        self.first_child[i] = NIL;
        self.next_sib[i] = NIL;
        self.prev_sib[i] = NIL;
        self.len -= 1;
        self.free.push(id);
        if let Some(occ) = self.occurrences.get_mut(&key) {
            if occ.remove(id) {
                self.occurrences.remove(&key);
            }
        }
        self.ext.on_remove(key, id);
        true
    }

    /// Removes a set of node ids wholesale. The caller guarantees the
    /// set is downward-closed (whole subtrees) — which holds for expiry
    /// candidates thanks to the timestamp monotonicity invariant.
    pub fn remove_all(&mut self, ids: &[NodeId]) {
        for &id in ids {
            self.remove(id);
        }
    }

    /// Node ids of the subtree rooted at `id` (inclusive), preorder.
    pub fn subtree_ids(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.collect_subtree(id, &mut out);
        out
    }

    /// Clears `out` and fills it with the subtree under `id`
    /// (inclusive, preorder) by walking the intrusive links — no
    /// auxiliary queue.
    pub fn collect_subtree(&self, id: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        if !self.live(id as usize) {
            return;
        }
        let mut cur = id;
        loop {
            out.push(cur);
            let fc = self.first_child[cur as usize];
            if fc != NIL {
                cur = fc;
                continue;
            }
            loop {
                if cur == id {
                    return;
                }
                let ns = self.next_sib[cur as usize];
                if ns != NIL {
                    cur = ns;
                    break;
                }
                cur = self.parent[cur as usize];
            }
        }
    }

    /// Sets the timestamp of the whole subtree under `id` (inclusive).
    /// Used by `Delete` to mark victims with `-∞` (§3.2).
    /// Allocation-free: traverses via the intrusive links.
    pub fn set_subtree_ts(&mut self, id: NodeId, ts: Timestamp) {
        if !self.live(id as usize) {
            return;
        }
        let mut cur = id;
        loop {
            self.ts[cur as usize] = ts;
            let fc = self.first_child[cur as usize];
            if fc != NIL {
                cur = fc;
                continue;
            }
            loop {
                if cur == id {
                    return;
                }
                let ns = self.next_sib[cur as usize];
                if ns != NIL {
                    cur = ns;
                    break;
                }
                cur = self.parent[cur as usize];
            }
        }
    }

    /// Clears `out` and fills it with the live node ids whose
    /// `ts <= watermark` (the expiry candidate set P, downward-closed
    /// by timestamp monotonicity), ascending slot order. One branch-free
    /// threshold scan over the contiguous `ts` column; dead slots and
    /// the root hold `Timestamp::INFINITY` and never match a (finite)
    /// watermark.
    pub fn collect_expired(&self, watermark: Timestamp, out: &mut Vec<NodeId>) {
        out.clear();
        for (i, &ts) in self.ts.iter().enumerate() {
            if ts <= watermark {
                out.push(i as NodeId);
            }
        }
    }

    /// Like [`Tree::collect_expired`] but yields `(vertex, state)`
    /// pairs — the keyed variant for [`super::Unique`] trees, where a
    /// pair identifies its node.
    pub fn collect_expired_keys(&self, watermark: Timestamp, out: &mut Vec<PairKey>) {
        out.clear();
        for (i, &ts) in self.ts.iter().enumerate() {
            if ts <= watermark {
                out.push((self.vertex[i], self.state[i]));
            }
        }
    }

    /// Fused expiry sweep (`ExpiryRAPQ` lines 2–3 in one pass): removes
    /// every node with `ts <= watermark`, recording its pair key in
    /// `out` in ascending slot order. Equivalent to
    /// [`Tree::collect_expired_keys`] followed by per-key removal, but
    /// one threshold scan over the contiguous `ts` column — no
    /// occurrence-map probe to resolve each key back to its id, and no
    /// sibling unlinking inside subtrees that die wholesale.
    pub fn remove_expired_keys(&mut self, watermark: Timestamp, out: &mut Vec<PairKey>) {
        out.clear();
        for i in 0..self.ts.len() {
            if self.ts[i] <= watermark {
                out.push((self.vertex[i], self.state[i]));
                self.remove_swept(i as NodeId, watermark);
            }
        }
    }

    /// Like [`Tree::remove_expired_keys`] but records, per removed
    /// node, its parent id when that parent **survives** the sweep
    /// (`None` when the parent is swept away too) — exactly the
    /// information Algorithm RSPQ's re-marking pass needs, captured
    /// here so the engine needs no pre-removal snapshot pass.
    pub fn remove_expired_with_parents(
        &mut self,
        watermark: Timestamp,
        out: &mut Vec<(PairKey, Option<NodeId>)>,
    ) {
        out.clear();
        for i in 0..self.ts.len() {
            if self.ts[i] > watermark {
                continue;
            }
            let p = self.parent[i];
            let parent = (p != NIL && self.survives(p, watermark)).then_some(p);
            out.push(((self.vertex[i], self.state[i]), parent));
            self.remove_swept(i as NodeId, watermark);
        }
    }

    /// Whether the node in slot `id` outlives a sweep at `watermark`:
    /// live (a slot already swept this pass is `DEAD` with its `ts`
    /// reset to `INFINITY`, hence the explicit check) and not itself
    /// below the threshold.
    #[inline]
    fn survives(&self, id: NodeId, watermark: Timestamp) -> bool {
        let i = id as usize;
        self.parent[i] != DEAD && self.ts[i] > watermark
    }

    /// Removes one slot during a fused expiry sweep: as [`Tree::remove`]
    /// but the parent's child chain is only repaired when the parent
    /// survives the sweep — dying parents take their chains with them.
    fn remove_swept(&mut self, id: NodeId, watermark: Timestamp) {
        let i = id as usize;
        let p = self.parent[i];
        if p != NIL && self.survives(p, watermark) {
            self.unlink(id);
        }
        let key = (self.vertex[i], self.state[i]);
        self.parent[i] = DEAD;
        self.ts[i] = Timestamp::INFINITY;
        self.first_child[i] = NIL;
        self.next_sib[i] = NIL;
        self.prev_sib[i] = NIL;
        self.len -= 1;
        self.free.push(id);
        if let Some(occ) = self.occurrences.get_mut(&key) {
            if occ.remove(id) {
                self.occurrences.remove(&key);
            }
        }
        self.ext.on_remove(key, id);
    }

    /// The state of the **first** (closest to root) occurrence of
    /// `vertex` on the root path of `id` — `FIRST(p[v])` in Algorithm
    /// Extend. Walks upward, so the first-from-root is the last found.
    pub fn first_state_on_path(&self, id: NodeId, vertex: VertexId) -> Option<StateId> {
        let mut found = None;
        let mut cur = id;
        loop {
            let i = cur as usize;
            if !self.live(i) {
                return None;
            }
            if self.vertex[i] == vertex {
                found = Some(self.state[i]);
            }
            let p = self.parent[i];
            if p == NIL {
                return found;
            }
            cur = p;
        }
    }

    /// Whether `(vertex, state)` occurs on the root path of `id` —
    /// `t ∈ p[v]` in Algorithm RSPQ/Extend.
    pub fn path_has(&self, id: NodeId, vertex: VertexId, state: StateId) -> bool {
        let mut cur = id;
        loop {
            let i = cur as usize;
            if !self.live(i) {
                return false;
            }
            if self.vertex[i] == vertex && self.state[i] == state {
                return true;
            }
            let p = self.parent[i];
            if p == NIL {
                return false;
            }
            cur = p;
        }
    }

    /// The root path of `id` as pair keys, root first.
    pub fn path_keys(&self, id: NodeId) -> Vec<PairKey> {
        let mut out = Vec::new();
        let mut cur = id;
        while let Some(key) = self.key_of(cur) {
            out.push(key);
            match self.parent[cur as usize] {
                NIL => break,
                p => cur = p,
            }
        }
        out.reverse();
        out
    }

    /// The root path of `id` as node ids, root first.
    pub fn path_ids(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = id;
        while self.live(cur as usize) {
            out.push(cur);
            match self.parent[cur as usize] {
                NIL => break,
                p => cur = p,
            }
        }
        out.reverse();
        out
    }

    /// The parent id of the live node `id` (`None` for the root or a
    /// dead id).
    #[inline]
    pub fn parent_id_of(&self, id: NodeId) -> Option<NodeId> {
        let i = id as usize;
        if !self.live(i) || self.parent[i] == NIL {
            return None;
        }
        Some(self.parent[i])
    }

    /// Iterates `(id, node)` over live nodes in ascending slot order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Node)> + '_ {
        (0..self.parent.len()).filter_map(move |i| {
            if self.parent[i] == DEAD {
                None
            } else {
                Some((i as NodeId, self.view(i)))
            }
        })
    }

    /// Compacts the arena when fragmentation warrants it: capacity of
    /// at least 64 slots with live occupancy at or below half. Live
    /// slots are packed to the front preserving relative order, every
    /// link and occurrence is remapped, and the semantics extension is
    /// handed the remap table (old id → new id, the dead-slot sentinel
    /// for freed
    /// slots). `remap_scratch` is caller-owned so per-slide compaction
    /// allocates nothing once warmed. Returns whether a compaction
    /// ran. Deterministic: the outcome depends only on slot liveness,
    /// so recovered engines re-compact identically.
    pub fn maybe_compact(&mut self, remap_scratch: &mut Vec<NodeId>) -> bool {
        let cap = self.parent.len();
        if cap < 64 || self.len * 2 > cap {
            return false;
        }
        self.compact(remap_scratch);
        true
    }

    fn compact(&mut self, remap: &mut Vec<NodeId>) {
        let cap = self.parent.len();
        remap.clear();
        remap.resize(cap, DEAD);
        let mut rank: NodeId = 0;
        for (r, &p) in remap.iter_mut().zip(&self.parent) {
            if p != DEAD {
                *r = rank;
                rank += 1;
            }
        }
        #[inline]
        fn map_link(x: NodeId, remap: &[NodeId]) -> NodeId {
            if x == NIL {
                NIL
            } else {
                remap[x as usize]
            }
        }
        // In-place forward moves: rank(i) <= i, and any live slot being
        // overwritten was itself already moved further forward.
        for i in 0..cap {
            let r = remap[i];
            if r == DEAD {
                continue;
            }
            let ri = r as usize;
            self.vertex[ri] = self.vertex[i];
            self.state[ri] = self.state[i];
            self.via_label[ri] = self.via_label[i];
            self.ts[ri] = self.ts[i];
            self.parent[ri] = map_link(self.parent[i], remap);
            self.first_child[ri] = map_link(self.first_child[i], remap);
            self.next_sib[ri] = map_link(self.next_sib[i], remap);
            self.prev_sib[ri] = map_link(self.prev_sib[i], remap);
        }
        let live = rank as usize;
        debug_assert_eq!(live, self.len);
        // Vec::truncate keeps heap capacity, so regrowth after
        // compaction does not reallocate.
        self.vertex.truncate(live);
        self.state.truncate(live);
        self.parent.truncate(live);
        self.via_label.truncate(live);
        self.ts.truncate(live);
        self.first_child.truncate(live);
        self.next_sib.truncate(live);
        self.prev_sib.truncate(live);
        self.free.clear();
        for occ in self.occurrences.values_mut() {
            occ.remap(remap);
        }
        self.root_id = remap[self.root_id as usize];
        self.ext.on_compact(remap);
    }

    /// Debug validation: column/occurrence-index/link consistency,
    /// timestamp monotonicity, acyclicity, free-list hygiene, and the
    /// semantics extension's own checks.
    pub fn validate(&self) -> Result<(), String> {
        let cap = self.parent.len();
        if self.vertex.len() != cap
            || self.state.len() != cap
            || self.via_label.len() != cap
            || self.ts.len() != cap
            || self.first_child.len() != cap
            || self.next_sib.len() != cap
            || self.prev_sib.len() != cap
        {
            return Err("column length drift".into());
        }
        if !self.live(self.root_id as usize) {
            return Err("root missing".into());
        }
        let mut live = 0usize;
        for i in 0..cap {
            if self.parent[i] == DEAD {
                if self.ts[i] != Timestamp::INFINITY {
                    return Err(format!("dead slot {i} has a finite timestamp"));
                }
                continue;
            }
            live += 1;
            let id = i as NodeId;
            let p = self.parent[i];
            if p == NIL {
                if id != self.root_id {
                    return Err(format!("non-root {id} parentless"));
                }
            } else {
                if !self.live(p as usize) {
                    return Err(format!("{id} has dead parent {p}"));
                }
                if self.ts[p as usize] < self.ts[i] {
                    return Err(format!(
                        "timestamp inversion: parent {p}@{} < child {id}@{}",
                        self.ts[p as usize], self.ts[i]
                    ));
                }
                let prev = self.prev_sib[i];
                if prev == NIL {
                    if self.first_child[p as usize] != id {
                        return Err(format!("{p} does not list child {id}"));
                    }
                } else if !self.live(prev as usize)
                    || self.next_sib[prev as usize] != id
                    || self.parent[prev as usize] != p
                {
                    return Err(format!("broken sibling link into {id}"));
                }
                let next = self.next_sib[i];
                if next != NIL
                    && (!self.live(next as usize)
                        || self.prev_sib[next as usize] != id
                        || self.parent[next as usize] != p)
                {
                    return Err(format!("broken sibling link out of {id}"));
                }
            }
            let occ = self.occurrences((self.vertex[i], self.state[i]));
            if !occ.contains(&id) {
                return Err(format!("occurrence index misses {id}"));
            }
            let mut c = self.first_child[i];
            let mut steps = 0usize;
            while c != NIL {
                if !self.live(c as usize) || self.parent[c as usize] != id {
                    return Err(format!("stale child {c} of {id}"));
                }
                steps += 1;
                if steps > self.len {
                    return Err(format!("sibling cycle under {id}"));
                }
                c = self.next_sib[c as usize];
            }
        }
        if live != self.len {
            return Err(format!("len drift: {live} vs {}", self.len));
        }
        if self.free.len() != cap - self.len {
            return Err(format!(
                "free-list drift: {} free vs {} dead slots",
                self.free.len(),
                cap - self.len
            ));
        }
        let mut seen_free = std::collections::HashSet::new();
        for &f in &self.free {
            if (f as usize) >= cap || self.parent[f as usize] != DEAD {
                return Err(format!("free slot {f} is live or out of bounds"));
            }
            if !seen_free.insert(f) {
                return Err(format!("free slot {f} listed twice"));
            }
        }
        for (key, occ) in &self.occurrences {
            if occ.as_slice().is_empty() {
                return Err(format!("empty occurrence list for {key:?}"));
            }
            for &id in occ.as_slice() {
                match self.node(id) {
                    Some(n) if n.key() == *key => {}
                    _ => return Err(format!("occurrence {id} of {key:?} dead or mismatched")),
                }
            }
        }
        // Cycle check: every node must reach the root.
        for i in 0..cap {
            if self.parent[i] == DEAD {
                continue;
            }
            let mut cur = i;
            let mut steps = 0usize;
            loop {
                match self.parent[cur] {
                    NIL => break,
                    p => {
                        cur = p as usize;
                        steps += 1;
                        if steps > self.len {
                            return Err(format!("cycle through {i}"));
                        }
                    }
                }
            }
        }
        self.ext.validate(self)
    }
}

impl<X: SnapshotExt> Tree<X> {
    /// Captures a faithful structural snapshot of this tree (`Full`
    /// checkpoints) in the canonical children-list form: arena slot
    /// assignment, free list, occurrence order, sibling-chain order
    /// (recorded as an explicit child list per node), and extension
    /// state all survive the round trip.
    pub fn to_snapshot(&self) -> TreeSnap {
        let nodes = self
            .iter()
            .map(|(id, n)| NodeSnap {
                id,
                vertex: n.vertex,
                state: n.state,
                parent: n.parent,
                via_label: n.via_label,
                ts: n.ts,
                children: self.children(id).collect(),
            })
            .collect();
        let mut occurrences: Vec<(PairKey, Vec<NodeId>)> = self
            .occurrences
            .iter()
            .map(|(&k, occ)| (k, occ.as_slice().to_vec()))
            .collect();
        occurrences.sort_unstable_by_key(|&(k, _)| k);
        let (marks, dead_marks) = self.ext.export();
        TreeSnap {
            root: self.root,
            root_state: self.root_key.1,
            root_id: self.root_id,
            arena_len: self.capacity() as u32,
            free: self.free.clone(),
            nodes,
            occurrences,
            marks,
            dead_marks,
        }
    }

    /// Rebuilds a tree from a snapshot, validating structural
    /// consistency (a corrupt snapshot is reported, never trusted).
    /// The recorded child lists are rewired into the intrusive sibling
    /// chains in order, so a snapshot of the restored tree is
    /// byte-identical to the original's.
    pub fn from_snapshot(snap: TreeSnap) -> Result<Tree<X>, String> {
        if snap.arena_len >= DEAD {
            return Err(format!("arena length {} out of range", snap.arena_len));
        }
        let cap = snap.arena_len as usize;
        let mut vertex = vec![VertexId(0); cap];
        let mut state = vec![StateId(0); cap];
        let mut parent = vec![DEAD; cap];
        let mut via_label = vec![Label(0); cap];
        let mut ts = vec![Timestamp::INFINITY; cap];
        let mut first_child = vec![NIL; cap];
        let mut next_sib = vec![NIL; cap];
        let mut prev_sib = vec![NIL; cap];
        for n in &snap.nodes {
            let i = n.id as usize;
            if i >= cap {
                return Err(format!("node id {} out of arena bounds", n.id));
            }
            if parent[i] != DEAD {
                return Err(format!("duplicate node id {}", n.id));
            }
            vertex[i] = n.vertex;
            state[i] = n.state;
            via_label[i] = n.via_label;
            ts[i] = n.ts;
            parent[i] = match n.parent {
                None => NIL,
                Some(p) if (p as usize) < cap => p,
                Some(p) => return Err(format!("{} has dead parent {p}", n.id)),
            };
        }
        for n in &snap.nodes {
            let mut prev = NIL;
            for &c in &n.children {
                if (c as usize) >= cap {
                    return Err(format!("stale child {c} of {}", n.id));
                }
                if prev == NIL {
                    first_child[n.id as usize] = c;
                } else {
                    next_sib[prev as usize] = c;
                }
                prev_sib[c as usize] = prev;
                prev = c;
            }
        }
        let mut seen_free = std::collections::HashSet::new();
        for &f in &snap.free {
            match parent.get(f as usize) {
                Some(&DEAD) if seen_free.insert(f) => {}
                Some(&DEAD) => return Err(format!("free slot {f} listed twice")),
                _ => return Err(format!("free slot {f} is live or out of bounds")),
            }
        }
        if snap.nodes.len() + snap.free.len() != cap {
            return Err(format!(
                "arena accounting drift: {} live + {} free != {} slots",
                snap.nodes.len(),
                snap.free.len(),
                snap.arena_len
            ));
        }
        let mut occurrences: FxHashMap<PairKey, OccSet> = FxHashMap::default();
        for (key, ids) in snap.occurrences {
            let occ = match ids.as_slice() {
                [] => return Err(format!("empty occurrence list for {key:?}")),
                [one] => OccSet::One(*one),
                _ => OccSet::Many(ids),
            };
            occurrences.insert(key, occ);
        }
        let tree = Tree {
            root: snap.root,
            root_key: (snap.root, snap.root_state),
            root_id: snap.root_id,
            len: snap.nodes.len(),
            vertex,
            state,
            parent,
            via_label,
            ts,
            first_child,
            next_sib,
            prev_sib,
            free: snap.free,
            occurrences,
            ext: X::import(snap.marks, snap.dead_marks),
        };
        tree.validate()?;
        Ok(tree)
    }
}
