//! Exact structural snapshots of Δ trees — the substrate of `Full`
//! checkpoints (`srpq_persist`).
//!
//! A [`TreeSnap`] captures a [`super::Tree`] *faithfully*, in a
//! canonical children-list form that is independent of the in-memory
//! layout: arena slot assignment, the free list, occurrence order,
//! sibling-chain order (flattened into an explicit child list per
//! node), and the semantics extension's state (RSPQ markings).
//! Faithfulness matters because arena ids leak into behaviour — marks
//! point at node ids, freed slots decide where future nodes land, and
//! expiry scans the timestamp column in slot order — so a restored
//! tree must continue *exactly* where the checkpointed one stopped,
//! not merely hold an equivalent node set. Restoration rewires the
//! recorded child lists back into the intrusive sibling chains in
//! order, making snapshot → restore → snapshot the identity.

use super::{NodeId, PairKey, TreeSemantics};
use srpq_common::{Label, StateId, Timestamp, VertexId};

/// One live arena slot of a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSnap {
    /// Arena slot index.
    pub id: NodeId,
    /// Graph vertex.
    pub vertex: VertexId,
    /// Automaton state.
    pub state: StateId,
    /// Parent slot, `None` for the root.
    pub parent: Option<NodeId>,
    /// Label of the connecting graph edge (meaningless for the root).
    pub via_label: Label,
    /// Minimum edge timestamp along the root path.
    pub ts: Timestamp,
    /// Child slots, in the tree's stored order.
    pub children: Vec<NodeId>,
}

/// A faithful structural snapshot of one spanning tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeSnap {
    /// Root vertex `x`.
    pub root: VertexId,
    /// Start state `s0` of the root key `(x, s0)`.
    pub root_state: StateId,
    /// Arena slot of the root.
    pub root_id: NodeId,
    /// Total arena length (live + freed slots).
    pub arena_len: u32,
    /// Freed slots, in pop order (the *last* entry is reused first).
    pub free: Vec<NodeId>,
    /// Live nodes, ascending slot order.
    pub nodes: Vec<NodeSnap>,
    /// Occurrence lists per pair, each in attachment order (oldest —
    /// canonical — first). Sorted by key for deterministic encoding.
    pub occurrences: Vec<(PairKey, Vec<NodeId>)>,
    /// RSPQ marking set `M_x` (empty for RAPQ trees), sorted by key.
    pub marks: Vec<(PairKey, NodeId)>,
    /// RSPQ dead-mark queue, in drain order (empty for RAPQ trees).
    pub dead_marks: Vec<PairKey>,
}

/// Semantics extensions that can round-trip through a [`TreeSnap`].
///
/// [`super::Unique`] (RAPQ) carries no state; the RSPQ `Markings`
/// extension exports/imports its marking map and dead-mark queue.
pub trait SnapshotExt: TreeSemantics {
    /// Exports the extension state as `(marks, dead_marks)`.
    fn export(&self) -> (Vec<(PairKey, NodeId)>, Vec<PairKey>) {
        (Vec::new(), Vec::new())
    }

    /// Rebuilds the extension from exported state.
    fn import(marks: Vec<(PairKey, NodeId)>, dead_marks: Vec<PairKey>) -> Self;
}
