//! The Δ forest: all spanning trees plus the vertex → trees reverse
//! index.

use super::snapshot::{SnapshotExt, TreeSnap};
use super::{Tree, TreeSemantics};
use srpq_common::{FxHashMap, StateId, VertexId};

/// The reverse index of Δ: which trees contain a given vertex, plus the
/// global node count (Figure 5's "# of nodes"). Shared verbatim by both
/// engines — it only counts `(vertex, tree)` incidences and never looks
/// at states or occurrence multiplicity.
#[derive(Debug, Default)]
pub struct RevIndex {
    /// `vertex → (root → number of (vertex, ·) nodes in that tree)`.
    occurrence: FxHashMap<VertexId, FxHashMap<VertexId, u32>>,
    total_nodes: usize,
}

impl RevIndex {
    /// Roots of all trees containing at least one `(v, ·)` node.
    pub fn trees_containing(&self, v: VertexId) -> Vec<VertexId> {
        self.occurrence
            .get(&v)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Total node count over all trees (roots included).
    pub fn n_nodes(&self) -> usize {
        self.total_nodes
    }

    /// Bookkeeping: a node for `vertex` was added to tree `root`.
    pub fn note_added(&mut self, root: VertexId, vertex: VertexId) {
        *self
            .occurrence
            .entry(vertex)
            .or_default()
            .entry(root)
            .or_insert(0) += 1;
        self.total_nodes += 1;
    }

    /// Bookkeeping: a node for `vertex` was removed from tree `root`.
    pub fn note_removed(&mut self, root: VertexId, vertex: VertexId) {
        let mut empty = false;
        if let Some(m) = self.occurrence.get_mut(&vertex) {
            if let Some(c) = m.get_mut(&root) {
                *c -= 1;
                if *c == 0 {
                    m.remove(&root);
                }
            }
            empty = m.is_empty();
        }
        if empty {
            self.occurrence.remove(&vertex);
        }
        self.total_nodes -= 1;
    }

    fn counts(&self, vertex: VertexId, root: VertexId) -> u32 {
        self.occurrence
            .get(&vertex)
            .and_then(|m| m.get(&root))
            .copied()
            .unwrap_or(0)
    }
}

/// The Δ index: all spanning trees plus a reverse index from vertices
/// to the trees containing them — the reverse index is what bounds
/// per-tuple work by the number of *relevant* trees instead of all n
/// of them.
#[derive(Debug, Default)]
pub struct Forest<X: TreeSemantics> {
    trees: FxHashMap<VertexId, Tree<X>>,
    index: RevIndex,
}

impl<X: TreeSemantics> Forest<X> {
    /// Creates an empty index.
    pub fn new() -> Forest<X> {
        Forest {
            trees: FxHashMap::default(),
            index: RevIndex::default(),
        }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total node count over all trees (roots included).
    pub fn n_nodes(&self) -> usize {
        self.index.n_nodes()
    }

    /// Ensures a tree rooted at `x` exists, creating `(x, s0)` if not.
    pub fn ensure_tree(&mut self, x: VertexId, s0: StateId) -> &mut Tree<X> {
        if let std::collections::hash_map::Entry::Vacant(e) = self.trees.entry(x) {
            e.insert(Tree::new(x, s0));
            self.index.note_added(x, x);
        }
        self.trees.get_mut(&x).expect("just inserted")
    }

    /// The tree rooted at `x`.
    pub fn tree(&self, x: VertexId) -> Option<&Tree<X>> {
        self.trees.get(&x)
    }

    /// Mutable access to the tree rooted at `x`.
    pub fn tree_mut(&mut self, x: VertexId) -> Option<&mut Tree<X>> {
        self.trees.get_mut(&x)
    }

    /// Simultaneous mutable access to one tree and the reverse index
    /// (they are disjoint, but the borrow checker needs the split made
    /// explicit).
    pub fn tree_with_index(&mut self, x: VertexId) -> Option<(&mut Tree<X>, &mut RevIndex)> {
        let index = &mut self.index;
        self.trees.get_mut(&x).map(|t| (t, index))
    }

    /// Roots of all trees containing at least one `(v, ·)` node.
    pub fn trees_containing(&self, v: VertexId) -> Vec<VertexId> {
        self.index.trees_containing(v)
    }

    /// Roots of all trees.
    pub fn roots(&self) -> Vec<VertexId> {
        self.trees.keys().copied().collect()
    }

    /// Drops the tree rooted at `x` if only its root remains, updating
    /// the reverse index. Returns true if dropped.
    pub fn drop_if_trivial(&mut self, x: VertexId) -> bool {
        let trivial = self.trees.get(&x).map(|t| t.is_trivial()).unwrap_or(false);
        if trivial {
            self.trees.remove(&x);
            self.index.note_removed(x, x);
            true
        } else {
            false
        }
    }

    /// Debug validation of every tree plus reverse-index consistency.
    pub fn validate(&self) -> Result<(), String> {
        let mut counted = 0usize;
        for (&root, tree) in &self.trees {
            tree.validate().map_err(|e| format!("tree {root}: {e}"))?;
            counted += tree.len();
            // Every vertex with nodes in this tree must be covered by
            // the reverse index with an exact per-tree count.
            let mut per_vertex: FxHashMap<VertexId, u32> = FxHashMap::default();
            for (_, n) in tree.iter() {
                *per_vertex.entry(n.vertex).or_insert(0) += 1;
            }
            for (&v, &n) in &per_vertex {
                let cached = self.index.counts(v, root);
                if cached != n {
                    return Err(format!(
                        "reverse index counts {cached} nodes of {v} in tree {root}, tree has {n}"
                    ));
                }
            }
        }
        if counted != self.index.total_nodes {
            return Err(format!(
                "node count drift: counted {counted}, cached {}",
                self.index.total_nodes
            ));
        }
        Ok(())
    }
}

impl<X: SnapshotExt> Forest<X> {
    /// Captures a faithful snapshot of every tree (`Full` checkpoints),
    /// sorted by root vertex for deterministic encoding.
    pub fn to_snapshot(&self) -> Vec<TreeSnap> {
        let mut snaps: Vec<TreeSnap> = self.trees.values().map(Tree::to_snapshot).collect();
        snaps.sort_unstable_by_key(|s| s.root);
        snaps
    }

    /// Rebuilds a forest from tree snapshots; the reverse index is
    /// recomputed from the restored trees.
    pub fn from_snapshot(snaps: Vec<TreeSnap>) -> Result<Forest<X>, String> {
        let mut forest = Forest::new();
        for snap in snaps {
            let root = snap.root;
            let tree = Tree::from_snapshot(snap).map_err(|e| format!("tree {root}: {e}"))?;
            for (_, n) in tree.iter() {
                forest.index.note_added(root, n.vertex);
            }
            if forest.trees.insert(root, tree).is_some() {
                return Err(format!("duplicate tree root {root}"));
            }
        }
        forest.validate()?;
        Ok(forest)
    }
}
