//! The Δ forest: all spanning trees plus the vertex → trees reverse
//! index.

use super::snapshot::{SnapshotExt, TreeSnap};
use super::{Tree, TreeSemantics};
use srpq_common::{FxHashMap, StateId, VertexId};

/// The reverse index of Δ: which trees contain a given vertex, plus the
/// global node count (Figure 5's "# of nodes"). Shared verbatim by both
/// engines — it only counts `(vertex, tree)` incidences and never looks
/// at states or occurrence multiplicity.
#[derive(Debug, Default)]
pub struct RevIndex {
    /// `vertex → (root → number of (vertex, ·) nodes in that tree)`.
    occurrence: FxHashMap<VertexId, FxHashMap<VertexId, u32>>,
    total_nodes: usize,
}

impl RevIndex {
    /// Roots of all trees containing at least one `(v, ·)` node.
    pub fn trees_containing(&self, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.collect_trees_containing(v, &mut out);
        out
    }

    /// Clears `out` and fills it with the roots of all trees containing
    /// at least one `(v, ·)` node — the allocation-free variant for the
    /// per-tuple hot path (same order as [`RevIndex::trees_containing`]).
    pub fn collect_trees_containing(&self, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        if let Some(m) = self.occurrence.get(&v) {
            out.extend(m.keys().copied());
        }
    }

    /// Total node count over all trees (roots included).
    pub fn n_nodes(&self) -> usize {
        self.total_nodes
    }

    /// Bookkeeping: a node for `vertex` was added to tree `root`.
    pub fn note_added(&mut self, root: VertexId, vertex: VertexId) {
        *self
            .occurrence
            .entry(vertex)
            .or_default()
            .entry(root)
            .or_insert(0) += 1;
        self.total_nodes += 1;
    }

    /// Bookkeeping: a node for `vertex` was removed from tree `root`.
    /// A vertex's outer entry is retained even when its last incidence
    /// goes — window churn re-adds the same vertices, and an empty
    /// inner map with warm capacity makes the re-add allocation-free.
    pub fn note_removed(&mut self, root: VertexId, vertex: VertexId) {
        if let Some(m) = self.occurrence.get_mut(&vertex) {
            if let Some(c) = m.get_mut(&root) {
                *c -= 1;
                if *c == 0 {
                    m.remove(&root);
                }
            }
        }
        self.total_nodes -= 1;
    }

    fn counts(&self, vertex: VertexId, root: VertexId) -> u32 {
        self.occurrence
            .get(&vertex)
            .and_then(|m| m.get(&root))
            .copied()
            .unwrap_or(0)
    }
}

/// The Δ index: all spanning trees plus a reverse index from vertices
/// to the trees containing them — the reverse index is what bounds
/// per-tuple work by the number of *relevant* trees instead of all n
/// of them.
#[derive(Debug, Default)]
pub struct Forest<X: TreeSemantics> {
    trees: FxHashMap<VertexId, Tree<X>>,
    index: RevIndex,
    /// Recycled trees awaiting a new root. Window churn destroys and
    /// recreates trees constantly; re-rooting a pooled tree reuses its
    /// arena columns and occurrence map at their high-water capacity,
    /// keeping the steady-state slide path allocation-free.
    pool: Vec<Tree<X>>,
}

/// Trees whose arenas grew beyond this many slots are dropped instead
/// of pooled — one pathological burst must not pin its high-water
/// memory for the rest of the stream.
const POOL_MAX_SLOTS: usize = 4096;

impl<X: TreeSemantics> Forest<X> {
    /// Creates an empty index.
    pub fn new() -> Forest<X> {
        Forest {
            trees: FxHashMap::default(),
            index: RevIndex::default(),
            pool: Vec::new(),
        }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total node count over all trees (roots included).
    pub fn n_nodes(&self) -> usize {
        self.index.n_nodes()
    }

    /// Ensures a tree rooted at `x` exists, creating `(x, s0)` if not
    /// (re-rooting a pooled tree when one is available).
    pub fn ensure_tree(&mut self, x: VertexId, s0: StateId) -> &mut Tree<X> {
        let pool = &mut self.pool;
        if let std::collections::hash_map::Entry::Vacant(e) = self.trees.entry(x) {
            let tree = match pool.pop() {
                Some(mut t) => {
                    t.reset_root(x, s0);
                    t
                }
                None => Tree::new(x, s0),
            };
            e.insert(tree);
            self.index.note_added(x, x);
        }
        self.trees.get_mut(&x).expect("just inserted")
    }

    /// The tree rooted at `x`.
    pub fn tree(&self, x: VertexId) -> Option<&Tree<X>> {
        self.trees.get(&x)
    }

    /// Mutable access to the tree rooted at `x`.
    pub fn tree_mut(&mut self, x: VertexId) -> Option<&mut Tree<X>> {
        self.trees.get_mut(&x)
    }

    /// Simultaneous mutable access to one tree and the reverse index
    /// (they are disjoint, but the borrow checker needs the split made
    /// explicit).
    pub fn tree_with_index(&mut self, x: VertexId) -> Option<(&mut Tree<X>, &mut RevIndex)> {
        let index = &mut self.index;
        self.trees.get_mut(&x).map(|t| (t, index))
    }

    /// Roots of all trees containing at least one `(v, ·)` node.
    pub fn trees_containing(&self, v: VertexId) -> Vec<VertexId> {
        self.index.trees_containing(v)
    }

    /// Clears `out` and fills it with the roots of all trees containing
    /// at least one `(v, ·)` node (allocation-free hot-path variant).
    pub fn collect_trees_containing(&self, v: VertexId, out: &mut Vec<VertexId>) {
        self.index.collect_trees_containing(v, out);
    }

    /// Roots of all trees.
    pub fn roots(&self) -> Vec<VertexId> {
        self.trees.keys().copied().collect()
    }

    /// Clears `out` and fills it with the roots of all trees
    /// (allocation-free variant for per-slide expiry sweeps).
    pub fn collect_roots(&self, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend(self.trees.keys().copied());
    }

    /// Total arena slots (live + free-listed) over all trees.
    pub fn n_slots(&self) -> usize {
        let live: usize = self.trees.values().map(Tree::capacity).sum();
        live + self.pool.iter().map(|t| t.capacity()).sum::<usize>()
    }

    /// Total bytes held by the column arrays over all trees, pooled
    /// recycled trees included (their arenas stay resident).
    pub fn arena_bytes(&self) -> usize {
        let live: usize = self.trees.values().map(Tree::arena_bytes).sum();
        live + self.pool.iter().map(|t| t.arena_bytes()).sum::<usize>()
    }

    /// Drops the tree rooted at `x` if only its root remains, updating
    /// the reverse index. Modest trees go to the recycling pool instead
    /// of being freed. Returns true if dropped.
    pub fn drop_if_trivial(&mut self, x: VertexId) -> bool {
        let trivial = self.trees.get(&x).map(|t| t.is_trivial()).unwrap_or(false);
        if trivial {
            if let Some(t) = self.trees.remove(&x) {
                if t.capacity() <= POOL_MAX_SLOTS {
                    self.pool.push(t);
                }
            }
            self.index.note_removed(x, x);
            true
        } else {
            false
        }
    }

    /// Debug validation of every tree plus reverse-index consistency.
    pub fn validate(&self) -> Result<(), String> {
        let mut counted = 0usize;
        for (&root, tree) in &self.trees {
            tree.validate().map_err(|e| format!("tree {root}: {e}"))?;
            counted += tree.len();
            // Every vertex with nodes in this tree must be covered by
            // the reverse index with an exact per-tree count.
            let mut per_vertex: FxHashMap<VertexId, u32> = FxHashMap::default();
            for (_, n) in tree.iter() {
                *per_vertex.entry(n.vertex).or_insert(0) += 1;
            }
            for (&v, &n) in &per_vertex {
                let cached = self.index.counts(v, root);
                if cached != n {
                    return Err(format!(
                        "reverse index counts {cached} nodes of {v} in tree {root}, tree has {n}"
                    ));
                }
            }
        }
        if counted != self.index.total_nodes {
            return Err(format!(
                "node count drift: counted {counted}, cached {}",
                self.index.total_nodes
            ));
        }
        Ok(())
    }
}

impl<X: SnapshotExt> Forest<X> {
    /// Captures a faithful snapshot of every tree (`Full` checkpoints),
    /// sorted by root vertex for deterministic encoding.
    pub fn to_snapshot(&self) -> Vec<TreeSnap> {
        let mut snaps: Vec<TreeSnap> = self.trees.values().map(Tree::to_snapshot).collect();
        snaps.sort_unstable_by_key(|s| s.root);
        snaps
    }

    /// Rebuilds a forest from tree snapshots; the reverse index is
    /// recomputed from the restored trees.
    pub fn from_snapshot(snaps: Vec<TreeSnap>) -> Result<Forest<X>, String> {
        let mut forest = Forest::new();
        for snap in snaps {
            let root = snap.root;
            let tree = Tree::from_snapshot(snap).map_err(|e| format!("tree {root}: {e}"))?;
            for (_, n) in tree.iter() {
                forest.index.note_added(root, n.vertex);
            }
            if forest.trees.insert(root, tree).is_some() {
                return Err(format!("duplicate tree root {root}"));
            }
        }
        forest.validate()?;
        Ok(forest)
    }
}
