//! Unit tests for the shared Δ forest, covering the two documented
//! invariants (unique `(vertex, state)` per [`Unique`] tree;
//! root-to-leaf timestamp monotonicity) plus subtree expiry, the
//! occurrence index, and the reverse index — ported from the formerly
//! duplicated per-engine arenas so both instantiations stay pinned.

use super::{Forest, NodeId, PairKey, Tree, TreeSemantics, Unique};
use crate::rspq::markings::Markings;
use srpq_common::{Label, StateId, Timestamp, VertexId};

fn v(i: u32) -> VertexId {
    VertexId(i)
}

fn s(i: u32) -> StateId {
    StateId(i)
}

fn l(i: u32) -> Label {
    Label(i)
}

// ---------------------------------------------------------------------
// Unique (RAPQ) trees: keyed API and the one-occurrence invariant.
// ---------------------------------------------------------------------

#[test]
fn new_tree_has_immortal_root() {
    let t: Tree<Unique> = Tree::new(v(0), s(0));
    assert_eq!(t.len(), 1);
    assert!(t.is_trivial());
    assert!(!t.is_empty());
    assert_eq!(t.ts((v(0), s(0))), Some(Timestamp::INFINITY));
    let mut expired = Vec::new();
    t.collect_expired_keys(Timestamp(i64::MAX - 1), &mut expired);
    assert!(expired.is_empty());
    t.validate().unwrap();
}

#[test]
fn add_and_subtree() {
    let mut t: Tree<Unique> = Tree::new(v(0), s(0));
    t.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(5));
    t.add((v(2), s(2)), (v(1), s(1)), l(1), Timestamp(3));
    t.add((v(3), s(1)), (v(1), s(1)), l(0), Timestamp(4));
    assert_eq!(t.len(), 4);
    let sub = t.subtree_keys((v(1), s(1)));
    assert_eq!(sub.len(), 3);
    assert_eq!(sub[0], (v(1), s(1)));
    t.validate().unwrap();
}

#[test]
fn timestamp_monotonicity_enforced_by_validate() {
    let mut t: Tree<Unique> = Tree::new(v(0), s(0));
    t.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(5));
    // Deliberately violate invariant 2: child fresher than parent.
    t.add((v(2), s(2)), (v(1), s(1)), l(1), Timestamp(9));
    let err = t.validate().unwrap_err();
    assert!(err.contains("timestamp inversion"), "{err}");
}

#[test]
fn occurrence_uniqueness_enforced_by_validate() {
    // Bypass the keyed API to materialize a duplicate pair, as a bug in
    // the engine would: validate must reject it (Lemma 1, invariant 2).
    let mut t: Tree<Unique> = Tree::new(v(0), s(0));
    let root = t.root_id();
    t.add_child(root, v(1), s(1), l(0), Timestamp(5));
    // Debug builds trip the `debug_assert` in `Unique::on_add` (eager
    // enforcement); release builds let the duplicate land and validate
    // must flag it. Libtest captures the panic output per-test, so no
    // hook manipulation is needed (or safe — hooks are process-global).
    let dup = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        t.add_child(root, v(1), s(1), l(0), Timestamp(4));
    }));
    assert_eq!(dup.is_ok(), !cfg!(debug_assertions));
    if dup.is_ok() {
        let err = t.validate().unwrap_err();
        assert!(err.contains("occurs 2 times"), "{err}");
    }
}

#[test]
fn reparent_moves_subtree() {
    let mut t: Tree<Unique> = Tree::new(v(0), s(0));
    t.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(2));
    t.add((v(2), s(1)), (v(0), s(0)), l(0), Timestamp(8));
    t.add((v(3), s(2)), (v(1), s(1)), l(1), Timestamp(2));
    // (v3,s2) refreshes under (v2,s1).
    t.reparent_key((v(3), s(2)), (v(2), s(1)), l(1), Timestamp(7));
    assert_eq!(t.parent_key((v(3), s(2))), Some((v(2), s(1))));
    t.validate().unwrap();
}

#[test]
fn reparent_same_parent_updates_ts_only() {
    let mut t: Tree<Unique> = Tree::new(v(0), s(0));
    t.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(2));
    t.reparent_key((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(9));
    assert_eq!(t.ts((v(1), s(1))), Some(Timestamp(9)));
    assert_eq!(t.children(t.root_id()).count(), 1);
    t.validate().unwrap();
}

#[test]
fn expired_set_is_downward_closed_and_removable() {
    // Subtree expiry: under timestamp monotonicity the candidate set
    // {n | n.ts <= wm} is a union of whole subtrees, so remove_all can
    // prune it wholesale and leave a consistent tree.
    let mut t: Tree<Unique> = Tree::new(v(0), s(0));
    t.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(2));
    t.add((v(2), s(2)), (v(1), s(1)), l(1), Timestamp(2));
    t.add((v(3), s(1)), (v(0), s(0)), l(0), Timestamp(9));
    let mut expired = Vec::new();
    t.collect_expired_keys(Timestamp(5), &mut expired);
    assert_eq!(expired.len(), 2);
    // Downward-closed: every live descendant of an expired node is in
    // the set too.
    for &key in &expired {
        for sub in t.subtree_keys(key) {
            assert!(expired.contains(&sub), "{sub:?} missing from expiry set");
        }
    }
    t.remove_all_keys(&expired);
    assert_eq!(t.len(), 2);
    assert!(t.contains((v(3), s(1))));
    assert!(!t.contains((v(1), s(1))));
    t.validate().unwrap();
}

#[test]
fn set_subtree_ts_marks_whole_subtree() {
    let mut t: Tree<Unique> = Tree::new(v(0), s(0));
    t.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(5));
    t.add((v(2), s(2)), (v(1), s(1)), l(1), Timestamp(5));
    t.add((v(3), s(1)), (v(0), s(0)), l(0), Timestamp(5));
    t.set_subtree_ts_key((v(1), s(1)), Timestamp::NEG_INFINITY);
    assert_eq!(t.ts((v(1), s(1))), Some(Timestamp::NEG_INFINITY));
    assert_eq!(t.ts((v(2), s(2))), Some(Timestamp::NEG_INFINITY));
    assert_eq!(t.ts((v(3), s(1))), Some(Timestamp(5)));
}

// ---------------------------------------------------------------------
// Markings (RSPQ) trees: multiple occurrences, marks, path queries.
// ---------------------------------------------------------------------

#[test]
fn root_is_marked() {
    let t: Tree<Markings> = Tree::new(v(0), s(0));
    assert!(t.is_marked((v(0), s(0))));
    assert_eq!(t.len(), 1);
    t.validate().unwrap();
}

#[test]
fn duplicate_pairs_coexist() {
    let mut t: Tree<Markings> = Tree::new(v(0), s(0));
    let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(5));
    let b = t.add_child(t.root_id(), v(2), s(1), l(0), Timestamp(5));
    // Second copy of (1, s1) under a different branch.
    let a2 = t.add_child(b, v(1), s(1), l(1), Timestamp(4));
    assert_eq!(t.occurrences((v(1), s(1))), &[a, a2]);
    assert!(t.has_pair((v(1), s(1))));
    // The first occurrence was marked; the duplicate did not move it.
    assert!(t.is_marked((v(1), s(1))));
    t.validate().unwrap();
}

#[test]
fn first_state_on_path_picks_nearest_root() {
    let mut t: Tree<Markings> = Tree::new(v(0), s(0));
    let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(5));
    let b = t.add_child(a, v(2), s(2), l(1), Timestamp(5));
    let c = t.add_child(b, v(1), s(2), l(0), Timestamp(5));
    assert_eq!(t.first_state_on_path(c, v(1)), Some(s(1)));
    assert_eq!(t.first_state_on_path(c, v(0)), Some(s(0)));
    assert_eq!(t.first_state_on_path(c, v(9)), None);
    assert!(t.path_has(c, v(1), s(2)));
    assert!(t.path_has(c, v(1), s(1)));
    assert!(!t.path_has(b, v(1), s(2)));
}

#[test]
fn remove_all_cleans_indexes_and_reports_dead_marks() {
    let mut t: Tree<Markings> = Tree::new(v(0), s(0));
    let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(2));
    let b = t.add_child(a, v(2), s(2), l(1), Timestamp(2));
    assert!(t.is_marked((v(1), s(1))));
    assert!(t.is_marked((v(2), s(2))));
    t.remove_all(&[a, b]);
    let dead = t.take_dead_marks();
    assert_eq!(dead.len(), 2);
    assert_eq!(t.len(), 1);
    assert!(!t.has_pair((v(1), s(1))));
    assert!(!t.is_marked((v(2), s(2))));
    // Drained: a second take returns nothing.
    assert!(t.take_dead_marks().is_empty());
    t.validate().unwrap();
}

#[test]
fn arena_reuses_free_slots() {
    let mut t: Tree<Markings> = Tree::new(v(0), s(0));
    let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(2));
    t.remove_all(&[a]);
    let b = t.add_child(t.root_id(), v(2), s(1), l(0), Timestamp(3));
    assert_eq!(a, b, "slot not reused");
    t.validate().unwrap();
}

#[test]
fn collect_expired_and_subtree_ts() {
    let mut t: Tree<Markings> = Tree::new(v(0), s(0));
    let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(10));
    let b = t.add_child(a, v(2), s(2), l(1), Timestamp(5));
    let mut exp = Vec::new();
    t.collect_expired(Timestamp(5), &mut exp);
    assert_eq!(exp, vec![b]);
    t.set_subtree_ts(a, Timestamp::NEG_INFINITY);
    t.collect_expired(Timestamp(5), &mut exp);
    assert_eq!(exp, vec![a, b], "ascending slot order, scratch re-cleared");
}

#[test]
fn path_keys_root_first() {
    let mut t: Tree<Markings> = Tree::new(v(0), s(0));
    let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(2));
    let b = t.add_child(a, v(2), s(2), l(1), Timestamp(2));
    assert_eq!(
        t.path_keys(b),
        vec![(v(0), s(0)), (v(1), s(1)), (v(2), s(2))]
    );
    assert_eq!(t.path_ids(b), vec![t.root_id(), a, b]);
}

#[test]
fn mark_dies_only_with_its_node() {
    let mut t: Tree<Markings> = Tree::new(v(0), s(0));
    let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(2));
    let b = t.add_child(t.root_id(), v(3), s(3), l(0), Timestamp(2));
    let _a2 = t.add_child(b, v(1), s(1), l(1), Timestamp(2));
    assert_eq!(t.ext().marked_node((v(1), s(1))), Some(a));
    // Removing the *other* occurrence keeps the mark.
    let ids = t.subtree_ids(b);
    t.remove_all(&ids);
    let dead = t.take_dead_marks();
    assert_eq!(dead, vec![(v(3), s(3))]);
    assert!(t.is_marked((v(1), s(1))));
    t.validate().unwrap();
}

#[test]
fn unmark_then_fresh_rediscovery_remarks() {
    let mut t: Tree<Markings> = Tree::new(v(0), s(0));
    let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(2));
    assert!(t.unmark((v(1), s(1))));
    assert!(!t.unmark((v(1), s(1))));
    // Another occurrence while one is live: stays unmarked.
    let a2 = t.add_child(t.root_id(), v(1), s(1), l(1), Timestamp(3));
    assert!(!t.is_marked((v(1), s(1))));
    // All occurrences gone, then rediscovered: marked afresh.
    t.remove_all(&[a, a2]);
    t.take_dead_marks();
    let a3 = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(4));
    assert_eq!(t.ext().marked_node((v(1), s(1))), Some(a3));
    t.validate().unwrap();
}

// ---------------------------------------------------------------------
// Forest + reverse index, over both semantics.
// ---------------------------------------------------------------------

#[test]
fn forest_reverse_index_tracks_occurrences() {
    let mut d: Forest<Unique> = Forest::new();
    d.ensure_tree(v(0), s(0));
    {
        let (tree, idx) = d.tree_with_index(v(0)).unwrap();
        tree.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(1));
        idx.note_added(v(0), v(1));
        tree.add((v(1), s(2)), (v(1), s(1)), l(1), Timestamp(1));
        idx.note_added(v(0), v(1));
    }
    assert_eq!(d.trees_containing(v(1)), vec![v(0)]);
    assert_eq!(d.n_nodes(), 3);
    d.validate().unwrap();

    // Removing one of two occurrences keeps the reverse entry.
    {
        let (tree, idx) = d.tree_with_index(v(0)).unwrap();
        tree.remove_all_keys(&[(v(1), s(2))]);
        idx.note_removed(v(0), v(1));
    }
    assert_eq!(d.trees_containing(v(1)), vec![v(0)]);
    d.validate().unwrap();

    {
        let (tree, idx) = d.tree_with_index(v(0)).unwrap();
        tree.remove_all_keys(&[(v(1), s(1))]);
        idx.note_removed(v(0), v(1));
    }
    assert!(d.trees_containing(v(1)).is_empty());
    d.validate().unwrap();
}

#[test]
fn drop_if_trivial() {
    let mut d: Forest<Markings> = Forest::new();
    d.ensure_tree(v(5), s(0));
    assert_eq!(d.n_trees(), 1);
    assert!(d.drop_if_trivial(v(5)));
    assert_eq!(d.n_trees(), 0);
    assert_eq!(d.n_nodes(), 0);
    assert!(!d.drop_if_trivial(v(5)));
    d.validate().unwrap();
}

#[test]
fn ensure_tree_is_idempotent() {
    let mut d: Forest<Unique> = Forest::new();
    d.ensure_tree(v(1), s(0));
    d.ensure_tree(v(1), s(0));
    assert_eq!(d.n_trees(), 1);
    assert_eq!(d.n_nodes(), 1);
}

// ---------------------------------------------------------------------
// The hooks themselves: a recording semantics proves the contract.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct Recorder {
    events: Vec<(char, PairKey, NodeId, bool)>,
}

impl TreeSemantics for Recorder {
    fn on_add(&mut self, key: PairKey, id: NodeId, first: bool) {
        self.events.push(('+', key, id, first));
    }

    fn on_remove(&mut self, key: PairKey, id: NodeId) {
        self.events.push(('-', key, id, false));
    }
}

// ---------------------------------------------------------------------
// Snapshots: faithful round trips for Full checkpoints.
// ---------------------------------------------------------------------

#[test]
fn unique_forest_snapshot_round_trips() {
    let mut f: Forest<Unique> = Forest::new();
    f.ensure_tree(v(0), s(0));
    let (t, idx) = f.tree_with_index(v(0)).unwrap();
    t.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(5));
    idx.note_added(v(0), v(1));
    t.add((v(2), s(2)), (v(1), s(1)), l(1), Timestamp(4));
    idx.note_added(v(0), v(2));
    t.add((v(3), s(1)), (v(0), s(0)), l(0), Timestamp(7));
    idx.note_added(v(0), v(3));
    // Remove one node so the free list is non-empty.
    t.remove_all_keys(&[(v(2), s(2))]);
    idx.note_removed(v(0), v(2));
    f.ensure_tree(v(5), s(0));
    f.validate().unwrap();

    let restored = Forest::<Unique>::from_snapshot(f.to_snapshot()).unwrap();
    assert_eq!(restored.n_trees(), f.n_trees());
    assert_eq!(restored.n_nodes(), f.n_nodes());
    assert_eq!(restored.to_snapshot(), f.to_snapshot());
    let rt = restored.tree(v(0)).unwrap();
    assert_eq!(rt.ts((v(1), s(1))), Some(Timestamp(5)));
    assert_eq!(rt.parent_key((v(3), s(1))), Some((v(0), s(0))));
    // The freed arena slot is reused identically on both sides: slot
    // assignment is part of the faithful contract.
    let mut f2 = f;
    let mut r2 = restored;
    f2.tree_mut(v(0))
        .unwrap()
        .add((v(9), s(2)), (v(1), s(1)), l(1), Timestamp(6));
    r2.tree_mut(v(0))
        .unwrap()
        .add((v(9), s(2)), (v(1), s(1)), l(1), Timestamp(6));
    assert_eq!(
        f2.tree(v(0)).unwrap().first_occurrence((v(9), s(2))),
        r2.tree(v(0)).unwrap().first_occurrence((v(9), s(2)))
    );
}

#[test]
fn markings_snapshot_preserves_marks_and_duplicates() {
    let mut t: Tree<Markings> = Tree::new(v(0), s(0));
    let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(5));
    let b = t.add_child(a, v(2), s(1), l(1), Timestamp(4));
    // A duplicate occurrence of (v2, s1) plus an unmark, as conflict
    // replay would produce.
    let b2 = t.add_child(t.root_id(), v(2), s(1), l(0), Timestamp(6));
    t.unmark((v(1), s(1)));
    t.validate().unwrap();
    let snap = t.to_snapshot();
    let restored = Tree::<Markings>::from_snapshot(snap.clone()).unwrap();
    assert_eq!(restored.to_snapshot(), snap);
    assert_eq!(restored.occurrences((v(2), s(1))), &[b, b2]);
    assert!(!restored.is_marked((v(1), s(1))));
    assert!(restored.is_marked((v(2), s(1))));
    assert_eq!(restored.n_marked(), t.n_marked());
}

#[test]
fn corrupt_snapshots_are_rejected() {
    let mut t: Tree<Unique> = Tree::new(v(0), s(0));
    t.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(5));
    let good = t.to_snapshot();

    let mut bad = good.clone();
    bad.nodes[1].parent = Some(99); // dangling parent
    assert!(Tree::<Unique>::from_snapshot(bad).is_err());

    let mut bad = good.clone();
    bad.free.push(1); // "free" slot that is live
    assert!(Tree::<Unique>::from_snapshot(bad).is_err());

    let mut bad = good.clone();
    bad.occurrences.clear(); // index out of sync
    assert!(Tree::<Unique>::from_snapshot(bad).is_err());

    let mut bad = good;
    bad.nodes[0].ts = Timestamp(0); // root below its child: inversion
    assert!(Tree::<Unique>::from_snapshot(bad).is_err());
}

// ---------------------------------------------------------------------
// Compaction: remap consistency, occurrence agreement, determinism.
// ---------------------------------------------------------------------

#[test]
fn small_arenas_never_compact() {
    let mut t: Tree<Markings> = Tree::new(v(0), s(0));
    let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(2));
    t.remove_all(&[a]);
    let mut remap = Vec::new();
    assert!(!t.maybe_compact(&mut remap), "below the capacity floor");
}

#[test]
fn compaction_squeezes_arena_and_remaps_ids() {
    let mut t: Tree<Markings> = Tree::new(v(0), s(0));
    let ids: Vec<NodeId> = (0..100u32)
        .map(|i| t.add_child(t.root_id(), v(i + 1), s(1), l(0), Timestamp(10)))
        .collect();
    // Kill the first 90 children, keep the last 10.
    t.remove_all(&ids[..90]);
    t.take_dead_marks();
    let before_cap = t.capacity();
    assert!(before_cap >= 64);
    let mut remap = Vec::new();
    assert!(t.maybe_compact(&mut remap));
    assert_eq!(t.capacity(), t.len(), "arena not squeezed to live size");
    t.validate().unwrap();
    // Every survivor is still reachable under its key, with timestamp,
    // parent, and mark intact (occurrence-index agreement is part of
    // validate()).
    for i in 90..100u32 {
        let key = (v(i + 1), s(1));
        let id = t.first_occurrence(key).expect("survivor lost");
        assert_eq!(t.ts_of(id), Some(Timestamp(10)));
        assert_eq!(t.node(id).unwrap().parent, Some(t.root_id()));
        assert!(t.is_marked(key));
        assert_eq!(t.ext().marked_node(key), Some(id), "mark not remapped");
    }
}

#[test]
fn compaction_is_deterministic_and_snapshot_round_trips() {
    let build = || {
        let mut t: Tree<Markings> = Tree::new(v(0), s(0));
        let mut prev = t.root_id();
        for i in 0..80u32 {
            let id = t.add_child(prev, v(i + 1), s(i % 3), l(0), Timestamp(100 - i as i64));
            if i % 2 == 0 {
                prev = id;
            }
        }
        // Expire the deep (low-timestamp) tail so the survivors sit in
        // scattered slots, then compact.
        let mut exp = Vec::new();
        t.collect_expired(Timestamp(80), &mut exp);
        t.remove_all(&exp);
        t.take_dead_marks();
        let mut remap = Vec::new();
        assert!(t.maybe_compact(&mut remap), "fixture must trigger");
        t
    };
    let t1 = build();
    let t2 = build();
    assert_eq!(
        t1.to_snapshot(),
        t2.to_snapshot(),
        "compaction depends on more than slot liveness"
    );
    let snap = t1.to_snapshot();
    let restored = Tree::<Markings>::from_snapshot(snap.clone()).unwrap();
    assert_eq!(restored.to_snapshot(), snap);
    restored.validate().unwrap();
}

#[test]
fn randomized_sweeps_stay_valid_across_compactions() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    for seed in 0..4u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t: Tree<Markings> = Tree::new(v(0), s(0));
        let mut remap = Vec::new();
        let mut exp = Vec::new();
        let mut compactions = 0u32;
        for round in 0..40 {
            // Insert a burst under random live parents, respecting
            // timestamp monotonicity (child ts ≤ parent ts).
            let mut live: Vec<NodeId> = t.iter().map(|(id, _)| id).collect();
            for _ in 0..rng.gen_range(5..40) {
                let pid = live[rng.gen_range(0..live.len())];
                let pts = t.ts_of(pid).unwrap();
                let ts = Timestamp(rng.gen_range(0..=pts.0.min(1_000)));
                let id = t.add_child(
                    pid,
                    v(rng.gen_range(1..50)),
                    s(rng.gen_range(0..4)),
                    l(0),
                    ts,
                );
                live.push(id);
            }
            // Expire a random watermark (the candidate set is downward
            // closed under monotonicity), then maybe compact.
            let wm = Timestamp(rng.gen_range(0..800));
            t.collect_expired(wm, &mut exp);
            t.remove_all(&exp);
            t.take_dead_marks();
            if t.maybe_compact(&mut remap) {
                compactions += 1;
            }
            t.validate()
                .unwrap_or_else(|e| panic!("seed {seed}, round {round}: {e}"));
        }
        assert!(compactions > 0, "seed {seed}: compaction never triggered");
    }
}

#[test]
fn semantics_hooks_observe_every_mutation() {
    let mut t: Tree<Recorder> = Tree::new(v(0), s(0));
    let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(2));
    let a2 = t.add_child(t.root_id(), v(1), s(1), l(1), Timestamp(3));
    t.remove_all(&[a, a2]);
    assert_eq!(
        t.ext().events,
        vec![
            ('+', (v(0), s(0)), 0, true),
            ('+', (v(1), s(1)), a, true),
            ('+', (v(1), s(1)), a2, false),
            ('-', (v(1), s(1)), a, false),
            ('-', (v(1), s(1)), a2, false),
        ]
    );
}
