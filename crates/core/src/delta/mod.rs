//! The shared Δ spanning-forest index.
//!
//! Both streaming engines of the paper maintain the same core data
//! structure: a collection of spanning trees of the product graph
//! `G × A`, one per vertex `x` that roots a node `(x, s0)`, where a
//! node `(u, s)` witnesses a path `x ⇝ u` driving the automaton from
//! `s0` to `s` and carries the minimum edge timestamp along that path
//! (Definitions 9 and 12). Algorithm RAPQ (§3) keeps at most one node
//! per `(vertex, state)` pair; Algorithm RSPQ (§4) additionally keeps
//! duplicate occurrences materialized by conflict replay, plus the
//! marking set `M_x` (Definition 18).
//!
//! This module factors the common 90% into one arena-backed
//! implementation, parameterized by a [`TreeSemantics`] hook type:
//!
//! * [`Tree`]`<X>` — one spanning tree, stored **struct-of-arrays**:
//!   parallel columns for `(vertex, state)`, parent link, via-label,
//!   and a dedicated contiguous timestamp column (so expiry candidate
//!   collection is a branch-free threshold scan), with tree shape held
//!   in intrusive first-child/next-sibling link columns instead of
//!   per-node heap children lists; plus the
//!   `(vertex, state) → occurrences` side index, timestamp
//!   maintenance, subtree detach/expiry, per-slide arena compaction
//!   ([`Tree::maybe_compact`]), and path queries;
//! * [`Forest`]`<X>` — the Δ index: all trees plus the [`RevIndex`]
//!   mapping vertices to the trees containing them (what bounds
//!   per-tuple work by the number of *relevant* trees);
//! * [`Unique`] — the RAPQ instantiation: enforces (and exposes a keyed
//!   API around) the one-occurrence invariant of Lemma 1;
//! * the RSPQ engine layers markings on top via its own semantics type
//!   (see `crate::rspq::markings`).
//!
//! # Invariants
//!
//! Maintained here and exercised by this module's tests:
//!
//! 1. **Occurrence uniqueness** (RAPQ / [`Unique`] only): each
//!    `(vertex, state)` pair appears at most once per tree (Lemma 1,
//!    invariant 2) — [`Tree::validate`] rejects duplicates through the
//!    semantics hook.
//! 2. **Timestamp monotonicity**: timestamps never increase from root
//!    to leaf — a node's timestamp is `min(parent.ts, edge.ts)` at
//!    (re)attachment, and refreshes only ever raise timestamps toward
//!    the root. Consequently the expired set `{n | n.ts ≤ watermark}`
//!    is always a union of whole subtrees, which is what makes batch
//!    pruning in `ExpiryRAPQ`/`ExpiryRSPQ` sound.
//! 3. **Compaction transparency**: [`Tree::maybe_compact`] only
//!    renames arena slots — every link, the occurrence index, and the
//!    semantics extension ([`TreeSemantics::on_compact`]) are remapped
//!    together, so observable behaviour (and therefore recovery
//!    equivalence) is unchanged.

mod forest;
mod snapshot;
mod tree;
mod unique;

#[cfg(test)]
mod tests;

pub use forest::{Forest, RevIndex};
pub use snapshot::{NodeSnap, SnapshotExt, TreeSnap};
pub use tree::{Node, Tree};
pub use unique::Unique;

use srpq_common::{StateId, VertexId};

/// Arena index of a tree node.
pub type NodeId = u32;

/// A `(vertex, automaton state)` product-graph pair.
pub type PairKey = (VertexId, StateId);

/// Per-tree semantics hooks: the extension point that lets one arena
/// implementation serve both path semantics.
///
/// The hooks observe every structural mutation of the owning
/// [`Tree`]; implementations layer their own bookkeeping on top (RSPQ
/// markings) or enforce extra invariants (RAPQ occurrence uniqueness).
pub trait TreeSemantics: Default + std::fmt::Debug {
    /// A node for `key` was attached at arena slot `id`;
    /// `first_occurrence` is true when no other occurrence of `key`
    /// was present before the attachment (this includes the root at
    /// tree creation).
    fn on_add(&mut self, key: PairKey, id: NodeId, first_occurrence: bool) {
        let _ = (key, id, first_occurrence);
    }

    /// The node at `id` (holding `key`) was removed from the arena.
    fn on_remove(&mut self, key: PairKey, id: NodeId) {
        let _ = (key, id);
    }

    /// The arena was compacted: any [`NodeId`] the extension retains
    /// must be rewritten to `remap[old_id]`. Entries for freed slots
    /// hold a sentinel the extension will never hold a reference to.
    fn on_compact(&mut self, remap: &[NodeId]) {
        let _ = remap;
    }

    /// The tree is being recycled for a new root
    /// ([`Tree::reset_root`]): drop all extension state *in place*,
    /// retaining any container capacity, so pooled-tree reuse stays
    /// allocation-free.
    fn reset(&mut self) {}

    /// Extension-specific structural validation, called from
    /// [`Tree::validate`] after the core checks pass.
    fn validate(&self, tree: &Tree<Self>) -> Result<(), String>
    where
        Self: Sized,
    {
        let _ = tree;
        Ok(())
    }
}
