//! Result sinks: where the append-only result stream goes.
//!
//! Under the implicit window model the result of a streaming RPQ is an
//! append-only stream of vertex pairs (Definition 9). Engines push pairs
//! into a [`ResultSink`] as they are discovered; when explicit deletions
//! are enabled, previously reported pairs whose every witness path died
//! can additionally be *invalidated* (§3.2, explicit window semantics).

use srpq_common::{FxHashSet, ResultPair, Timestamp};

/// Receives the result stream of a persistent query.
pub trait ResultSink {
    /// A new result pair `(x, y)` discovered at stream time `ts`.
    fn emit(&mut self, pair: ResultPair, ts: Timestamp);

    /// A previously reported pair lost its last witness path at `ts`
    /// (only generated for explicit deletions / explicit windows).
    fn invalidate(&mut self, pair: ResultPair, ts: Timestamp) {
        let _ = (pair, ts);
    }
}

/// Discards everything (throughput measurements).
#[derive(Debug, Default, Clone)]
pub struct NullSink;

impl ResultSink for NullSink {
    #[inline]
    fn emit(&mut self, _pair: ResultPair, _ts: Timestamp) {}
}

/// Counts emissions and invalidations.
#[derive(Debug, Default, Clone)]
pub struct CountSink {
    /// Number of emitted results.
    pub emitted: u64,
    /// Number of invalidated results.
    pub invalidated: u64,
}

impl ResultSink for CountSink {
    #[inline]
    fn emit(&mut self, _pair: ResultPair, _ts: Timestamp) {
        self.emitted += 1;
    }

    #[inline]
    fn invalidate(&mut self, _pair: ResultPair, _ts: Timestamp) {
        self.invalidated += 1;
    }
}

/// Collects the full result stream (tests and examples).
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    emitted: Vec<(ResultPair, Timestamp)>,
    invalidated: Vec<(ResultPair, Timestamp)>,
}

impl CollectSink {
    /// All emitted pairs in emission order (with timestamps).
    pub fn emitted(&self) -> &[(ResultPair, Timestamp)] {
        &self.emitted
    }

    /// All invalidated pairs in order (with timestamps).
    pub fn invalidated(&self) -> &[(ResultPair, Timestamp)] {
        &self.invalidated
    }

    /// The distinct emitted pairs, unordered.
    pub fn pairs(&self) -> FxHashSet<ResultPair> {
        self.emitted.iter().map(|&(p, _)| p).collect()
    }

    /// The set of pairs that are currently valid: emitted and not
    /// invalidated afterwards.
    pub fn live_pairs(&self) -> FxHashSet<ResultPair> {
        let mut live = FxHashSet::default();
        // Replay the merged emission/invalidations in timestamp order;
        // within a timestamp emissions win (a pair re-derived at the
        // moment of invalidation stays).
        let mut events: Vec<(Timestamp, bool, ResultPair)> = self
            .emitted
            .iter()
            .map(|&(p, t)| (t, true, p))
            .chain(self.invalidated.iter().map(|&(p, t)| (t, false, p)))
            .collect();
        events.sort_by_key(|&(t, is_emit, _)| (t, is_emit));
        for (_, is_emit, p) in events {
            if is_emit {
                live.insert(p);
            } else {
                live.remove(&p);
            }
        }
        live
    }

    /// Clears the collected streams.
    pub fn clear(&mut self) {
        self.emitted.clear();
        self.invalidated.clear();
    }
}

impl ResultSink for CollectSink {
    fn emit(&mut self, pair: ResultPair, ts: Timestamp) {
        self.emitted.push((pair, ts));
    }

    fn invalidate(&mut self, pair: ResultPair, ts: Timestamp) {
        self.invalidated.push((pair, ts));
    }
}

/// Adapts a closure into a sink.
pub struct FnSink<F: FnMut(ResultPair, Timestamp)>(pub F);

impl<F: FnMut(ResultPair, Timestamp)> ResultSink for FnSink<F> {
    #[inline]
    fn emit(&mut self, pair: ResultPair, ts: Timestamp) {
        (self.0)(pair, ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srpq_common::VertexId;

    fn p(a: u32, b: u32) -> ResultPair {
        ResultPair::new(VertexId(a), VertexId(b))
    }

    #[test]
    fn count_sink_counts() {
        let mut s = CountSink::default();
        s.emit(p(0, 1), Timestamp(1));
        s.emit(p(0, 2), Timestamp(2));
        s.invalidate(p(0, 1), Timestamp(3));
        assert_eq!(s.emitted, 2);
        assert_eq!(s.invalidated, 1);
    }

    #[test]
    fn collect_sink_orders_and_dedups() {
        let mut s = CollectSink::default();
        s.emit(p(0, 1), Timestamp(1));
        s.emit(p(0, 1), Timestamp(2));
        s.emit(p(0, 2), Timestamp(2));
        assert_eq!(s.emitted().len(), 3);
        assert_eq!(s.pairs().len(), 2);
    }

    #[test]
    fn live_pairs_replays_invalidation() {
        let mut s = CollectSink::default();
        s.emit(p(0, 1), Timestamp(1));
        s.invalidate(p(0, 1), Timestamp(5));
        assert!(s.live_pairs().is_empty());
        // Re-derived after invalidation → live again.
        s.emit(p(0, 1), Timestamp(7));
        assert_eq!(s.live_pairs().len(), 1);
    }

    #[test]
    fn fn_sink_invokes_closure() {
        let mut seen = Vec::new();
        {
            let mut s = FnSink(|pair, ts| seen.push((pair, ts)));
            s.emit(p(1, 2), Timestamp(9));
        }
        assert_eq!(seen, vec![(p(1, 2), Timestamp(9))]);
    }

    #[test]
    fn null_sink_ignores() {
        let mut s = NullSink;
        s.emit(p(0, 1), Timestamp(1));
        s.invalidate(p(0, 1), Timestamp(1));
    }
}
