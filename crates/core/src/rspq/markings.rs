//! The RSPQ instantiation of the forest: markings `M_x` layered on the
//! shared arena through the semantics hooks.

use crate::delta::{NodeId, PairKey, SnapshotExt, Tree, TreeSemantics};
use srpq_common::FxHashMap;

/// Per-tree state of Algorithm RSPQ (§4): unlike RAPQ trees, a
/// `(vertex, state)` pair may appear **multiple times** — once a
/// conflict (Definition 16) is detected, previously pruned traversals
/// are replayed and materialize additional copies of already-visited
/// product-graph nodes. On top of the arena's occurrence index this
/// extension maintains the marking set `M_x` (Definition 18): pairs
/// with no conflict-predecessor descendants, each pointing at its
/// canonical occurrence. Marked pairs prune re-traversal (Algorithm
/// RSPQ line 8, Extend line 15).
#[derive(Debug, Default)]
pub struct Markings {
    marked: FxHashMap<PairKey, NodeId>,
    /// Pairs whose mark died with their node in the latest removal
    /// batch; drained by `ExpiryRSPQ` to drive reconnection.
    dead: Vec<PairKey>,
}

impl Markings {
    /// The canonical node a mark points at, if `key ∈ M_x`.
    pub fn marked_node(&self, key: PairKey) -> Option<NodeId> {
        self.marked.get(&key).copied()
    }
}

impl SnapshotExt for Markings {
    fn export(&self) -> (Vec<(PairKey, NodeId)>, Vec<PairKey>) {
        let mut marks: Vec<(PairKey, NodeId)> =
            self.marked.iter().map(|(&k, &id)| (k, id)).collect();
        marks.sort_unstable_by_key(|&(k, _)| k);
        (marks, self.dead.clone())
    }

    fn import(marks: Vec<(PairKey, NodeId)>, dead: Vec<PairKey>) -> Markings {
        Markings {
            marked: marks.into_iter().collect(),
            dead,
        }
    }
}

impl TreeSemantics for Markings {
    fn on_add(&mut self, key: PairKey, id: NodeId, first_occurrence: bool) {
        // Extend line 11: the first occurrence of a pair is marked (and
        // so is the root at tree creation). Re-added pairs whose mark
        // was removed by `Unmark` only re-mark once every occurrence is
        // gone and the pair is re-discovered afresh.
        if first_occurrence {
            self.marked.insert(key, id);
        }
    }

    fn on_remove(&mut self, key: PairKey, id: NodeId) {
        if self.marked.get(&key) == Some(&id) {
            self.marked.remove(&key);
            self.dead.push(key);
        }
    }

    fn on_compact(&mut self, remap: &[NodeId]) {
        // Marks point at live nodes (validated invariant), so every
        // retained id has a live entry in the remap table.
        for id in self.marked.values_mut() {
            *id = remap[*id as usize];
        }
    }

    fn reset(&mut self) {
        self.marked.clear();
        self.dead.clear();
    }

    fn validate(&self, tree: &Tree<Markings>) -> Result<(), String> {
        for (key, &id) in &self.marked {
            match tree.node(id) {
                Some(n) if n.key() == *key => {}
                _ => return Err(format!("mark {key:?} points at dead/wrong node {id}")),
            }
        }
        Ok(())
    }
}

/// Marking accessors, lifted onto the tree so the engine reads as in
/// the paper's pseudocode (`(v, t) ∈ M_x` etc.).
impl Tree<Markings> {
    /// Whether `key ∈ M_x`.
    #[inline]
    pub fn is_marked(&self, key: PairKey) -> bool {
        self.ext().marked.contains_key(&key)
    }

    /// Marks `key`, pointing at `id`.
    pub fn mark(&mut self, key: PairKey, id: NodeId) {
        self.ext_mut().marked.insert(key, id);
    }

    /// Unmarks `key`. Returns true if it was marked.
    pub fn unmark(&mut self, key: PairKey) -> bool {
        self.ext_mut().marked.remove(&key).is_some()
    }

    /// Number of marked pairs.
    pub fn n_marked(&self) -> usize {
        self.ext().marked.len()
    }

    /// Drains the pairs whose mark died with its node since the last
    /// call (populated by node removal). Pair with
    /// [`Tree::recycle_dead_marks`] to keep the buffer's capacity.
    pub fn take_dead_marks(&mut self) -> Vec<PairKey> {
        std::mem::take(&mut self.ext_mut().dead)
    }

    /// Returns a drained dead-marks buffer so its heap capacity is
    /// reused by subsequent removals (allocation-free steady state).
    pub fn recycle_dead_marks(&mut self, mut buf: Vec<PairKey>) {
        buf.clear();
        let dead = &mut self.ext_mut().dead;
        if dead.capacity() < buf.capacity() {
            // Keep whatever accumulated since the drain (normally
            // nothing: recycle directly follows processing).
            buf.append(dead);
            *dead = buf;
        }
    }
}
