//! Spanning trees for simple path semantics (§4).
//!
//! Unlike the RAPQ trees, a `(vertex, state)` pair may appear **multiple
//! times** in an RSPQ tree: once a conflict (Definition 16) is detected
//! at a vertex, previously pruned traversals must be replayed, and the
//! replayed paths materialize additional copies of already-visited
//! product-graph nodes. Nodes are therefore arena-allocated and
//! identified by position ([`NodeId`]), with two side indexes:
//!
//! * `occurrences`: all arena slots holding a given pair — used by
//!   Algorithm RSPQ line 6 ("if (u, s) ∈ T_x") and by `Unmark`'s
//!   re-traversal;
//! * `marked` (the set `M_x`): pairs with **no conflict-predecessor
//!   descendants** (Definition 18), each pointing at its canonical
//!   occurrence. Marked pairs prune re-traversal (Algorithm RSPQ line 8,
//!   Extend line 15).

use srpq_common::{FxHashMap, Label, StateId, Timestamp, VertexId};

/// Arena index of a tree node.
pub type NodeId = u32;

/// A `(vertex, state)` pair.
pub type PairKey = (VertexId, StateId);

/// An arena-allocated RSPQ tree node.
#[derive(Debug, Clone)]
pub struct RNode {
    /// Graph vertex.
    pub vertex: VertexId,
    /// Automaton state.
    pub state: StateId,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Label of the edge from the parent (meaningless for the root).
    pub via_label: Label,
    /// Minimum edge timestamp along the root path.
    pub ts: Timestamp,
    /// Children (unordered).
    pub children: Vec<NodeId>,
}

/// A spanning tree `T_x` with markings `M_x`.
#[derive(Debug)]
pub struct SpTree {
    root: VertexId,
    root_id: NodeId,
    arena: Vec<Option<RNode>>,
    free: Vec<NodeId>,
    occurrences: FxHashMap<PairKey, Vec<NodeId>>,
    marked: FxHashMap<PairKey, NodeId>,
    len: usize,
}

impl SpTree {
    /// Creates a tree holding only the (marked) root `(x, s0)`.
    pub fn new(root: VertexId, s0: StateId) -> SpTree {
        let node = RNode {
            vertex: root,
            state: s0,
            parent: None,
            via_label: Label(u32::MAX),
            ts: Timestamp::INFINITY,
            children: Vec::new(),
        };
        let mut occurrences: FxHashMap<PairKey, Vec<NodeId>> = FxHashMap::default();
        occurrences.insert((root, s0), vec![0]);
        let mut marked = FxHashMap::default();
        marked.insert((root, s0), 0);
        SpTree {
            root,
            root_id: 0,
            arena: vec![Some(node)],
            free: Vec::new(),
            occurrences,
            marked,
            len: 1,
        }
    }

    /// The root vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// The root node id.
    pub fn root_id(&self) -> NodeId {
        self.root_id
    }

    /// Number of live nodes (root included).
    pub fn len(&self) -> usize {
        self.len
    }

    /// A tree always holds at least its root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether only the root remains.
    pub fn is_trivial(&self) -> bool {
        self.len == 1
    }

    /// The node at `id`, if alive.
    #[inline]
    pub fn node(&self, id: NodeId) -> Option<&RNode> {
        self.arena.get(id as usize).and_then(|n| n.as_ref())
    }

    /// All live occurrences of `key`.
    pub fn occurrences(&self, key: PairKey) -> &[NodeId] {
        self.occurrences.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether any occurrence of `key` is present ("(v, t) ∈ T_x").
    #[inline]
    pub fn has_pair(&self, key: PairKey) -> bool {
        self.occurrences.contains_key(&key)
    }

    /// Whether `key ∈ M_x`.
    #[inline]
    pub fn is_marked(&self, key: PairKey) -> bool {
        self.marked.contains_key(&key)
    }

    /// Marks `key`, pointing at `id`.
    pub fn mark(&mut self, key: PairKey, id: NodeId) {
        self.marked.insert(key, id);
    }

    /// Unmarks `key`. Returns true if it was marked.
    pub fn unmark(&mut self, key: PairKey) -> bool {
        self.marked.remove(&key).is_some()
    }

    /// Number of marked pairs.
    pub fn n_marked(&self) -> usize {
        self.marked.len()
    }

    /// Adds a child node. Returns the new id.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        vertex: VertexId,
        state: StateId,
        via_label: Label,
        ts: Timestamp,
    ) -> NodeId {
        let node = RNode {
            vertex,
            state,
            parent: Some(parent),
            via_label,
            ts,
            children: Vec::new(),
        };
        let id = match self.free.pop() {
            Some(id) => {
                self.arena[id as usize] = Some(node);
                id
            }
            None => {
                self.arena.push(Some(node));
                (self.arena.len() - 1) as NodeId
            }
        };
        self.arena[parent as usize]
            .as_mut()
            .expect("parent must be alive")
            .children
            .push(id);
        self.occurrences.entry((vertex, state)).or_default().push(id);
        self.len += 1;
        id
    }

    /// Removes a set of node ids wholesale (must be downward-closed:
    /// whole subtrees). Cleans occurrence and mark entries; detaches
    /// removed children from surviving parents. Returns the pairs whose
    /// mark died with their node.
    pub fn remove_all(&mut self, ids: &[NodeId]) -> Vec<PairKey> {
        let mut dead_marks = Vec::new();
        for &id in ids {
            let Some(node) = self.arena.get_mut(id as usize).and_then(Option::take) else {
                continue;
            };
            self.len -= 1;
            self.free.push(id);
            let key = (node.vertex, node.state);
            if let Some(occ) = self.occurrences.get_mut(&key) {
                occ.retain(|&o| o != id);
                if occ.is_empty() {
                    self.occurrences.remove(&key);
                }
            }
            if self.marked.get(&key) == Some(&id) {
                self.marked.remove(&key);
                dead_marks.push(key);
            }
            if let Some(p) = node.parent {
                if let Some(Some(pn)) = self.arena.get_mut(p as usize) {
                    pn.children.retain(|&c| c != id);
                }
            }
        }
        dead_marks
    }

    /// Node ids of the subtree rooted at `id` (inclusive), BFS order.
    pub fn subtree_ids(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        if self.node(id).is_none() {
            return out;
        }
        out.push(id);
        let mut i = 0;
        while i < out.len() {
            if let Some(n) = self.node(out[i]) {
                out.extend(n.children.iter().copied());
            }
            i += 1;
        }
        out
    }

    /// Sets the timestamp of the whole subtree under `id` (inclusive).
    pub fn set_subtree_ts(&mut self, id: NodeId, ts: Timestamp) {
        for nid in self.subtree_ids(id) {
            if let Some(Some(n)) = self.arena.get_mut(nid as usize) {
                n.ts = ts;
            }
        }
    }

    /// Live node ids with `ts <= watermark` (the expiry candidate set).
    pub fn expired_ids(&self, watermark: Timestamp) -> Vec<NodeId> {
        self.arena
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (i as NodeId, n)))
            .filter(|(_, n)| n.ts <= watermark)
            .map(|(i, _)| i)
            .collect()
    }

    /// The state of the **first** (closest to root) occurrence of
    /// `vertex` on the root path of `id` — `FIRST(p[v])` in Algorithm
    /// Extend. Walks upward, so the first-from-root is the last found.
    pub fn first_state_on_path(&self, id: NodeId, vertex: VertexId) -> Option<StateId> {
        let mut found = None;
        let mut cur = Some(id);
        while let Some(c) = cur {
            let n = self.node(c)?;
            if n.vertex == vertex {
                found = Some(n.state);
            }
            cur = n.parent;
        }
        found
    }

    /// Whether `(vertex, state)` occurs on the root path of `id` —
    /// `t ∈ p[v]` in Algorithm RSPQ/Extend.
    pub fn path_has(&self, id: NodeId, vertex: VertexId, state: StateId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            let Some(n) = self.node(c) else { return false };
            if n.vertex == vertex && n.state == state {
                return true;
            }
            cur = n.parent;
        }
        false
    }

    /// The root path of `id` as pair keys, root first.
    pub fn path_keys(&self, id: NodeId) -> Vec<PairKey> {
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let Some(n) = self.node(c) else { break };
            out.push((n.vertex, n.state));
            cur = n.parent;
        }
        out.reverse();
        out
    }

    /// The root path of `id` as node ids, root first.
    pub fn path_ids(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            out.push(c);
            cur = self.node(c).and_then(|n| n.parent);
        }
        out.reverse();
        out
    }

    /// Iterates `(id, node)` over live nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &RNode)> {
        self.arena
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (i as NodeId, n)))
    }

    /// Debug validation: structural consistency of arena, occurrence
    /// index, marks, parent/child agreement, timestamp monotonicity.
    pub fn validate(&self) -> Result<(), String> {
        if self.node(self.root_id).is_none() {
            return Err("root missing".into());
        }
        let mut live = 0usize;
        for (id, n) in self.iter() {
            live += 1;
            match n.parent {
                None if id != self.root_id => return Err(format!("non-root {id} parentless")),
                None => {}
                Some(p) => {
                    let Some(pn) = self.node(p) else {
                        return Err(format!("{id} has dead parent {p}"));
                    };
                    if !pn.children.contains(&id) {
                        return Err(format!("{p} does not list child {id}"));
                    }
                    if pn.ts < n.ts {
                        return Err(format!("ts inversion at {id}"));
                    }
                }
            }
            let occ = self.occurrences((n.vertex, n.state));
            if !occ.contains(&id) {
                return Err(format!("occurrence index misses {id}"));
            }
            for &c in &n.children {
                match self.node(c) {
                    Some(cn) if cn.parent == Some(id) => {}
                    _ => return Err(format!("stale child {c} of {id}")),
                }
            }
        }
        if live != self.len {
            return Err(format!("len drift: {live} vs {}", self.len));
        }
        for (key, &id) in &self.marked {
            match self.node(id) {
                Some(n) if (n.vertex, n.state) == *key => {}
                _ => return Err(format!("mark {key:?} points at dead/wrong node {id}")),
            }
        }
        for (key, occ) in &self.occurrences {
            if occ.is_empty() {
                return Err(format!("empty occurrence list for {key:?}"));
            }
        }
        Ok(())
    }
}

/// The Δ index for simple path semantics: one [`SpTree`] per root plus
/// the shared reverse index (vertex → containing trees).
#[derive(Debug, Default)]
pub struct SpDelta {
    trees: FxHashMap<VertexId, SpTree>,
    index: crate::rapq::tree::RevIndex,
}

impl SpDelta {
    /// Creates an empty index.
    pub fn new() -> SpDelta {
        SpDelta::default()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total node count over all trees.
    pub fn n_nodes(&self) -> usize {
        self.index.n_nodes()
    }

    /// Ensures a tree rooted at `x` exists.
    pub fn ensure_tree(&mut self, x: VertexId, s0: StateId) -> &mut SpTree {
        if let std::collections::hash_map::Entry::Vacant(e) = self.trees.entry(x) {
            e.insert(SpTree::new(x, s0));
            self.index.note_added(x, x);
        }
        self.trees.get_mut(&x).expect("just inserted")
    }

    /// The tree rooted at `x`.
    pub fn tree(&self, x: VertexId) -> Option<&SpTree> {
        self.trees.get(&x)
    }

    /// Mutable access to the tree rooted at `x`.
    pub fn tree_mut(&mut self, x: VertexId) -> Option<&mut SpTree> {
        self.trees.get_mut(&x)
    }

    /// Simultaneous mutable access to a tree and the reverse index.
    pub fn tree_with_index(
        &mut self,
        x: VertexId,
    ) -> Option<(&mut SpTree, &mut crate::rapq::tree::RevIndex)> {
        let index = &mut self.index;
        self.trees.get_mut(&x).map(|t| (t, index))
    }

    /// Roots of trees containing at least one `(v, ·)` node.
    pub fn trees_containing(&self, v: VertexId) -> Vec<VertexId> {
        self.index.trees_containing(v)
    }

    /// Roots of all trees.
    pub fn roots(&self) -> Vec<VertexId> {
        self.trees.keys().copied().collect()
    }

    /// Drops the tree at `x` if trivial. Returns true if dropped.
    pub fn drop_if_trivial(&mut self, x: VertexId) -> bool {
        let trivial = self.trees.get(&x).map(|t| t.is_trivial()).unwrap_or(false);
        if trivial {
            self.trees.remove(&x);
            self.index.note_removed(x, x);
            true
        } else {
            false
        }
    }

    /// Debug validation of every tree.
    pub fn validate(&self) -> Result<(), String> {
        let mut counted = 0;
        for (&root, tree) in &self.trees {
            tree.validate().map_err(|e| format!("tree {root}: {e}"))?;
            counted += tree.len();
        }
        if counted != self.index.n_nodes() {
            return Err(format!(
                "node count drift: counted {counted}, cached {}",
                self.index.n_nodes()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn s(i: u32) -> StateId {
        StateId(i)
    }

    fn l(i: u32) -> Label {
        Label(i)
    }

    #[test]
    fn root_is_marked() {
        let t = SpTree::new(v(0), s(0));
        assert!(t.is_marked((v(0), s(0))));
        assert_eq!(t.len(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn duplicate_pairs_coexist() {
        let mut t = SpTree::new(v(0), s(0));
        let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(5));
        let b = t.add_child(t.root_id(), v(2), s(1), l(0), Timestamp(5));
        // Second copy of (1, s1) under a different branch.
        let a2 = t.add_child(b, v(1), s(1), l(1), Timestamp(4));
        assert_eq!(t.occurrences((v(1), s(1))), &[a, a2]);
        assert!(t.has_pair((v(1), s(1))));
        t.validate().unwrap();
    }

    #[test]
    fn first_state_on_path_picks_nearest_root() {
        let mut t = SpTree::new(v(0), s(0));
        let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(5));
        let b = t.add_child(a, v(2), s(2), l(1), Timestamp(5));
        let c = t.add_child(b, v(1), s(2), l(0), Timestamp(5));
        assert_eq!(t.first_state_on_path(c, v(1)), Some(s(1)));
        assert_eq!(t.first_state_on_path(c, v(0)), Some(s(0)));
        assert_eq!(t.first_state_on_path(c, v(9)), None);
        assert!(t.path_has(c, v(1), s(2)));
        assert!(t.path_has(c, v(1), s(1)));
        assert!(!t.path_has(b, v(1), s(2)));
    }

    #[test]
    fn remove_all_cleans_indexes() {
        let mut t = SpTree::new(v(0), s(0));
        let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(2));
        let b = t.add_child(a, v(2), s(2), l(1), Timestamp(2));
        t.mark((v(1), s(1)), a);
        t.mark((v(2), s(2)), b);
        let dead = t.remove_all(&[a, b]);
        assert_eq!(dead.len(), 2);
        assert_eq!(t.len(), 1);
        assert!(!t.has_pair((v(1), s(1))));
        assert!(!t.is_marked((v(2), s(2))));
        t.validate().unwrap();
    }

    #[test]
    fn arena_reuses_free_slots() {
        let mut t = SpTree::new(v(0), s(0));
        let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(2));
        t.remove_all(&[a]);
        let b = t.add_child(t.root_id(), v(2), s(1), l(0), Timestamp(3));
        assert_eq!(a, b, "slot not reused");
        t.validate().unwrap();
    }

    #[test]
    fn expired_ids_and_subtree_ts() {
        let mut t = SpTree::new(v(0), s(0));
        let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(10));
        let b = t.add_child(a, v(2), s(2), l(1), Timestamp(5));
        assert_eq!(t.expired_ids(Timestamp(5)), vec![b]);
        t.set_subtree_ts(a, Timestamp::NEG_INFINITY);
        let mut exp = t.expired_ids(Timestamp(5));
        exp.sort_unstable();
        assert_eq!(exp, vec![a, b]);
    }

    #[test]
    fn path_keys_root_first() {
        let mut t = SpTree::new(v(0), s(0));
        let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(2));
        let b = t.add_child(a, v(2), s(2), l(1), Timestamp(2));
        assert_eq!(
            t.path_keys(b),
            vec![(v(0), s(0)), (v(1), s(1)), (v(2), s(2))]
        );
        assert_eq!(t.path_ids(b), vec![t.root_id(), a, b]);
    }

    #[test]
    fn mark_dies_only_with_its_node() {
        let mut t = SpTree::new(v(0), s(0));
        let a = t.add_child(t.root_id(), v(1), s(1), l(0), Timestamp(2));
        let b = t.add_child(t.root_id(), v(3), s(3), l(0), Timestamp(2));
        let _a2 = t.add_child(b, v(1), s(1), l(1), Timestamp(2));
        t.mark((v(1), s(1)), a);
        // Removing the *other* occurrence keeps the mark.
        let ids = t.subtree_ids(b);
        let dead = t.remove_all(&ids);
        assert!(dead.is_empty());
        assert!(t.is_marked((v(1), s(1))));
        t.validate().unwrap();
    }
}
