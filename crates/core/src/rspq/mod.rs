//! Algorithm RSPQ: streaming RPQ evaluation under simple path semantics
//! (§4 of the paper).
//!
//! RSPQ evaluation is NP-hard in general (Mendelzon & Wood), but
//! tractable in the absence of *conflicts* — situations where a product
//! graph traversal revisits a vertex in two states whose suffix
//! languages are not contained (Definition 16). The streaming algorithm
//! mirrors Algorithm RAPQ but:
//!
//! * a traversal may revisit a vertex when suffix-language containment
//!   proves a simple witness path exists (Theorem 4);
//! * each tree keeps a set of **markings** `M_x` — pairs with no
//!   conflict-predecessor descendants — that prune redundant traversal;
//! * when a late-arriving edge reveals a conflict, `Unmark` removes the
//!   ancestors of the conflict predecessor from `M_x` and replays the
//!   traversals that were previously pruned because of those marks.

pub mod markings;

use crate::bitset::GenBitSet;
use crate::config::EngineConfig;
use crate::delta::{Forest, NodeId, PairKey, RevIndex};
use crate::sink::ResultSink;
use crate::stats::{EngineStats, IndexSize};
use markings::Markings;
use srpq_automata::{CompiledQuery, ContainmentTable, Dfa};
use srpq_common::{FxHashSet, Label, ResultPair, StateId, StreamTuple, Timestamp, VertexId};
use srpq_graph::{Visibility, WindowGraph};

/// An RSPQ spanning tree `T_x` with markings `M_x`: the shared arena
/// instantiated with the [`Markings`] semantics.
pub type SpTree = crate::delta::Tree<Markings>;

/// The Δ index for simple path semantics: the shared forest under
/// [`Markings`] semantics.
pub type SpDelta = Forest<Markings>;

/// A deferred `Extend` invocation: try to attach `(vertex, state)` under
/// arena node `parent_id` via an edge labeled `via`.
#[derive(Debug, Clone, Copy)]
struct ExtendItem {
    parent_id: NodeId,
    vertex: VertexId,
    state: StateId,
    via: Label,
    edge_ts: Timestamp,
}

/// The `(vertex, state)` product-pair bit for the generation-stamped
/// frontier bitsets: vertex slots are dense (interned), the DFA state
/// count (`stride`) is a small per-query constant.
#[inline]
fn pair_bit(v: VertexId, s: StateId, stride: u64) -> u64 {
    v.0 as u64 * stride + s.0 as u64
}

/// The streaming RSPQ engine (Algorithm RSPQ + Extend + Unmark +
/// ExpiryRSPQ).
pub struct RspqEngine {
    query: CompiledQuery,
    config: EngineConfig,
    graph: WindowGraph,
    delta: SpDelta,
    emitted: FxHashSet<ResultPair>,
    now: Timestamp,
    stats: EngineStats,
    work: Vec<ExtendItem>,
    /// Per-tuple scratch: roots of the trees a tuple can extend.
    roots_scratch: Vec<VertexId>,
    /// Per-slide scratch: all tree roots during an expiry sweep.
    expire_roots_scratch: Vec<VertexId>,
    /// Per-slide scratch: `(pair, surviving parent)` of removed nodes.
    removed_scratch: Vec<(PairKey, Option<NodeId>)>,
    /// Per-reconnection scratch: occurrence-list copy (the list may
    /// shift while `run_extend` mutates the tree).
    occs_scratch: Vec<NodeId>,
    /// Per-delete scratch: tree-edge victims of one deletion.
    victims_scratch: Vec<NodeId>,
    /// Per-slide scratch: the compaction remap table.
    compact_scratch: Vec<NodeId>,
    /// Root-path membership bitset, rebuilt per extend item.
    path_bits: GenBitSet,
    /// Dead-mark membership bitset (pair domain).
    dead_mark_bits: GenBitSet,
    /// Invalidation dedup bitset (vertex domain).
    seen_bits: GenBitSet,
}

impl RspqEngine {
    /// Creates an engine for a registered query.
    pub fn new(query: CompiledQuery, config: EngineConfig) -> RspqEngine {
        RspqEngine {
            query,
            config,
            graph: WindowGraph::new(),
            delta: SpDelta::new(),
            emitted: FxHashSet::default(),
            now: Timestamp::NEG_INFINITY,
            stats: EngineStats::default(),
            work: Vec::new(),
            roots_scratch: Vec::new(),
            expire_roots_scratch: Vec::new(),
            removed_scratch: Vec::new(),
            occs_scratch: Vec::new(),
            victims_scratch: Vec::new(),
            compact_scratch: Vec::new(),
            path_bits: GenBitSet::new(),
            dead_mark_bits: GenBitSet::new(),
            seen_bits: GenBitSet::new(),
        }
    }

    /// The registered query.
    pub fn query(&self) -> &CompiledQuery {
        &self.query
    }

    /// Engine statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Current Δ index size.
    pub fn index_size(&self) -> IndexSize {
        IndexSize {
            trees: self.delta.n_trees(),
            nodes: self.delta.n_nodes(),
            arena_bytes: self.delta.arena_bytes(),
        }
    }

    /// The window graph.
    pub fn graph(&self) -> &WindowGraph {
        &self.graph
    }

    /// Direct access to the Δ index (tests/instrumentation).
    pub fn delta(&self) -> &SpDelta {
        &self.delta
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable statistics (persistence support: `srpq_persist` maintains
    /// the durability counters here).
    pub fn stats_mut(&mut self) -> &mut EngineStats {
        &mut self.stats
    }

    /// The currently reported result pairs, sorted (persistence support:
    /// checkpoints serialize the deduplication set).
    pub fn emitted_pairs(&self) -> Vec<ResultPair> {
        let mut out: Vec<ResultPair> = self.emitted.iter().copied().collect();
        out.sort_unstable();
        out
    }

    /// Mutable window graph (persistence support: `Full` recovery
    /// rebuilds the graph by direct insertion instead of replay).
    pub fn graph_mut(&mut self) -> &mut WindowGraph {
        &mut self.graph
    }

    /// Overwrites the engine cursor — clock, result-deduplication set,
    /// and statistics — with checkpointed values (persistence support;
    /// called after the recovery replay rebuilt graph and Δ).
    pub fn restore_cursor(
        &mut self,
        now: Timestamp,
        emitted: impl IntoIterator<Item = ResultPair>,
        stats: EngineStats,
    ) {
        self.now = now;
        self.emitted = emitted.into_iter().collect();
        self.stats = stats;
    }

    /// Replaces the Δ index wholesale (persistence support: `Full`
    /// recovery restores the exact checkpointed forest).
    pub fn set_delta(&mut self, delta: SpDelta) {
        self.delta = delta;
    }

    /// Stream time of the last processed tuple.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of distinct result pairs currently reported.
    pub fn result_count(&self) -> usize {
        self.emitted.len()
    }

    /// Whether `pair` has been reported (and not invalidated).
    pub fn has_result(&self, pair: ResultPair) -> bool {
        self.emitted.contains(&pair)
    }

    /// Processes one streaming graph tuple (non-decreasing timestamps).
    pub fn process<S: ResultSink>(&mut self, tuple: StreamTuple, sink: &mut S) {
        let prev = self.now;
        if tuple.ts > self.now {
            self.now = tuple.ts;
        }
        if prev != Timestamp::NEG_INFINITY && self.config.window.crosses_slide(prev, self.now) {
            let wm = self.config.window.lazy_watermark(self.now);
            self.run_expiry(wm, false, sink);
        }
        self.apply_and_dispatch(tuple, sink);
    }

    /// Owned-graph tuple handling: mutate the graph, then run the
    /// read-only Δ traversal against it (the same split a shared-graph
    /// coordinator performs once per micro-batch).
    fn apply_and_dispatch<S: ResultSink>(&mut self, tuple: StreamTuple, sink: &mut S) {
        if self.query.dfa().knows_label(tuple.label) {
            match tuple.op {
                srpq_common::Op::Insert => {
                    self.graph
                        .insert(tuple.edge.src, tuple.edge.dst, tuple.label, tuple.ts);
                }
                srpq_common::Op::Delete => {
                    self.graph
                        .remove(tuple.edge.src, tuple.edge.dst, tuple.label);
                }
            }
        }
        let graph = std::mem::take(&mut self.graph);
        self.dispatch(&graph, Visibility::ALL, tuple, sink);
        self.graph = graph;
    }

    /// The **read-only traversal path**: extends/expires Δ for one
    /// tuple against an external shared graph that has already absorbed
    /// this tuple's mutation; `vis` hides in-batch edges a sequential
    /// run would not have seen yet (see `RapqEngine::extend_with_graph`).
    pub fn extend_with_graph<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        tuple: StreamTuple,
        sink: &mut S,
    ) {
        self.advance_with_graph(graph, vis.before(), tuple.ts, sink);
        self.dispatch_with_graph(graph, vis, tuple, sink);
    }

    /// Advances the clock to `ts` and, on a slide-boundary crossing,
    /// runs the lazy Δ-expiry pass at visibility `vis` (see
    /// `RapqEngine::advance_with_graph`).
    pub fn advance_with_graph<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        ts: Timestamp,
        sink: &mut S,
    ) {
        let prev = self.now;
        if ts > self.now {
            self.now = ts;
        }
        if prev != Timestamp::NEG_INFINITY && self.config.window.crosses_slide(prev, self.now) {
            let t0 = std::time::Instant::now();
            self.stats.expiry_runs += 1;
            let wm = self.config.window.lazy_watermark(self.now);
            self.expire_delta(graph, vis, wm, false, sink);
            self.stats.expiry_nanos += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Δ-side handling of one tuple against the shared graph (no clock
    /// movement — call [`Self::advance_with_graph`] first).
    pub fn dispatch_with_graph<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        tuple: StreamTuple,
        sink: &mut S,
    ) {
        self.dispatch(graph, vis, tuple, sink);
    }

    /// Read-only eager expiry against an external shared graph (the
    /// shared counterpart of [`Self::expire_now`]; the caller purges
    /// the graph itself).
    pub fn expire_delta_with_graph<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        sink: &mut S,
    ) {
        let t0 = std::time::Instant::now();
        self.stats.expiry_runs += 1;
        let wm = self.config.window.watermark(self.now);
        self.expire_delta(graph, vis, wm, false, sink);
        self.stats.expiry_nanos += t0.elapsed().as_nanos() as u64;
    }

    /// Δ-side handling of one tuple; the graph mutation has already
    /// happened (owned path or coordinator).
    fn dispatch<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        tuple: StreamTuple,
        sink: &mut S,
    ) {
        if !self.query.dfa().knows_label(tuple.label) {
            self.stats.tuples_discarded += 1;
            return;
        }
        match tuple.op {
            srpq_common::Op::Insert => self.dispatch_insert(graph, vis, tuple, sink),
            srpq_common::Op::Delete => self.dispatch_delete(graph, vis, tuple, sink),
        }
    }

    /// Processes a slide's worth of tuples at once: the batch is grouped
    /// by slide interval, so the boundary check and the (at most one)
    /// expiry pass run once per group instead of once per tuple. The
    /// result stream is byte-identical to feeding the same tuples
    /// through [`Self::process`] one at a time.
    pub fn process_batch<S: ResultSink>(&mut self, batch: &[StreamTuple], sink: &mut S) {
        let window = self.config.window;
        let mut i = 0;
        while i < batch.len() {
            let (len, group_now) = window.slide_group(self.now, &batch[i..], |t| t.ts);
            if self.now != Timestamp::NEG_INFINITY && window.crosses_slide(self.now, group_now) {
                self.now = group_now;
                let wm = window.lazy_watermark(group_now);
                self.run_expiry(wm, false, sink);
            }
            for &t in &batch[i..i + len] {
                if t.ts > self.now {
                    self.now = t.ts;
                }
                self.apply_and_dispatch(t, sink);
            }
            i += len;
        }
    }

    /// Forces an expiry pass at the current eager watermark.
    pub fn expire_now<S: ResultSink>(&mut self, sink: &mut S) {
        let wm = self.config.window.watermark(self.now);
        self.run_expiry(wm, false, sink);
    }

    /// Processes a tuple against an **external, shared** window graph
    /// (multi-query evaluation). Do not mix with [`Self::process`] on
    /// the same engine.
    pub fn process_with_graph<S: ResultSink>(
        &mut self,
        graph: &mut WindowGraph,
        tuple: StreamTuple,
        sink: &mut S,
    ) {
        std::mem::swap(&mut self.graph, graph);
        self.process(tuple, sink);
        std::mem::swap(&mut self.graph, graph);
    }

    /// [`Self::expire_now`] against an external shared graph.
    pub fn expire_now_with_graph<S: ResultSink>(&mut self, graph: &mut WindowGraph, sink: &mut S) {
        std::mem::swap(&mut self.graph, graph);
        self.expire_now(sink);
        std::mem::swap(&mut self.graph, graph);
    }

    fn dispatch_insert<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        tuple: StreamTuple,
        sink: &mut S,
    ) {
        let label = tuple.label;
        self.stats.tuples_processed += 1;
        let (u, v) = (tuple.edge.src, tuple.edge.dst);
        let wm = self.config.window.watermark(self.now);

        let s0 = self.query.dfa().start();
        if self
            .query
            .dfa()
            .transitions_for(label)
            .iter()
            .any(|&(s, _)| s == s0)
        {
            self.delta.ensure_tree(u, s0);
        }

        let mut budget = self.config.rspq_extend_budget.unwrap_or(u64::MAX);
        let stride = self.query.dfa().n_states() as u64;
        let mut roots = std::mem::take(&mut self.roots_scratch);
        self.delta.collect_trees_containing(u, &mut roots);
        for &root in &roots {
            let mut work = std::mem::take(&mut self.work);
            work.clear();
            {
                let Some(tree) = self.delta.tree(root) else {
                    self.work = work;
                    continue;
                };
                // Lines 4–12 of Algorithm RSPQ: each live occurrence of
                // (u, s) may extend with (v, t) unless pruned by the
                // path-cycle or marking guards.
                for &(s, t) in self.query.dfa().transitions_for(label) {
                    for &occ in tree.occurrences((u, s)) {
                        let Some(occ_ts) = tree.ts_of(occ) else {
                            continue;
                        };
                        if occ_ts <= wm {
                            continue;
                        }
                        if tree.path_has(occ, v, t) || tree.is_marked((v, t)) {
                            continue;
                        }
                        work.push(ExtendItem {
                            parent_id: occ,
                            vertex: v,
                            state: t,
                            via: label,
                            edge_ts: tuple.ts,
                        });
                    }
                }
            }
            if !work.is_empty() {
                let (tree, idx) = self.delta.tree_with_index(root).expect("tree exists");
                run_extend(
                    tree,
                    idx,
                    &mut work,
                    self.query.dfa(),
                    self.query.containment(),
                    graph,
                    vis,
                    self.config.dedup_results,
                    wm,
                    self.now,
                    &mut self.emitted,
                    &mut self.stats,
                    sink,
                    &mut budget,
                    &mut self.path_bits,
                    stride,
                );
            }
            self.work = work;
        }
        self.roots_scratch = roots;
    }

    fn dispatch_delete<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        tuple: StreamTuple,
        sink: &mut S,
    ) {
        let label = tuple.label;
        self.stats.tuples_processed += 1;
        self.stats.deletions_processed += 1;
        let (u, v) = (tuple.edge.src, tuple.edge.dst);
        let wm = self.config.window.watermark(self.now);

        let mut roots = std::mem::take(&mut self.roots_scratch);
        self.delta.collect_trees_containing(v, &mut roots);
        let mut victims = std::mem::take(&mut self.victims_scratch);
        for &root in &roots {
            let mut dirty = false;
            if let Some(tree) = self.delta.tree_mut(root) {
                for &(s, t) in self.query.dfa().transitions_for(label) {
                    // Every occurrence of (v, t) whose tree edge is the
                    // deleted edge loses its subtree (Definition 13).
                    victims.clear();
                    victims.extend(tree.occurrences((v, t)).iter().copied().filter(|&id| {
                        tree.node(id)
                            .and_then(|n| {
                                let p = n.parent?;
                                let pn = tree.node(p)?;
                                Some(pn.vertex == u && pn.state == s && n.via_label == label)
                            })
                            .unwrap_or(false)
                    }));
                    for &id in &victims {
                        tree.set_subtree_ts(id, Timestamp::NEG_INFINITY);
                        dirty = true;
                    }
                }
            }
            if dirty {
                self.expire_tree(graph, vis, root, wm, true, sink);
                self.delta.drop_if_trivial(root);
            }
        }
        self.victims_scratch = victims;
        self.roots_scratch = roots;
        self.refresh_delta_gauges();
    }

    fn run_expiry<S: ResultSink>(&mut self, wm: Timestamp, invalidate: bool, sink: &mut S) {
        let t0 = std::time::Instant::now();
        self.stats.expiry_runs += 1;
        self.graph.purge_expired(wm);
        let graph = std::mem::take(&mut self.graph);
        self.expire_delta(&graph, Visibility::ALL, wm, invalidate, sink);
        self.graph = graph;
        self.stats.expiry_nanos += t0.elapsed().as_nanos() as u64;
    }

    /// The Δ-only part of `ExpiryRSPQ`, over a borrowed (possibly
    /// shared) graph.
    fn expire_delta<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        wm: Timestamp,
        invalidate: bool,
        sink: &mut S,
    ) {
        let mut roots = std::mem::take(&mut self.expire_roots_scratch);
        self.delta.collect_roots(&mut roots);
        for &root in &roots {
            self.expire_tree(graph, vis, root, wm, invalidate, sink);
            self.delta.drop_if_trivial(root);
        }
        self.expire_roots_scratch = roots;
        self.refresh_delta_gauges();
    }

    /// Refreshes the Δ occupancy gauges (live nodes vs arena slots)
    /// after structural churn.
    fn refresh_delta_gauges(&mut self) {
        self.stats.delta_nodes_live = self.delta.n_nodes() as u64;
        self.stats.delta_capacity = self.delta.n_slots() as u64;
    }

    /// `ExpiryRSPQ` for a single tree: prune expired nodes, reattempt
    /// extension for expired *marked* pairs (unmarked copies were
    /// already replayed by `Unmark` when their mark was removed), then
    /// restore markings that are no longer blocked and report
    /// invalidations.
    #[allow(clippy::too_many_arguments)]
    fn expire_tree<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        root: VertexId,
        wm: Timestamp,
        invalidate: bool,
        sink: &mut S,
    ) {
        let mut work = std::mem::take(&mut self.work);
        work.clear();
        let stride = self.query.dfa().n_states() as u64;
        let Some((tree, idx)) = self.delta.tree_with_index(root) else {
            self.work = work;
            return;
        };
        // Lines 2–3 fused: one threshold scan over the contiguous
        // timestamp column removes the candidate set P and records, per
        // node, its pair and its parent when that parent survives the
        // sweep (the re-marking pass below needs exactly this).
        let mut removed_pairs = std::mem::take(&mut self.removed_scratch);
        tree.remove_expired_with_parents(wm, &mut removed_pairs);
        if removed_pairs.is_empty() {
            self.work = work;
            self.removed_scratch = removed_pairs;
            return;
        }
        let dead_marks = tree.take_dead_marks();
        for &((v, _), _) in &removed_pairs {
            idx.note_removed(root, v);
        }
        self.stats.nodes_expired += removed_pairs.len() as u64;

        // Reconnection for expired marked pairs (lines 6–11), visiting
        // only in-edges whose label can reach state `t`. The occurrence
        // list is copied into engine scratch because `run_extend`
        // mutates the tree while we iterate.
        let mut budget = self.config.rspq_extend_budget.unwrap_or(u64::MAX);
        let mut occs = std::mem::take(&mut self.occs_scratch);
        for &(v, t) in &dead_marks {
            if tree.is_marked((v, t)) {
                continue; // reconnected by an earlier candidate's replay
            }
            let adj = graph.in_view_at(v, vis);
            for &(s, label) in self.query.dfa().transitions_into(t) {
                for e in adj.edges(label, wm) {
                    occs.clear();
                    occs.extend_from_slice(tree.occurrences((e.other, s)));
                    for &occ in &occs {
                        let Some(occ_ts) = tree.ts_of(occ) else {
                            continue;
                        };
                        if occ_ts <= wm {
                            continue;
                        }
                        if tree.path_has(occ, v, t) || tree.is_marked((v, t)) {
                            continue;
                        }
                        work.push(ExtendItem {
                            parent_id: occ,
                            vertex: v,
                            state: t,
                            via: label,
                            edge_ts: e.ts,
                        });
                        run_extend(
                            tree,
                            idx,
                            &mut work,
                            self.query.dfa(),
                            self.query.containment(),
                            graph,
                            vis,
                            self.config.dedup_results,
                            wm,
                            self.now,
                            &mut self.emitted,
                            &mut self.stats,
                            sink,
                            &mut budget,
                            &mut self.path_bits,
                            stride,
                        );
                    }
                }
            }
        }
        self.occs_scratch = occs;

        // Lines 12–15: a permanently removed marked node may unblock its
        // parent's marking ("all siblings are in M_x" ⇒ the parent is no
        // longer a conflict predecessor).
        let dead_mark_bits = &mut self.dead_mark_bits;
        dead_mark_bits.reset();
        for &(v, t) in &dead_marks {
            dead_mark_bits.insert(pair_bit(v, t, stride));
        }
        for &(key, parent) in &removed_pairs {
            if !dead_mark_bits.contains(pair_bit(key.0, key.1, stride)) || tree.is_marked(key) {
                continue;
            }
            let Some(pid) = parent else { continue };
            let Some(pn) = tree.node(pid) else { continue };
            let pkey = (pn.vertex, pn.state);
            if tree.is_marked(pkey) {
                continue;
            }
            // Conservative guard: only re-mark when the pair has this
            // single occurrence, so the mark's canonical node is
            // unambiguous.
            if tree.occurrences(pkey).len() != 1 {
                continue;
            }
            let all_marked = tree.children(pid).all(|c| {
                tree.node(c)
                    .map(|cn| tree.is_marked((cn.vertex, cn.state)))
                    .unwrap_or(true)
            });
            if all_marked {
                tree.mark(pkey, pid);
            }
        }

        // Invalidations for accepting pairs that lost all witnesses.
        if invalidate && self.config.report_invalidations {
            let seen = &mut self.seen_bits;
            seen.reset();
            for &((v, t), _) in &removed_pairs {
                if !self.query.dfa().is_accepting(t) || !seen.insert(v.0 as u64) {
                    continue;
                }
                let witnessed = self
                    .query
                    .dfa()
                    .accepting_states()
                    .any(|f| tree.has_pair((v, f)));
                if !witnessed {
                    let pair = ResultPair::new(root, v);
                    if self.emitted.remove(&pair) {
                        self.stats.results_invalidated += 1;
                        sink.invalidate(pair, self.now);
                    }
                }
            }
        }

        // Per-slide compaction: once the batch removal leaves the arena
        // mostly dead, squeeze it (marks are remapped via the semantics
        // hook) so the next timestamp scan touches only live slots.
        let mut remap = std::mem::take(&mut self.compact_scratch);
        if tree.maybe_compact(&mut remap) {
            self.stats.compactions += 1;
        }
        self.compact_scratch = remap;
        tree.recycle_dead_marks(dead_marks);
        self.work = work;
        self.removed_scratch = removed_pairs;
    }
}

/// The iterative core of Algorithm Extend (+ Unmark as a sub-procedure):
/// drains `work`, attaching nodes, detecting conflicts, and replaying
/// pruned traversals after unmarking.
///
/// Per popped item the root path is walked **once** into `path_bits`
/// (generation-stamped, so clearing is O(1)); every subsequent on-path
/// test — the re-checked caller guard, the conflict probe, and the
/// per-out-edge cycle guard — is then a single bit read instead of a
/// pointer chase up the path.
#[allow(clippy::too_many_arguments)]
fn run_extend<S: ResultSink>(
    tree: &mut SpTree,
    idx: &mut RevIndex,
    work: &mut Vec<ExtendItem>,
    dfa: &Dfa,
    containment: &ContainmentTable,
    graph: &WindowGraph,
    vis: Visibility,
    dedup: bool,
    wm: Timestamp,
    now: Timestamp,
    emitted: &mut FxHashSet<ResultPair>,
    stats: &mut EngineStats,
    sink: &mut S,
    budget: &mut u64,
    path_bits: &mut GenBitSet,
    stride: u64,
) {
    let root = tree.root();
    while let Some(ExtendItem {
        parent_id,
        vertex,
        state,
        via,
        edge_ts,
    }) = work.pop()
    {
        if *budget == 0 {
            // Safety valve (EngineConfig::rspq_extend_budget): abandon
            // the remaining traversal of this tuple.
            work.clear();
            stats.budget_exhausted += 1;
            return;
        }
        *budget -= 1;
        stats.insert_calls += 1;
        let Some(p_ts) = tree.ts_of(parent_id) else {
            continue;
        };
        if p_ts <= wm {
            continue;
        }
        // One upward walk serves every on-path test for this item: set
        // the pair bit of each ancestor, and remember the state of the
        // occurrence of `vertex` closest to the root (the "first"
        // occurrence in path order) for the conflict probe below.
        path_bits.reset();
        let mut first_state = None;
        let mut cur = parent_id;
        while let Some((v, s, parent)) = tree.step_up(cur) {
            path_bits.insert(pair_bit(v, s, stride));
            if v == vertex {
                first_state = Some(s);
            }
            match parent {
                Some(p) => cur = p,
                None => break,
            }
        }
        // Re-check the caller guards — earlier items may have changed
        // the tree.
        if path_bits.contains(pair_bit(vertex, state, stride)) || tree.is_marked((vertex, state)) {
            continue;
        }
        // Conflict detection (Extend line 2): the first occurrence of
        // `vertex` on the prefix path must suffix-contain the new state.
        if let Some(q) = first_state {
            if !containment.contains(q, state) {
                stats.conflicts_detected += 1;
                unmark_and_replay(tree, parent_id, dfa, graph, vis, wm, work, stats);
                continue;
            }
        }
        // Re-visiting the tree root: containment held (checked above —
        // the root is on every prefix path), so every continuation from
        // (root, state) is mirrored by one from (root, s0) that the
        // root's own traversal explores, and the pair (root, root)
        // itself would only be witnessed by the empty path, which the
        // result semantics excludes. Prune.
        if vertex == root {
            continue;
        }
        let new_ts = edge_ts.min(p_ts);
        if new_ts <= wm {
            continue;
        }
        // Lines 5–13 of Extend: report, mark if first occurrence, attach.
        if dfa.is_accepting(state) {
            let pair = ResultPair::new(root, vertex);
            let fresh = emitted.insert(pair);
            if fresh || !dedup {
                stats.results_emitted += 1;
                sink.emit(pair, now);
            }
        }
        // Extend line 11: `add_child` marks first occurrences through
        // the `Markings` semantics hook.
        let id = tree.add_child(parent_id, vertex, state, via, new_ts);
        idx.note_added(root, vertex);
        // The new node's root path is its parent's plus itself — extend
        // the bitset so each out-edge's cycle guard is one bit read.
        path_bits.insert(pair_bit(vertex, state, stride));
        // Lines 14–18: expand through valid window edges (per-state DFA
        // transitions × label-partitioned adjacency: only matching
        // edges are visited, with no per-step allocation).
        let adj = graph.out_view_at(vertex, vis);
        for &(label, r) in dfa.transitions_from(state) {
            for e in adj.edges(label, wm) {
                if !path_bits.contains(pair_bit(e.other, r, stride))
                    && !tree.is_marked((e.other, r))
                {
                    work.push(ExtendItem {
                        parent_id: id,
                        vertex: e.other,
                        state: r,
                        via: label,
                        edge_ts: e.ts,
                    });
                }
            }
        }
    }
}

/// Algorithm Unmark: walk up from the conflict predecessor, removing
/// marks while present; then replay, for every unmarked pair, the
/// traversals that were previously pruned by that mark (all valid
/// in-edges landing in the pair from live occurrences).
#[allow(clippy::too_many_arguments)]
fn unmark_and_replay(
    tree: &mut SpTree,
    conflict_pred: NodeId,
    dfa: &Dfa,
    graph: &WindowGraph,
    vis: Visibility,
    wm: Timestamp,
    work: &mut Vec<ExtendItem>,
    stats: &mut EngineStats,
) {
    // Phase 1 (Unmark): walk up from the conflict predecessor along the
    // parent links, removing marks while present. No path
    // materialization — the deepest-first order of the old explicit
    // path vector is exactly the upward walk.
    let mut unmarked = 0usize;
    let mut cur = conflict_pred;
    while let Some((v, s, parent)) = tree.step_up(cur) {
        if !tree.unmark((v, s)) {
            break;
        }
        stats.nodes_unmarked += 1;
        unmarked += 1;
        match parent {
            Some(p) => cur = p,
            None => break,
        }
    }
    // Phase 2 (replay): revisit the same first `unmarked` ancestors.
    // The tree is only read here (pushes go to `work`), so the
    // occurrence slice is iterated in place.
    let mut cur = conflict_pred;
    for _ in 0..unmarked {
        let Some((v, t, parent)) = tree.step_up(cur) else {
            break;
        };
        let adj = graph.in_view_at(v, vis);
        for &(s, label) in dfa.transitions_into(t) {
            for e in adj.edges(label, wm) {
                for &occ in tree.occurrences((e.other, s)) {
                    let Some(occ_ts) = tree.ts_of(occ) else {
                        continue;
                    };
                    if occ_ts <= wm {
                        continue;
                    }
                    if tree.path_has(occ, v, t) {
                        continue;
                    }
                    work.push(ExtendItem {
                        parent_id: occ,
                        vertex: v,
                        state: t,
                        via: label,
                        edge_ts: e.ts,
                    });
                }
            }
        }
        match parent {
            Some(p) => cur = p,
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use srpq_common::{LabelInterner, VertexInterner};
    use srpq_graph::WindowPolicy;

    struct Fixture {
        engine: RspqEngine,
        verts: VertexInterner,
        labels: LabelInterner,
    }

    fn engine_for(query: &str, window: i64, slide: i64) -> Fixture {
        let mut labels = LabelInterner::new();
        let query = CompiledQuery::compile(query, &mut labels).unwrap();
        let config = EngineConfig::with_window(WindowPolicy::new(window, slide));
        Fixture {
            engine: RspqEngine::new(query, config),
            verts: VertexInterner::new(),
            labels,
        }
    }

    fn feed(f: &mut Fixture, sink: &mut CollectSink, ts: i64, a: &str, b: &str, l: &str) {
        let (va, vb) = (f.verts.intern(a), f.verts.intern(b));
        let label = f.labels.get(l).unwrap_or_else(|| panic!("label {l}"));
        f.engine
            .process(StreamTuple::insert(Timestamp(ts), va, vb, label), sink);
    }

    fn pair(f: &Fixture, a: &str, b: &str) -> ResultPair {
        ResultPair::new(f.verts.get(a).unwrap(), f.verts.get(b).unwrap())
    }

    #[test]
    fn example_4_2_conflict_discovers_simple_path() {
        // Figure 1 stream with Q1 = (follows mentions)+: the conflict at
        // vertex v must trigger Unmark so the simple path x→z→u→v→y is
        // discovered and (x, y) reported.
        let mut f = engine_for("(follows mentions)+", 1_000, 1_000);
        let mut sink = CollectSink::default();
        for (ts, a, b, l) in [
            (4, "y", "u", "mentions"),
            (6, "x", "z", "follows"),
            (9, "u", "v", "follows"),
            (11, "z", "w", "mentions"),
            (13, "x", "y", "follows"),
            (14, "z", "u", "mentions"),
            (15, "u", "x", "mentions"),
            (18, "v", "y", "mentions"),
        ] {
            feed(&mut f, &mut sink, ts, a, b, l);
        }
        assert!(
            f.engine.has_result(pair(&f, "x", "y")),
            "simple path x→z→u→v→y missed"
        );
        assert!(f.engine.stats().conflicts_detected >= 1);
        assert!(f.engine.stats().nodes_unmarked >= 1);
        f.engine.delta().validate().unwrap();
    }

    #[test]
    fn non_simple_only_witness_is_rejected() {
        // Only witness for (x, y) is x→y→u→v→y which repeats y: simple
        // path semantics must NOT report it (arbitrary semantics would).
        let mut f = engine_for("(follows mentions)+", 1_000, 1_000);
        let mut sink = CollectSink::default();
        for (ts, a, b, l) in [
            (1, "x", "y", "follows"),
            (2, "y", "u", "mentions"),
            (3, "u", "v", "follows"),
            (4, "v", "y", "mentions"),
        ] {
            feed(&mut f, &mut sink, ts, a, b, l);
        }
        assert!(f.engine.has_result(pair(&f, "x", "u")));
        assert!(
            !f.engine.has_result(pair(&f, "x", "y")),
            "non-simple witness wrongly accepted"
        );
        f.engine.delta().validate().unwrap();
    }

    #[test]
    fn simple_chain_matches() {
        let mut f = engine_for("a b c", 1_000, 1_000);
        let mut sink = CollectSink::default();
        for (ts, x, y, l) in [(1, "p", "q", "a"), (2, "q", "r", "b"), (3, "r", "s", "c")] {
            feed(&mut f, &mut sink, ts, x, y, l);
        }
        assert!(f.engine.has_result(pair(&f, "p", "s")));
        assert_eq!(sink.pairs().len(), 1);
    }

    #[test]
    fn star_query_on_cycle_reports_all_simple_pairs() {
        // a+ on a 3-cycle: all ordered pairs of *distinct* vertices are
        // connected by simple paths. The cyclic closures (p,p) repeat
        // their endpoint vertex, so simple path semantics excludes them
        // (arbitrary semantics would report them).
        let mut f = engine_for("a+", 1_000, 1_000);
        let mut sink = CollectSink::default();
        feed(&mut f, &mut sink, 1, "p", "q", "a");
        feed(&mut f, &mut sink, 2, "q", "r", "a");
        feed(&mut f, &mut sink, 3, "r", "p", "a");
        for (a, b) in [
            ("p", "q"),
            ("q", "r"),
            ("r", "p"),
            ("p", "r"),
            ("q", "p"),
            ("r", "q"),
        ] {
            assert!(f.engine.has_result(pair(&f, a, b)), "missing ({a},{b})");
        }
        for v in ["p", "q", "r"] {
            assert!(
                !f.engine.has_result(pair(&f, v, v)),
                "cyclic closure ({v},{v}) is not a simple path"
            );
        }
        f.engine.delta().validate().unwrap();
    }

    #[test]
    fn window_expiry_prunes_trees() {
        let mut f = engine_for("a+", 10, 5);
        let mut sink = CollectSink::default();
        for i in 0..30u32 {
            let a = f.verts.intern(&format!("v{i}"));
            let b = f.verts.intern(&format!("v{}", i + 1));
            let label = f.labels.get("a").unwrap();
            f.engine.process(
                StreamTuple::insert(Timestamp(i as i64), a, b, label),
                &mut sink,
            );
        }
        f.engine.expire_now(&mut sink);
        let size = f.engine.index_size();
        assert!(size.nodes < 200, "index too large: {size:?}");
        f.engine.delta().validate().unwrap();
    }

    #[test]
    fn explicit_delete_invalidates() {
        let mut f = engine_for("a b", 1_000, 1_000);
        let mut sink = CollectSink::default();
        feed(&mut f, &mut sink, 1, "p", "q", "a");
        feed(&mut f, &mut sink, 2, "q", "r", "b");
        assert!(f.engine.has_result(pair(&f, "p", "r")));
        let (p, q) = (f.verts.get("p").unwrap(), f.verts.get("q").unwrap());
        let a = f.labels.get("a").unwrap();
        f.engine
            .process(StreamTuple::delete(Timestamp(3), p, q, a), &mut sink);
        assert!(!f.engine.has_result(pair(&f, "p", "r")));
        assert_eq!(sink.invalidated().len(), 1);
        f.engine.delta().validate().unwrap();
    }

    #[test]
    fn foreign_labels_discarded() {
        let mut f = engine_for("a+", 1_000, 1_000);
        let mut sink = CollectSink::default();
        let x = f.verts.intern("x");
        let y = f.verts.intern("y");
        let mut labels = f.labels.clone();
        let z = labels.intern("zz");
        f.engine
            .process(StreamTuple::insert(Timestamp(1), x, y, z), &mut sink);
        assert_eq!(f.engine.stats().tuples_discarded, 1);
        assert_eq!(f.engine.index_size().nodes, 0);
    }

    #[test]
    fn extend_budget_aborts_conflict_blowup() {
        // A dense cyclic graph with (a b)+ generates heavy conflict
        // churn; a tiny per-tuple budget must keep processing bounded
        // and be reported in the stats.
        let mut labels = LabelInterner::new();
        let query = CompiledQuery::compile("(a b)+", &mut labels).unwrap();
        let mut config = crate::EngineConfig::with_window(WindowPolicy::new(100_000, 100_000));
        config.rspq_extend_budget = Some(50);
        let mut engine = RspqEngine::new(query, config);
        let a = labels.get("a").unwrap();
        let b = labels.get("b").unwrap();
        let mut sink = CollectSink::default();
        let n = 12u32;
        let mut ts = 0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    ts += 1;
                    let l = if (i + j) % 2 == 0 { a } else { b };
                    engine.process(
                        StreamTuple::insert(
                            Timestamp(ts),
                            srpq_common::VertexId(i),
                            srpq_common::VertexId(j),
                            l,
                        ),
                        &mut sink,
                    );
                }
            }
        }
        assert!(engine.stats().budget_exhausted > 0, "budget never tripped");
        // Bounded work: with 132 tuples and a 50-extend budget, the
        // total extend count stays in the thousands.
        assert!(engine.stats().insert_calls < 132 * 60);
        engine.delta().validate().unwrap();
    }

    #[test]
    fn conflict_free_query_keeps_single_occurrences() {
        // With the containment property, every pair appears at most once
        // per tree (the markings never come off).
        let mut f = engine_for("(a | b)*", 1_000, 1_000);
        let mut sink = CollectSink::default();
        let names = ["p", "q", "r", "s"];
        let mut ts = 0;
        for &x in &names {
            for &y in &names {
                if x != y {
                    ts += 1;
                    feed(
                        &mut f,
                        &mut sink,
                        ts,
                        x,
                        y,
                        if ts % 2 == 0 { "a" } else { "b" },
                    );
                }
            }
        }
        assert_eq!(f.engine.stats().conflicts_detected, 0);
        for root in f.engine.delta().roots() {
            let tree = f.engine.delta().tree(root).unwrap();
            for (_, n) in tree.iter() {
                assert_eq!(
                    tree.occurrences((n.vertex, n.state)).len(),
                    1,
                    "duplicated pair in conflict-free tree"
                );
            }
        }
        f.engine.delta().validate().unwrap();
    }
}
