//! The Δ tree index for arbitrary path semantics (Definition 12).
//!
//! Δ is a collection of spanning trees, one per vertex `x` of the
//! snapshot graph that roots a product-graph node `(x, s0)`. A node
//! `(u, s)` in `T_x` witnesses a path `x ⇝ u` whose label drives the
//! automaton from `s0` to `s`, with `node.ts` the minimum edge timestamp
//! along that path (Definition 9).
//!
//! Invariants maintained here and exercised by the property tests:
//!
//! 1. each `(vertex, state)` pair appears at most once per tree
//!    (Lemma 1, invariant 2) — enforced by keying nodes on the pair;
//! 2. timestamps never increase from root to leaf — a node's timestamp
//!    is `min(parent.ts, edge.ts)` at (re)attachment, and refreshes only
//!    ever raise the parent's timestamp. Consequently the expired set
//!    `{n | n.ts ≤ watermark}` is always a union of whole subtrees,
//!    which is what makes batch pruning in `ExpiryRAPQ` sound.

use srpq_common::{FxHashMap, Label, StateId, Timestamp, VertexId};

/// A tree node key: `(vertex, automaton state)`.
pub type NodeKey = (VertexId, StateId);

/// Payload of a Δ tree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Parent node, `None` for the root.
    pub parent: Option<NodeKey>,
    /// Label of the graph edge connecting the parent to this node
    /// (meaningless for the root). Needed by `Delete` to match
    /// tree-edges (Definition 13).
    pub via_label: Label,
    /// Minimum edge timestamp along the root path (Definition 9);
    /// `Timestamp::INFINITY` for the root.
    pub ts: Timestamp,
    /// Child keys (unordered).
    pub children: Vec<NodeKey>,
}

/// A spanning tree `T_x` rooted at `(x, s0)`.
#[derive(Debug)]
pub struct Tree {
    root: VertexId,
    root_key: NodeKey,
    nodes: FxHashMap<NodeKey, Node>,
}

impl Tree {
    /// Creates a tree containing only its root `(x, s0)`.
    pub fn new(root: VertexId, s0: StateId) -> Tree {
        let root_key = (root, s0);
        let mut nodes = FxHashMap::default();
        nodes.insert(
            root_key,
            Node {
                parent: None,
                via_label: Label(u32::MAX),
                ts: Timestamp::INFINITY,
                children: Vec::new(),
            },
        );
        Tree {
            root,
            root_key,
            nodes,
        }
    }

    /// The root vertex `x`.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// The root key `(x, s0)`.
    pub fn root_key(&self) -> NodeKey {
        self.root_key
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A tree always holds at least its root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether only the root remains.
    pub fn is_trivial(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: NodeKey) -> bool {
        self.nodes.contains_key(&key)
    }

    /// The node payload for `key`.
    #[inline]
    pub fn get(&self, key: NodeKey) -> Option<&Node> {
        self.nodes.get(&key)
    }

    /// The timestamp of `key`, if present.
    #[inline]
    pub fn ts(&self, key: NodeKey) -> Option<Timestamp> {
        self.nodes.get(&key).map(|n| n.ts)
    }

    /// Iterates `(key, node)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeKey, &Node)> {
        self.nodes.iter().map(|(&k, n)| (k, n))
    }

    /// Adds a new node `key` under `parent`. Panics (debug) if `key`
    /// already exists or `parent` is absent.
    pub fn add(&mut self, key: NodeKey, parent: NodeKey, via_label: Label, ts: Timestamp) {
        debug_assert!(!self.nodes.contains_key(&key), "duplicate node {key:?}");
        self.nodes
            .get_mut(&parent)
            .expect("parent must exist")
            .children
            .push(key);
        self.nodes.insert(
            key,
            Node {
                parent: Some(parent),
                via_label,
                ts,
                children: Vec::new(),
            },
        );
    }

    /// Re-parents an existing node (timestamp refresh, Algorithm RAPQ
    /// line 7 / Insert lines 2–3). The subtree stays attached.
    pub fn reparent(&mut self, key: NodeKey, parent: NodeKey, via_label: Label, ts: Timestamp) {
        let old_parent = {
            let n = self.nodes.get_mut(&key).expect("node must exist");
            let old = n.parent;
            n.parent = Some(parent);
            n.via_label = via_label;
            n.ts = ts;
            old
        };
        if let Some(op) = old_parent {
            if op != parent {
                self.detach_child(op, key);
                self.nodes
                    .get_mut(&parent)
                    .expect("new parent must exist")
                    .children
                    .push(key);
            }
        }
    }

    /// Updates only the timestamp of an existing node.
    pub fn set_ts(&mut self, key: NodeKey, ts: Timestamp) {
        self.nodes.get_mut(&key).expect("node must exist").ts = ts;
    }

    fn detach_child(&mut self, parent: NodeKey, child: NodeKey) {
        if let Some(p) = self.nodes.get_mut(&parent) {
            if let Some(pos) = p.children.iter().position(|&c| c == child) {
                p.children.swap_remove(pos);
            }
        }
    }

    /// Removes a set of nodes wholesale. The caller guarantees the set
    /// is downward-closed (whole subtrees) — which holds for expiry
    /// candidates thanks to the timestamp monotonicity invariant.
    /// Surviving parents have the removed children detached.
    pub fn remove_all(&mut self, keys: &[NodeKey]) {
        for &k in keys {
            if let Some(node) = self.nodes.remove(&k) {
                if let Some(p) = node.parent {
                    // Parent may itself be in `keys`; detach only if it
                    // survived.
                    self.detach_child(p, k);
                }
            }
        }
    }

    /// Keys of the subtree rooted at `key` (inclusive), BFS order.
    pub fn subtree_keys(&self, key: NodeKey) -> Vec<NodeKey> {
        let mut out = Vec::new();
        if !self.nodes.contains_key(&key) {
            return out;
        }
        out.push(key);
        let mut i = 0;
        while i < out.len() {
            let k = out[i];
            i += 1;
            if let Some(n) = self.nodes.get(&k) {
                out.extend(n.children.iter().copied());
            }
        }
        out
    }

    /// Sets the timestamp of the whole subtree under `key` (inclusive).
    /// Used by `Delete` to mark victims with `-∞` (§3.2).
    pub fn set_subtree_ts(&mut self, key: NodeKey, ts: Timestamp) {
        for k in self.subtree_keys(key) {
            if let Some(n) = self.nodes.get_mut(&k) {
                n.ts = ts;
            }
        }
    }

    /// Collects keys with `ts <= watermark` (the expiry candidate set P).
    pub fn expired_keys(&self, watermark: Timestamp) -> Vec<NodeKey> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.ts <= watermark)
            .map(|(&k, _)| k)
            .collect()
    }

    /// Debug validation: parent links and children lists agree, the root
    /// is present, timestamps are non-increasing root→leaf, and there
    /// are no cycles. Used by tests and property checks.
    pub fn validate(&self) -> Result<(), String> {
        if !self.nodes.contains_key(&self.root_key) {
            return Err("root missing".into());
        }
        for (&k, n) in &self.nodes {
            match n.parent {
                None => {
                    if k != self.root_key {
                        return Err(format!("non-root {k:?} has no parent"));
                    }
                }
                Some(p) => {
                    let Some(pn) = self.nodes.get(&p) else {
                        return Err(format!("{k:?} has dangling parent {p:?}"));
                    };
                    if !pn.children.contains(&k) {
                        return Err(format!("{p:?} does not list child {k:?}"));
                    }
                    if pn.ts < n.ts {
                        return Err(format!(
                            "timestamp inversion: parent {p:?}@{} < child {k:?}@{}",
                            pn.ts, n.ts
                        ));
                    }
                }
            }
            for c in &n.children {
                match self.nodes.get(c) {
                    Some(cn) if cn.parent == Some(k) => {}
                    _ => return Err(format!("child list of {k:?} stale at {c:?}")),
                }
            }
        }
        // Cycle check: every node must reach the root.
        for &k in self.nodes.keys() {
            let mut cur = k;
            let mut steps = 0;
            while let Some(n) = self.nodes.get(&cur) {
                match n.parent {
                    None => break,
                    Some(p) => {
                        cur = p;
                        steps += 1;
                        if steps > self.nodes.len() {
                            return Err(format!("cycle through {k:?}"));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// The reverse index of Δ: which trees contain a given vertex, plus the
/// global node count (Figure 5's "# of nodes").
#[derive(Debug, Default)]
pub struct RevIndex {
    /// `vertex → (root → number of (vertex, ·) nodes in that tree)`.
    occurrence: FxHashMap<VertexId, FxHashMap<VertexId, u32>>,
    total_nodes: usize,
}

impl RevIndex {
    /// Roots of all trees containing at least one `(v, ·)` node.
    pub fn trees_containing(&self, v: VertexId) -> Vec<VertexId> {
        self.occurrence
            .get(&v)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Total node count over all trees (roots included).
    pub fn n_nodes(&self) -> usize {
        self.total_nodes
    }

    /// Bookkeeping: a node for `vertex` was added to tree `root`.
    pub fn note_added(&mut self, root: VertexId, vertex: VertexId) {
        *self
            .occurrence
            .entry(vertex)
            .or_default()
            .entry(root)
            .or_insert(0) += 1;
        self.total_nodes += 1;
    }

    /// Bookkeeping: a node for `vertex` was removed from tree `root`.
    pub fn note_removed(&mut self, root: VertexId, vertex: VertexId) {
        let mut empty = false;
        if let Some(m) = self.occurrence.get_mut(&vertex) {
            if let Some(c) = m.get_mut(&root) {
                *c -= 1;
                if *c == 0 {
                    m.remove(&root);
                }
            }
            empty = m.is_empty();
        }
        if empty {
            self.occurrence.remove(&vertex);
        }
        self.total_nodes -= 1;
    }
}

/// The Δ index: all spanning trees plus a reverse index from vertices to
/// the trees containing them — the reverse index is what bounds per-tuple
/// work by the number of *relevant* trees instead of all n of them.
#[derive(Debug, Default)]
pub struct Delta {
    trees: FxHashMap<VertexId, Tree>,
    index: RevIndex,
}

impl Delta {
    /// Creates an empty index.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total node count over all trees (roots included).
    pub fn n_nodes(&self) -> usize {
        self.index.total_nodes
    }

    /// Ensures a tree rooted at `x` exists, creating `(x, s0)` if not.
    pub fn ensure_tree(&mut self, x: VertexId, s0: StateId) -> &mut Tree {
        if let std::collections::hash_map::Entry::Vacant(e) = self.trees.entry(x) {
            e.insert(Tree::new(x, s0));
            self.index.note_added(x, x);
        }
        self.trees.get_mut(&x).expect("just inserted")
    }

    /// The tree rooted at `x`.
    pub fn tree(&self, x: VertexId) -> Option<&Tree> {
        self.trees.get(&x)
    }

    /// Mutable access to the tree rooted at `x`.
    pub fn tree_mut(&mut self, x: VertexId) -> Option<&mut Tree> {
        self.trees.get_mut(&x)
    }

    /// Simultaneous mutable access to one tree and the reverse index
    /// (they are disjoint, but the borrow checker needs the split made
    /// explicit).
    pub fn tree_with_index(&mut self, x: VertexId) -> Option<(&mut Tree, &mut RevIndex)> {
        let index = &mut self.index;
        self.trees.get_mut(&x).map(|t| (t, index))
    }

    /// Roots of all trees containing at least one `(v, ·)` node.
    pub fn trees_containing(&self, v: VertexId) -> Vec<VertexId> {
        self.index.trees_containing(v)
    }

    /// Roots of all trees.
    pub fn roots(&self) -> Vec<VertexId> {
        self.trees.keys().copied().collect()
    }

    /// Drops the tree rooted at `x` if only its root remains, updating
    /// the reverse index. Returns true if dropped.
    pub fn drop_if_trivial(&mut self, x: VertexId) -> bool {
        let trivial = self.trees.get(&x).map(|t| t.is_trivial()).unwrap_or(false);
        if trivial {
            self.trees.remove(&x);
            self.index.note_removed(x, x);
            true
        } else {
            false
        }
    }

    /// Debug validation of every tree plus reverse-index consistency.
    pub fn validate(&self) -> Result<(), String> {
        let mut counted = 0usize;
        for (&root, tree) in &self.trees {
            tree.validate().map_err(|e| format!("tree {root}: {e}"))?;
            counted += tree.len();
            for ((v, _), _) in tree.iter() {
                let ok = self
                    .index
                    .occurrence
                    .get(&v)
                    .and_then(|m| m.get(&root))
                    .map(|&c| c > 0)
                    .unwrap_or(false);
                if !ok {
                    return Err(format!("reverse index misses {v} in tree {root}"));
                }
            }
        }
        if counted != self.index.total_nodes {
            return Err(format!(
                "node count drift: counted {counted}, cached {}",
                self.index.total_nodes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn s(i: u32) -> StateId {
        StateId(i)
    }

    fn l(i: u32) -> Label {
        Label(i)
    }

    #[test]
    fn new_tree_has_immortal_root() {
        let t = Tree::new(v(0), s(0));
        assert_eq!(t.len(), 1);
        assert!(t.is_trivial());
        assert_eq!(t.ts((v(0), s(0))), Some(Timestamp::INFINITY));
        assert!(t.expired_keys(Timestamp(i64::MAX - 1)).is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn add_and_subtree() {
        let mut t = Tree::new(v(0), s(0));
        t.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(5));
        t.add((v(2), s(2)), (v(1), s(1)), l(1), Timestamp(3));
        t.add((v(3), s(1)), (v(1), s(1)), l(0), Timestamp(4));
        assert_eq!(t.len(), 4);
        let sub = t.subtree_keys((v(1), s(1)));
        assert_eq!(sub.len(), 3);
        assert_eq!(sub[0], (v(1), s(1)));
        t.validate().unwrap();
    }

    #[test]
    fn timestamps_non_increasing_enforced_by_validate() {
        let mut t = Tree::new(v(0), s(0));
        t.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(5));
        // Deliberately violate: child fresher than parent.
        t.add((v(2), s(2)), (v(1), s(1)), l(1), Timestamp(9));
        assert!(t.validate().is_err());
    }

    #[test]
    fn reparent_moves_subtree() {
        let mut t = Tree::new(v(0), s(0));
        t.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(2));
        t.add((v(2), s(1)), (v(0), s(0)), l(0), Timestamp(8));
        t.add((v(3), s(2)), (v(1), s(1)), l(1), Timestamp(2));
        // (v3,s2) refreshes under (v2,s1).
        t.reparent((v(3), s(2)), (v(2), s(1)), l(1), Timestamp(7));
        assert_eq!(t.get((v(3), s(2))).unwrap().parent, Some((v(2), s(1))));
        assert!(!t.get((v(1), s(1))).unwrap().children.contains(&(v(3), s(2))));
        t.validate().unwrap();
    }

    #[test]
    fn reparent_same_parent_updates_ts_only() {
        let mut t = Tree::new(v(0), s(0));
        t.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(2));
        t.reparent((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(9));
        assert_eq!(t.ts((v(1), s(1))), Some(Timestamp(9)));
        assert_eq!(t.get((v(0), s(0))).unwrap().children.len(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn remove_all_handles_subtrees() {
        let mut t = Tree::new(v(0), s(0));
        t.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(2));
        t.add((v(2), s(2)), (v(1), s(1)), l(1), Timestamp(2));
        t.add((v(3), s(1)), (v(0), s(0)), l(0), Timestamp(9));
        let expired = t.expired_keys(Timestamp(5));
        assert_eq!(expired.len(), 2);
        t.remove_all(&expired);
        assert_eq!(t.len(), 2);
        assert!(t.contains((v(3), s(1))));
        t.validate().unwrap();
    }

    #[test]
    fn set_subtree_ts_marks_whole_subtree() {
        let mut t = Tree::new(v(0), s(0));
        t.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(5));
        t.add((v(2), s(2)), (v(1), s(1)), l(1), Timestamp(5));
        t.add((v(3), s(1)), (v(0), s(0)), l(0), Timestamp(5));
        t.set_subtree_ts((v(1), s(1)), Timestamp::NEG_INFINITY);
        assert_eq!(t.ts((v(1), s(1))), Some(Timestamp::NEG_INFINITY));
        assert_eq!(t.ts((v(2), s(2))), Some(Timestamp::NEG_INFINITY));
        assert_eq!(t.ts((v(3), s(1))), Some(Timestamp(5)));
    }

    #[test]
    fn delta_reverse_index_tracks_occurrences() {
        let mut d = Delta::new();
        d.ensure_tree(v(0), s(0));
        {
            let (tree, idx) = d.tree_with_index(v(0)).unwrap();
            tree.add((v(1), s(1)), (v(0), s(0)), l(0), Timestamp(1));
            idx.note_added(v(0), v(1));
            tree.add((v(1), s(2)), (v(1), s(1)), l(1), Timestamp(1));
            idx.note_added(v(0), v(1));
        }
        assert_eq!(d.trees_containing(v(1)), vec![v(0)]);
        assert_eq!(d.n_nodes(), 3);
        d.validate().unwrap();

        // Removing one of two occurrences keeps the reverse entry.
        {
            let (tree, idx) = d.tree_with_index(v(0)).unwrap();
            tree.remove_all(&[(v(1), s(2))]);
            idx.note_removed(v(0), v(1));
        }
        assert_eq!(d.trees_containing(v(1)), vec![v(0)]);
        d.validate().unwrap();

        {
            let (tree, idx) = d.tree_with_index(v(0)).unwrap();
            tree.remove_all(&[(v(1), s(1))]);
            idx.note_removed(v(0), v(1));
        }
        assert!(d.trees_containing(v(1)).is_empty());
        d.validate().unwrap();
    }

    #[test]
    fn drop_if_trivial() {
        let mut d = Delta::new();
        d.ensure_tree(v(5), s(0));
        assert_eq!(d.n_trees(), 1);
        assert!(d.drop_if_trivial(v(5)));
        assert_eq!(d.n_trees(), 0);
        assert_eq!(d.n_nodes(), 0);
        assert!(!d.drop_if_trivial(v(5)));
        d.validate().unwrap();
    }

    #[test]
    fn ensure_tree_is_idempotent() {
        let mut d = Delta::new();
        d.ensure_tree(v(1), s(0));
        d.ensure_tree(v(1), s(0));
        assert_eq!(d.n_trees(), 1);
        assert_eq!(d.n_nodes(), 1);
    }
}
