//! Algorithm RAPQ: streaming RPQ evaluation under arbitrary path
//! semantics (§3 of the paper).
//!
//! For each incoming tuple `(τ, (u,v), l, +)` the engine simultaneously
//! traverses the snapshot graph and the query DFA — emulating a traversal
//! of the product graph — and extends every spanning tree `T_x ∈ Δ` that
//! contains a live node `(u, s)` with `δ(s, l)` defined (Algorithm RAPQ).
//! Window expiry (`ExpiryRAPQ`) runs lazily at slide boundaries and
//! reconnects orphaned product-graph nodes through surviving window
//! edges; explicit deletions (`Delete`) mark the severed subtree with
//! `-∞` timestamps and reuse the very same expiry machinery (§3.2).

use crate::config::{EngineConfig, RefreshPolicy};
use crate::delta::{Forest, NodeId, RevIndex, Unique};
use crate::sink::ResultSink;
use crate::stats::{EngineStats, IndexSize};
use srpq_automata::{CompiledQuery, Dfa};
use srpq_common::{FxHashSet, Label, ResultPair, StreamTuple, Timestamp, VertexId};
use srpq_graph::{Visibility, WindowGraph};

/// A tree node key: `(vertex, automaton state)`. With RAPQ's
/// one-occurrence invariant the pair identifies the node.
pub type NodeKey = crate::delta::PairKey;

/// An RAPQ spanning tree: the shared arena instantiated with the
/// [`Unique`] (one occurrence per pair) semantics.
pub type Tree = crate::delta::Tree<Unique>;

/// The RAPQ Δ index (Definition 12): the shared forest under [`Unique`]
/// semantics.
pub type Delta = Forest<Unique>;

/// A unit of deferred `Insert` work: attach the node for `child` under
/// the live node at `parent_id` via a graph edge labeled `via` with
/// timestamp `edge_ts`. The parent is addressed by arena id — resolved
/// once at push time — so the drain loop re-validates it with one
/// column read instead of a hash lookup.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkItem {
    pub(crate) parent_id: NodeId,
    pub(crate) child: NodeKey,
    pub(crate) via: Label,
    pub(crate) edge_ts: Timestamp,
}

/// The streaming RAPQ engine (Algorithm RAPQ + Insert + ExpiryRAPQ +
/// Delete).
pub struct RapqEngine {
    query: CompiledQuery,
    config: EngineConfig,
    graph: WindowGraph,
    delta: Delta,
    /// Deduplication set: pairs currently reported as results.
    emitted: FxHashSet<ResultPair>,
    now: Timestamp,
    stats: EngineStats,
    /// Reusable work stack (avoids reallocating per tuple).
    work: Vec<WorkItem>,
    /// Per-tuple scratch: roots of the trees a tuple can extend.
    roots_scratch: Vec<VertexId>,
    /// Per-slide scratch: all tree roots during an expiry sweep.
    expire_roots_scratch: Vec<VertexId>,
    /// Per-slide scratch: the expiry candidate set of one tree.
    expired_scratch: Vec<NodeKey>,
    /// Per-slide scratch: the compaction remap table.
    compact_scratch: Vec<NodeId>,
}

impl RapqEngine {
    /// Creates an engine for a registered query.
    pub fn new(query: CompiledQuery, config: EngineConfig) -> RapqEngine {
        RapqEngine {
            query,
            config,
            graph: WindowGraph::new(),
            delta: Delta::new(),
            emitted: FxHashSet::default(),
            now: Timestamp::NEG_INFINITY,
            stats: EngineStats::default(),
            work: Vec::new(),
            roots_scratch: Vec::new(),
            expire_roots_scratch: Vec::new(),
            expired_scratch: Vec::new(),
            compact_scratch: Vec::new(),
        }
    }

    /// The registered query.
    pub fn query(&self) -> &CompiledQuery {
        &self.query
    }

    /// Engine statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Current Δ index size (Figure 5 / Figure 9).
    pub fn index_size(&self) -> IndexSize {
        IndexSize {
            trees: self.delta.n_trees(),
            nodes: self.delta.n_nodes(),
            arena_bytes: self.delta.arena_bytes(),
        }
    }

    /// The window graph (snapshot `G_{W,τ}` plus not-yet-purged tuples).
    pub fn graph(&self) -> &WindowGraph {
        &self.graph
    }

    /// Direct access to the Δ index (tests, Figure 5 instrumentation).
    pub fn delta(&self) -> &Delta {
        &self.delta
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable statistics (persistence support: `srpq_persist` maintains
    /// the durability counters here).
    pub fn stats_mut(&mut self) -> &mut EngineStats {
        &mut self.stats
    }

    /// The currently reported result pairs, sorted (persistence support:
    /// checkpoints serialize the deduplication set).
    pub fn emitted_pairs(&self) -> Vec<ResultPair> {
        let mut out: Vec<ResultPair> = self.emitted.iter().copied().collect();
        out.sort_unstable();
        out
    }

    /// Mutable window graph (persistence support: `Full` recovery
    /// rebuilds the graph by direct insertion instead of replay).
    pub fn graph_mut(&mut self) -> &mut WindowGraph {
        &mut self.graph
    }

    /// Overwrites the engine cursor — clock, result-deduplication set,
    /// and statistics — with checkpointed values (persistence support;
    /// called after the recovery replay rebuilt graph and Δ).
    pub fn restore_cursor(
        &mut self,
        now: Timestamp,
        emitted: impl IntoIterator<Item = ResultPair>,
        stats: EngineStats,
    ) {
        self.now = now;
        self.emitted = emitted.into_iter().collect();
        self.stats = stats;
    }

    /// Replaces the Δ index wholesale (persistence support: `Full`
    /// recovery restores the exact checkpointed forest).
    pub fn set_delta(&mut self, delta: Delta) {
        self.delta = delta;
    }

    /// Stream time of the last processed tuple.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of distinct result pairs currently reported.
    pub fn result_count(&self) -> usize {
        self.emitted.len()
    }

    /// Whether `pair` has been reported (and not invalidated).
    pub fn has_result(&self, pair: ResultPair) -> bool {
        self.emitted.contains(&pair)
    }

    /// Processes one streaming graph tuple, pushing any new results (and
    /// invalidations) into `sink`. Tuples must arrive in non-decreasing
    /// timestamp order.
    pub fn process<S: ResultSink>(&mut self, tuple: StreamTuple, sink: &mut S) {
        let prev = self.now;
        if tuple.ts > self.now {
            self.now = tuple.ts;
        }
        // Lazy expiry: fire once per crossed slide boundary (§3.1).
        if prev != Timestamp::NEG_INFINITY && self.config.window.crosses_slide(prev, self.now) {
            let wm = self.config.window.lazy_watermark(self.now);
            self.run_expiry(wm, false, sink);
        }
        self.apply_and_dispatch(tuple, sink);
    }

    /// Owned-graph tuple handling: mutate the graph, then run the
    /// read-only Δ traversal against it (the same split a shared-graph
    /// coordinator performs once per micro-batch).
    fn apply_and_dispatch<S: ResultSink>(&mut self, tuple: StreamTuple, sink: &mut S) {
        if self.query.dfa().knows_label(tuple.label) {
            match tuple.op {
                srpq_common::Op::Insert => {
                    self.graph
                        .insert(tuple.edge.src, tuple.edge.dst, tuple.label, tuple.ts);
                }
                srpq_common::Op::Delete => {
                    self.graph
                        .remove(tuple.edge.src, tuple.edge.dst, tuple.label);
                }
            }
        }
        let graph = std::mem::take(&mut self.graph);
        self.dispatch(&graph, Visibility::ALL, tuple, sink);
        self.graph = graph;
    }

    /// Processes a slide's worth of tuples at once: the batch is grouped
    /// by slide interval, so the boundary check and the (at most one)
    /// expiry pass run once per group instead of once per tuple. The
    /// result stream is byte-identical to feeding the same tuples
    /// through [`Self::process`] one at a time.
    pub fn process_batch<S: ResultSink>(&mut self, batch: &[StreamTuple], sink: &mut S) {
        let window = self.config.window;
        let mut i = 0;
        while i < batch.len() {
            let (len, group_now) = window.slide_group(self.now, &batch[i..], |t| t.ts);
            if self.now != Timestamp::NEG_INFINITY && window.crosses_slide(self.now, group_now) {
                self.now = group_now;
                let wm = window.lazy_watermark(group_now);
                self.run_expiry(wm, false, sink);
            }
            for &t in &batch[i..i + len] {
                if t.ts > self.now {
                    self.now = t.ts;
                }
                self.apply_and_dispatch(t, sink);
            }
            i += len;
        }
    }

    /// Forces an expiry pass at the current eager watermark (harness
    /// hook; normally expiry is driven by slide crossings).
    pub fn expire_now<S: ResultSink>(&mut self, sink: &mut S) {
        let wm = self.config.window.watermark(self.now);
        self.run_expiry(wm, false, sink);
    }

    /// The **read-only traversal path**: extends/expires Δ for one
    /// tuple against an external shared graph that has *already*
    /// absorbed this tuple's mutation (and possibly the whole
    /// micro-batch's — `vis` hides in-batch edges a sequential run
    /// would not have seen yet). The shared graph's slide-boundary
    /// purge is the coordinator's job; this path only maintains Δ.
    /// Convenience over [`Self::advance_with_graph`] (expiry hidden one
    /// position earlier, as for a *first* routing target) followed by
    /// [`Self::dispatch_with_graph`].
    pub fn extend_with_graph<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        tuple: StreamTuple,
        sink: &mut S,
    ) {
        self.advance_with_graph(graph, vis.before(), tuple.ts, sink);
        self.dispatch_with_graph(graph, vis, tuple, sink);
    }

    /// Advances the clock to `ts` and, on a slide-boundary crossing,
    /// runs the lazy Δ-expiry pass against the shared graph at
    /// visibility `vis`. Split from [`Self::dispatch_with_graph`] so a
    /// multi-query coordinator can reproduce the sequential order
    /// exactly: the *first* routing target of a tuple expires before
    /// the tuple's graph mutation is visible, later targets after it.
    pub fn advance_with_graph<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        ts: Timestamp,
        sink: &mut S,
    ) {
        let prev = self.now;
        if ts > self.now {
            self.now = ts;
        }
        if prev != Timestamp::NEG_INFINITY && self.config.window.crosses_slide(prev, self.now) {
            let t0 = std::time::Instant::now();
            self.stats.expiry_runs += 1;
            let wm = self.config.window.lazy_watermark(self.now);
            self.expire_delta(graph, vis, wm, false, sink);
            self.stats.expiry_nanos += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Δ-side handling of one tuple against the shared graph (no clock
    /// movement — call [`Self::advance_with_graph`] first).
    pub fn dispatch_with_graph<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        tuple: StreamTuple,
        sink: &mut S,
    ) {
        self.dispatch(graph, vis, tuple, sink);
    }

    /// Read-only eager expiry against an external shared graph (the
    /// shared counterpart of [`Self::expire_now`]; the caller purges
    /// the graph itself).
    pub fn expire_delta_with_graph<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        sink: &mut S,
    ) {
        let t0 = std::time::Instant::now();
        self.stats.expiry_runs += 1;
        let wm = self.config.window.watermark(self.now);
        self.expire_delta(graph, vis, wm, false, sink);
        self.stats.expiry_nanos += t0.elapsed().as_nanos() as u64;
    }

    /// Δ-side handling of one tuple: tree extension for inserts,
    /// subtree severing + reconnection for deletions. The graph
    /// mutation has already happened (owned path or coordinator).
    fn dispatch<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        tuple: StreamTuple,
        sink: &mut S,
    ) {
        if !self.query.dfa().knows_label(tuple.label) {
            self.stats.tuples_discarded += 1;
            return;
        }
        match tuple.op {
            srpq_common::Op::Insert => self.dispatch_insert(graph, vis, tuple, sink),
            srpq_common::Op::Delete => self.dispatch_delete(graph, vis, tuple, sink),
        }
    }

    /// Processes a tuple against an **external, shared** window graph
    /// (multi-query evaluation: one graph, many Δ indexes). The engine's
    /// own graph must stay untouched between shared calls — do not mix
    /// [`Self::process`] and this method on one engine.
    pub fn process_with_graph<S: ResultSink>(
        &mut self,
        graph: &mut WindowGraph,
        tuple: StreamTuple,
        sink: &mut S,
    ) {
        std::mem::swap(&mut self.graph, graph);
        self.process(tuple, sink);
        std::mem::swap(&mut self.graph, graph);
    }

    /// [`Self::expire_now`] against an external shared graph.
    pub fn expire_now_with_graph<S: ResultSink>(&mut self, graph: &mut WindowGraph, sink: &mut S) {
        std::mem::swap(&mut self.graph, graph);
        self.expire_now(sink);
        std::mem::swap(&mut self.graph, graph);
    }

    fn dispatch_insert<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        tuple: StreamTuple,
        sink: &mut S,
    ) {
        let label = tuple.label;
        self.stats.tuples_processed += 1;
        let (u, v) = (tuple.edge.src, tuple.edge.dst);
        let wm = self.config.window.watermark(self.now);

        // Materialize T_u lazily: only a tuple with δ(s0, l) defined can
        // seed a tree rooted at its source vertex.
        let s0 = self.query.dfa().start();
        if self
            .query
            .dfa()
            .transitions_for(label)
            .iter()
            .any(|&(s, _)| s == s0)
        {
            self.delta.ensure_tree(u, s0);
        }

        // Lines 4–12 of Algorithm RAPQ, restricted to trees that can
        // actually extend (reverse index).
        let mut roots = std::mem::take(&mut self.roots_scratch);
        self.delta.collect_trees_containing(u, &mut roots);
        for &root in &roots {
            self.extend_tree_with_edge(graph, vis, root, u, v, label, tuple.ts, wm, sink);
        }
        self.roots_scratch = roots;
    }

    /// For one tree: try every DFA transition `(s, t)` on `label` with
    /// parent `(u, s)` and child `(v, t)`.
    #[allow(clippy::too_many_arguments)]
    fn extend_tree_with_edge<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        root: VertexId,
        u: VertexId,
        v: VertexId,
        label: Label,
        edge_ts: Timestamp,
        wm: Timestamp,
        sink: &mut S,
    ) {
        let mut work = std::mem::take(&mut self.work);
        work.clear();
        {
            let Some(tree) = self.delta.tree(root) else {
                self.work = work;
                return;
            };
            for &(s, t) in self.query.dfa().transitions_for(label) {
                let child = (v, t);
                let Some(pid) = tree.first_occurrence((u, s)) else {
                    continue;
                };
                let Some(pts) = tree.ts_of(pid) else { continue };
                if pts <= wm {
                    continue; // parent expired (line 6 guard)
                }
                if Self::should_insert(tree, child, pts, edge_ts) {
                    work.push(WorkItem {
                        parent_id: pid,
                        child,
                        via: label,
                        edge_ts,
                    });
                }
            }
        }
        if !work.is_empty() {
            let (tree, idx) = self
                .delta
                .tree_with_index(root)
                .expect("tree checked above");
            run_insert(
                tree,
                idx,
                &mut work,
                self.query.dfa(),
                graph,
                vis,
                self.config.refresh,
                self.config.dedup_results,
                wm,
                self.now,
                &mut self.emitted,
                &mut self.stats,
                sink,
            );
        }
        self.work = work;
    }

    /// The line-7 condition of Algorithm RAPQ: insert if the child is
    /// absent or its timestamp can be improved.
    #[inline]
    fn should_insert(
        tree: &Tree,
        child: NodeKey,
        parent_ts: Timestamp,
        edge_ts: Timestamp,
    ) -> bool {
        match tree.ts(child) {
            None => true,
            Some(cts) => cts < parent_ts.min(edge_ts),
        }
    }

    fn dispatch_delete<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        tuple: StreamTuple,
        sink: &mut S,
    ) {
        let label = tuple.label;
        self.stats.tuples_processed += 1;
        self.stats.deletions_processed += 1;
        let (u, v) = (tuple.edge.src, tuple.edge.dst);
        let wm = self.config.window.watermark(self.now);

        // Algorithm Delete: find trees where (u,s) → (v,t) is a
        // tree-edge (Definition 13), mark the severed subtree with -∞,
        // then run the expiry machinery to prune/reconnect.
        let mut roots = std::mem::take(&mut self.roots_scratch);
        self.delta.collect_trees_containing(v, &mut roots);
        for &root in &roots {
            let mut dirty = false;
            if let Some(tree) = self.delta.tree_mut(root) {
                for &(s, t) in self.query.dfa().transitions_for(label) {
                    let key = (v, t);
                    if let Some(node) = tree.get(key) {
                        if node.via_label == label && tree.parent_key(key) == Some((u, s)) {
                            tree.set_subtree_ts_key(key, Timestamp::NEG_INFINITY);
                            dirty = true;
                        }
                    }
                }
            }
            if dirty {
                self.expire_tree(graph, vis, root, wm, true, sink);
                self.delta.drop_if_trivial(root);
            }
        }
        self.roots_scratch = roots;
        self.refresh_delta_gauges();
    }

    /// Runs `ExpiryRAPQ` over every tree (owned-graph path): purge the
    /// graph, prune expired nodes, attempt reconnection via surviving
    /// window edges, optionally invalidate results that lost their last
    /// witness.
    fn run_expiry<S: ResultSink>(&mut self, wm: Timestamp, invalidate: bool, sink: &mut S) {
        let t0 = std::time::Instant::now();
        self.stats.expiry_runs += 1;
        self.graph.purge_expired(wm);
        let graph = std::mem::take(&mut self.graph);
        self.expire_delta(&graph, Visibility::ALL, wm, invalidate, sink);
        self.graph = graph;
        self.stats.expiry_nanos += t0.elapsed().as_nanos() as u64;
    }

    /// The Δ-only part of `ExpiryRAPQ`, over a borrowed (possibly
    /// shared) graph.
    fn expire_delta<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        wm: Timestamp,
        invalidate: bool,
        sink: &mut S,
    ) {
        let mut roots = std::mem::take(&mut self.expire_roots_scratch);
        self.delta.collect_roots(&mut roots);
        for &root in &roots {
            self.expire_tree(graph, vis, root, wm, invalidate, sink);
            self.delta.drop_if_trivial(root);
        }
        self.expire_roots_scratch = roots;
        self.refresh_delta_gauges();
    }

    /// Refreshes the arena-occupancy gauges, sampled once per expiry
    /// sweep / deletion (the natural per-slide observation points).
    fn refresh_delta_gauges(&mut self) {
        self.stats.delta_nodes_live = self.delta.n_nodes() as u64;
        self.stats.delta_capacity = self.delta.n_slots() as u64;
    }

    /// `ExpiryRAPQ` for a single tree.
    #[allow(clippy::too_many_arguments)]
    fn expire_tree<S: ResultSink>(
        &mut self,
        graph: &WindowGraph,
        vis: Visibility,
        root: VertexId,
        wm: Timestamp,
        invalidate: bool,
        sink: &mut S,
    ) {
        let mut work = std::mem::take(&mut self.work);
        work.clear();
        let mut expired = std::mem::take(&mut self.expired_scratch);

        let Some((tree, idx)) = self.delta.tree_with_index(root) else {
            self.work = work;
            self.expired_scratch = expired;
            return;
        };
        // Lines 2–3: candidate set P (downward-closed by the timestamp
        // monotonicity invariant) and prune, fused into one threshold
        // scan over the contiguous timestamp column (the keys land in a
        // reusable scratch buffer for the reconnection pass below).
        tree.remove_expired_keys(wm, &mut expired);
        if expired.is_empty() {
            self.work = work;
            self.expired_scratch = expired;
            return;
        }
        for &(ev, _) in &expired {
            idx.note_removed(root, ev);
        }

        // Lines 4–10: reconnection. A candidate (v, t) reattaches if some
        // valid in-edge (u, v) comes from a live (u, s) with δ(s,l) = t;
        // Insert then re-expands its former subtree from graph edges.
        // `transitions_into` × the label-partitioned in-lists visit only
        // the in-edges whose label can actually reach state `et`.
        for &(ev, et) in &expired {
            let adj = graph.in_view_at(ev, vis);
            for &(s, label) in self.query.dfa().transitions_into(et) {
                for e in adj.edges(label, wm) {
                    let Some(pid) = tree.first_occurrence((e.other, s)) else {
                        continue;
                    };
                    let Some(pts) = tree.ts_of(pid) else { continue };
                    if pts <= wm {
                        continue;
                    }
                    if Self::should_insert(tree, (ev, et), pts, e.ts) {
                        work.push(WorkItem {
                            parent_id: pid,
                            child: (ev, et),
                            via: label,
                            edge_ts: e.ts,
                        });
                        run_insert(
                            tree,
                            idx,
                            &mut work,
                            self.query.dfa(),
                            graph,
                            vis,
                            self.config.refresh,
                            self.config.dedup_results,
                            wm,
                            self.now,
                            &mut self.emitted,
                            &mut self.stats,
                            sink,
                        );
                    }
                }
            }
        }

        // Lines 11–15: permanently removed accepting nodes may
        // invalidate results (only meaningful for explicit deletions;
        // window expiry keeps implicit-window monotonicity).
        let mut permanently_removed = 0u64;
        for &(ev, et) in &expired {
            if !tree.contains((ev, et)) {
                permanently_removed += 1;
                if invalidate
                    && self.config.report_invalidations
                    && self.query.dfa().is_accepting(et)
                {
                    // Another accepting occurrence of `ev` may survive.
                    let witnessed = self
                        .query
                        .dfa()
                        .accepting_states()
                        .any(|f| tree.contains((ev, f)));
                    if !witnessed {
                        let pair = ResultPair::new(root, ev);
                        if self.emitted.remove(&pair) {
                            self.stats.results_invalidated += 1;
                            sink.invalidate(pair, self.now);
                        }
                    }
                }
            }
        }
        self.stats.nodes_expired += permanently_removed;

        // Per-slide compaction: defragment the arena once occupancy
        // drops to half, so long-running windows keep the timestamp
        // scan dense.
        let mut remap = std::mem::take(&mut self.compact_scratch);
        if tree.maybe_compact(&mut remap) {
            self.stats.compactions += 1;
        }
        self.compact_scratch = remap;
        self.work = work;
        self.expired_scratch = expired;
    }
}

/// The iterative core of Algorithm Insert: drains `work`, attaching or
/// refreshing nodes and expanding fresh nodes through valid window edges.
///
/// Free function (rather than a method) so the engine can hold disjoint
/// borrows of the tree, the reverse index, and the graph.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_insert<S: ResultSink>(
    tree: &mut Tree,
    idx: &mut RevIndex,
    work: &mut Vec<WorkItem>,
    dfa: &Dfa,
    graph: &WindowGraph,
    vis: Visibility,
    refresh: RefreshPolicy,
    dedup: bool,
    wm: Timestamp,
    now: Timestamp,
    emitted: &mut FxHashSet<ResultPair>,
    stats: &mut EngineStats,
    sink: &mut S,
) {
    let root = tree.root();
    while let Some(WorkItem {
        parent_id,
        child,
        via,
        edge_ts,
    }) = work.pop()
    {
        stats.insert_calls += 1;
        // Re-validate: the tree may have changed since this item was
        // pushed (conditions are monotone, so re-checking is safe).
        // Nothing is removed while work drains, so the parent id is
        // stable and this is a single column read.
        let Some(pts) = tree.ts_of(parent_id) else {
            continue;
        };
        if pts <= wm {
            continue;
        }
        let new_ts = edge_ts.min(pts);
        if new_ts <= wm {
            continue; // the connecting edge itself has expired
        }
        match tree.first_occurrence(child) {
            Some(cid) => {
                // Timestamp refresh (Algorithm RAPQ line 7 / Insert
                // lines 2–3). The paper re-points the parent without
                // re-expanding; `RefreshPolicy` exposes the variants.
                let Some(cts) = tree.ts_of(cid) else { continue };
                if cts >= new_ts {
                    continue;
                }
                match refresh {
                    RefreshPolicy::None => {}
                    RefreshPolicy::Node => {
                        tree.reparent(cid, parent_id, via, new_ts);
                    }
                    RefreshPolicy::Subtree => {
                        tree.reparent(cid, parent_id, via, new_ts);
                        // Propagate the improvement: any neighbour whose
                        // timestamp can now improve through this node is
                        // re-examined — both current children and nodes
                        // that would re-parent under the fresher path.
                        // Timestamps only ever increase, so this
                        // fixpoint terminates.
                        let (cv, cs) = child;
                        let adj = graph.out_view_at(cv, vis);
                        for &(label, q) in dfa.transitions_from(cs) {
                            for e in adj.edges(label, wm) {
                                let target = (e.other, q);
                                // Absent targets matter too: an edge that
                                // arrived while this node looked expired
                                // was never expanded through.
                                let improvable = match tree.ts(target) {
                                    None => true,
                                    Some(ts0) => ts0 < new_ts.min(e.ts),
                                };
                                if improvable {
                                    work.push(WorkItem {
                                        parent_id: cid,
                                        child: target,
                                        via: label,
                                        edge_ts: e.ts,
                                    });
                                }
                            }
                        }
                    }
                }
            }
            None => {
                let id = tree.add_child(parent_id, child.0, child.1, via, new_ts);
                idx.note_added(root, child.0);
                let (cv, cs) = child;
                if dfa.is_accepting(cs) {
                    let pair = ResultPair::new(root, cv);
                    let fresh = emitted.insert(pair);
                    if fresh || !dedup {
                        stats.results_emitted += 1;
                        sink.emit(pair, now);
                    }
                }
                // Lines 8–11 of Insert: expand through valid window
                // edges out of the new node. The DFA's per-state
                // transition list × the label-partitioned adjacency
                // touches exactly the matching edges, allocation-free.
                let adj = graph.out_view_at(cv, vis);
                for &(label, q) in dfa.transitions_from(cs) {
                    for e in adj.edges(label, wm) {
                        let target = (e.other, q);
                        let cond = match tree.ts(target) {
                            None => true,
                            Some(ts0) => ts0 < new_ts.min(e.ts),
                        };
                        if cond {
                            work.push(WorkItem {
                                parent_id: id,
                                child: target,
                                via: label,
                                edge_ts: e.ts,
                            });
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use srpq_common::{LabelInterner, VertexInterner};
    use srpq_graph::WindowPolicy;

    /// Builds the Figure 1(a) stream: Q1 = (follows ◦ mentions)+,
    /// |W| = 15. Returns (engine, sink-ready vertex ids, labels).
    struct Fixture {
        engine: RapqEngine,
        verts: VertexInterner,
        labels: LabelInterner,
    }

    fn fig1_engine(refresh: RefreshPolicy, slide: i64) -> Fixture {
        let mut labels = LabelInterner::new();
        let query = CompiledQuery::compile("(follows mentions)+", &mut labels).unwrap();
        let mut config = EngineConfig::with_window(WindowPolicy::new(15, slide));
        config.refresh = refresh;
        let engine = RapqEngine::new(query, config);
        let mut verts = VertexInterner::new();
        for name in ["x", "y", "z", "u", "v", "w"] {
            verts.intern(name);
        }
        Fixture {
            engine,
            verts,
            labels,
        }
    }

    /// The Figure 1(a) tuple stream up to (and including) time `until`.
    fn fig1_stream(f: &Fixture, until: i64) -> Vec<StreamTuple> {
        let v = |n: &str| f.verts.get(n).unwrap();
        let l = |n: &str| f.labels.get(n).unwrap();
        let raw = [
            (4, "y", "u", "mentions"),
            (6, "x", "z", "follows"),
            (9, "u", "v", "follows"),
            (11, "z", "w", "mentions"),
            (13, "x", "y", "follows"),
            (14, "z", "u", "mentions"),
            (15, "u", "x", "mentions"),
            (18, "v", "y", "mentions"),
            (19, "w", "u", "follows"),
        ];
        raw.iter()
            .filter(|&&(ts, ..)| ts <= until)
            .map(|&(ts, a, b, lab)| StreamTuple::insert(Timestamp(ts), v(a), v(b), l(lab)))
            .collect()
    }

    fn node(
        f: &Fixture,
        root: &str,
        vertex: &str,
        state: u32,
    ) -> Option<(Option<NodeKey>, Timestamp)> {
        let tree = f.engine.delta.tree(f.verts.get(root).unwrap())?;
        let key = (f.verts.get(vertex).unwrap(), srpq_common::StateId(state));
        tree.get(key).map(|n| (tree.parent_key(key), n.ts))
    }

    #[test]
    fn figure_2a_tree_shape_without_refresh() {
        // RefreshPolicy::None reproduces Figure 2(a) exactly: slide large
        // enough that no expiry pass runs before t=18.
        let mut f = fig1_engine(RefreshPolicy::None, 1000);
        let mut sink = CollectSink::default();
        for t in fig1_stream(&f, 18) {
            f.engine.process(t, &mut sink);
        }
        let v = |n: &str| f.verts.get(n).unwrap();
        let s = |i: u32| srpq_common::StateId(i);

        // T_x nodes with parents and timestamps as drawn.
        assert_eq!(
            node(&f, "x", "y", 1),
            Some((Some((v("x"), s(0))), Timestamp(13)))
        );
        assert_eq!(
            node(&f, "x", "z", 1),
            Some((Some((v("x"), s(0))), Timestamp(6)))
        );
        assert_eq!(
            node(&f, "x", "u", 2),
            Some((Some((v("y"), s(1))), Timestamp(4)))
        );
        assert_eq!(
            node(&f, "x", "v", 1),
            Some((Some((v("u"), s(2))), Timestamp(4)))
        );
        assert_eq!(
            node(&f, "x", "y", 2),
            Some((Some((v("v"), s(1))), Timestamp(4)))
        );
        assert_eq!(
            node(&f, "x", "w", 2),
            Some((Some((v("z"), s(1))), Timestamp(6)))
        );
        // Result (x, y) reported at t=18 (Example in §1).
        assert!(f.engine.has_result(ResultPair::new(v("x"), v("y"))));
        f.engine.delta.validate().unwrap();
    }

    #[test]
    fn pseudocode_refresh_reparents_at_t14() {
        // With the paper's pseudocode condition (RefreshPolicy::Node),
        // the arrival of (z → u, mentions) at t=14 refreshes (u, 2) under
        // (z, 1) with timestamp 6 — see DESIGN.md on the Figure 2(a)
        // discrepancy.
        let mut f = fig1_engine(RefreshPolicy::Node, 1000);
        let mut sink = CollectSink::default();
        for t in fig1_stream(&f, 18) {
            f.engine.process(t, &mut sink);
        }
        let v = |n: &str| f.verts.get(n).unwrap();
        let s = |i: u32| srpq_common::StateId(i);
        assert_eq!(
            node(&f, "x", "u", 2),
            Some((Some((v("z"), s(1))), Timestamp(6)))
        );
        // Descendants keep their stale (smaller) timestamps.
        assert_eq!(
            node(&f, "x", "v", 1),
            Some((Some((v("u"), s(2))), Timestamp(4)))
        );
        f.engine.delta.validate().unwrap();
    }

    #[test]
    fn figure_2b_after_expiry_at_t19() {
        // With slide = 1 the expiry pass at t=19 prunes the ts=4 chain
        // and reconnects (u,2) through the valid edge (z → u, 14),
        // yielding the Figure 2(b) tree.
        let mut f = fig1_engine(RefreshPolicy::None, 1);
        let mut sink = CollectSink::default();
        for t in fig1_stream(&f, 19) {
            f.engine.process(t, &mut sink);
        }
        let v = |n: &str| f.verts.get(n).unwrap();
        let s = |i: u32| srpq_common::StateId(i);

        assert_eq!(
            node(&f, "x", "y", 1),
            Some((Some((v("x"), s(0))), Timestamp(13)))
        );
        // Reconnected chain, all at ts 6.
        assert_eq!(
            node(&f, "x", "u", 2),
            Some((Some((v("z"), s(1))), Timestamp(6)))
        );
        assert_eq!(
            node(&f, "x", "v", 1),
            Some((Some((v("u"), s(2))), Timestamp(6)))
        );
        assert_eq!(
            node(&f, "x", "y", 2),
            Some((Some((v("v"), s(1))), Timestamp(6)))
        );
        // New nodes from the t=19 edge (w → u, follows).
        assert_eq!(
            node(&f, "x", "u", 1),
            Some((Some((v("w"), s(2))), Timestamp(6)))
        );
        assert_eq!(
            node(&f, "x", "x", 2),
            Some((Some((v("u"), s(1))), Timestamp(6)))
        );
        assert_eq!(
            node(&f, "x", "w", 2),
            Some((Some((v("z"), s(1))), Timestamp(6)))
        );
        f.engine.delta.validate().unwrap();
    }

    #[test]
    fn emits_pair_for_even_alternating_path() {
        let mut f = fig1_engine(RefreshPolicy::Node, 1);
        let mut sink = CollectSink::default();
        for t in fig1_stream(&f, 19) {
            f.engine.process(t, &mut sink);
        }
        let v = |n: &str| f.verts.get(n).unwrap();
        let pairs = sink.pairs();
        // (x, y) via x→y→u→v→y at t=18 and (x, x) via the cycle at 19.
        assert!(pairs.contains(&ResultPair::new(v("x"), v("y"))));
        assert!(pairs.contains(&ResultPair::new(v("x"), v("x"))));
    }

    #[test]
    fn foreign_labels_are_discarded() {
        let mut f = fig1_engine(RefreshPolicy::Node, 1);
        let mut labels = f.labels.clone();
        let likes = labels.intern("likes");
        let mut sink = CollectSink::default();
        let x = f.verts.get("x").unwrap();
        let y = f.verts.get("y").unwrap();
        f.engine
            .process(StreamTuple::insert(Timestamp(1), x, y, likes), &mut sink);
        assert_eq!(f.engine.stats().tuples_discarded, 1);
        assert_eq!(f.engine.stats().tuples_processed, 0);
        assert_eq!(f.engine.graph().n_edges(), 0);
    }

    #[test]
    fn window_separates_old_and_new_edges() {
        // a ◦ b with |W| = 5: edges 10 apart never form a result.
        let mut labels = LabelInterner::new();
        let query = CompiledQuery::compile("a b", &mut labels).unwrap();
        let config = EngineConfig::with_window(WindowPolicy::new(5, 1));
        let mut engine = RapqEngine::new(query, config);
        let a = labels.get("a").unwrap();
        let b = labels.get("b").unwrap();
        let (v0, v1, v2) = (VertexId(0), VertexId(1), VertexId(2));
        let mut sink = CollectSink::default();
        engine.process(StreamTuple::insert(Timestamp(1), v0, v1, a), &mut sink);
        engine.process(StreamTuple::insert(Timestamp(11), v1, v2, b), &mut sink);
        assert!(sink.pairs().is_empty());

        // Within the window it does.
        engine.process(StreamTuple::insert(Timestamp(12), v0, v1, a), &mut sink);
        assert_eq!(sink.pairs().len(), 1);
        assert!(engine.has_result(ResultPair::new(v0, v2)));
    }

    #[test]
    fn results_require_all_edges_in_one_window() {
        // Definition 9: all edges of a witness path must be < |W| apart.
        let mut labels = LabelInterner::new();
        let query = CompiledQuery::compile("a+", &mut labels).unwrap();
        let config = EngineConfig::with_window(WindowPolicy::new(10, 1));
        let mut engine = RapqEngine::new(query, config);
        let a = labels.get("a").unwrap();
        let mut sink = CollectSink::default();
        // Chain 0→1→2 with a gap: 0→1 at t=1, 1→2 at t=20.
        engine.process(
            StreamTuple::insert(Timestamp(1), VertexId(0), VertexId(1), a),
            &mut sink,
        );
        engine.process(
            StreamTuple::insert(Timestamp(20), VertexId(1), VertexId(2), a),
            &mut sink,
        );
        let pairs = sink.pairs();
        assert!(pairs.contains(&ResultPair::new(VertexId(0), VertexId(1))));
        assert!(pairs.contains(&ResultPair::new(VertexId(1), VertexId(2))));
        assert!(!pairs.contains(&ResultPair::new(VertexId(0), VertexId(2))));
    }

    #[test]
    fn explicit_delete_invalidates_results() {
        let mut labels = LabelInterner::new();
        let query = CompiledQuery::compile("a b", &mut labels).unwrap();
        let config = EngineConfig::with_window(WindowPolicy::new(100, 1));
        let mut engine = RapqEngine::new(query, config);
        let a = labels.get("a").unwrap();
        let b = labels.get("b").unwrap();
        let (v0, v1, v2) = (VertexId(0), VertexId(1), VertexId(2));
        let mut sink = CollectSink::default();
        engine.process(StreamTuple::insert(Timestamp(1), v0, v1, a), &mut sink);
        engine.process(StreamTuple::insert(Timestamp(2), v1, v2, b), &mut sink);
        assert!(engine.has_result(ResultPair::new(v0, v2)));

        engine.process(StreamTuple::delete(Timestamp(3), v0, v1, a), &mut sink);
        assert!(!engine.has_result(ResultPair::new(v0, v2)));
        assert_eq!(sink.invalidated().len(), 1);
        assert_eq!(engine.stats().deletions_processed, 1);
        engine.delta.validate().unwrap();
    }

    #[test]
    fn delete_with_alternative_witness_keeps_result() {
        // Two parallel a-edges from 0 to 1: deleting one leaves the
        // result derivable... but they are the same (src,dst,label) edge,
        // so use two distinct intermediate vertices instead.
        let mut labels = LabelInterner::new();
        let query = CompiledQuery::compile("a b", &mut labels).unwrap();
        let config = EngineConfig::with_window(WindowPolicy::new(100, 1));
        let mut engine = RapqEngine::new(query, config);
        let a = labels.get("a").unwrap();
        let b = labels.get("b").unwrap();
        let (v0, v1, v2, v3) = (VertexId(0), VertexId(1), VertexId(2), VertexId(3));
        let mut sink = CollectSink::default();
        // 0 →a 1 →b 3 and 0 →a 2 →b 3.
        engine.process(StreamTuple::insert(Timestamp(1), v0, v1, a), &mut sink);
        engine.process(StreamTuple::insert(Timestamp(2), v1, v3, b), &mut sink);
        engine.process(StreamTuple::insert(Timestamp(3), v0, v2, a), &mut sink);
        engine.process(StreamTuple::insert(Timestamp(4), v2, v3, b), &mut sink);
        assert!(engine.has_result(ResultPair::new(v0, v3)));

        // Deleting the first witness keeps the result via the second.
        engine.process(StreamTuple::delete(Timestamp(5), v0, v1, a), &mut sink);
        assert!(engine.has_result(ResultPair::new(v0, v3)));
        assert!(sink.invalidated().is_empty());

        // Deleting the second witness finally invalidates.
        engine.process(StreamTuple::delete(Timestamp(6), v0, v2, a), &mut sink);
        assert!(!engine.has_result(ResultPair::new(v0, v3)));
        assert_eq!(sink.invalidated().len(), 1);
    }

    #[test]
    fn delete_of_nontree_edge_is_cheap() {
        let mut labels = LabelInterner::new();
        let query = CompiledQuery::compile("a+", &mut labels).unwrap();
        let config = EngineConfig::with_window(WindowPolicy::new(100, 1));
        let mut engine = RapqEngine::new(query, config);
        let a = labels.get("a").unwrap();
        let (v0, v1) = (VertexId(0), VertexId(1));
        let mut sink = CollectSink::default();
        engine.process(StreamTuple::insert(Timestamp(1), v0, v1, a), &mut sink);
        // (1 → 0) creates the cycle; both (0,1) and (1,0) are results.
        engine.process(StreamTuple::insert(Timestamp(2), v1, v0, a), &mut sink);
        assert!(engine.has_result(ResultPair::new(v0, v0)));

        // Delete an edge that is a tree edge in T_1 but not in T_0's
        // subtree rooted deeper — either way the engine stays consistent.
        engine.process(StreamTuple::delete(Timestamp(3), v1, v0, a), &mut sink);
        assert!(engine.has_result(ResultPair::new(v0, v1)));
        assert!(!engine.has_result(ResultPair::new(v0, v0)));
        engine.delta.validate().unwrap();
    }

    #[test]
    fn expiry_reduces_index_size() {
        let mut labels = LabelInterner::new();
        let query = CompiledQuery::compile("a+", &mut labels).unwrap();
        let config = EngineConfig::with_window(WindowPolicy::new(10, 5));
        let mut engine = RapqEngine::new(query, config);
        let a = labels.get("a").unwrap();
        let mut sink = CollectSink::default();
        for i in 0..20u32 {
            engine.process(
                StreamTuple::insert(Timestamp(i as i64), VertexId(i), VertexId(i + 1), a),
                &mut sink,
            );
        }
        // Old chain prefixes must have been expired.
        let size = engine.index_size();
        assert!(size.nodes < 20 * 20, "index did not shrink: {size:?}");
        // Process far-future tuple: everything old expires.
        engine.process(
            StreamTuple::insert(Timestamp(1000), VertexId(100), VertexId(101), a),
            &mut sink,
        );
        engine.expire_now(&mut sink);
        let size = engine.index_size();
        assert!(size.nodes <= 3, "stale nodes linger: {size:?}");
        engine.delta.validate().unwrap();
    }

    #[test]
    fn duplicate_results_are_deduplicated() {
        let mut labels = LabelInterner::new();
        let query = CompiledQuery::compile("a", &mut labels).unwrap();
        let config = EngineConfig::with_window(WindowPolicy::new(100, 1));
        let mut engine = RapqEngine::new(query, config);
        let a = labels.get("a").unwrap();
        let mut sink = CollectSink::default();
        let t = StreamTuple::insert(Timestamp(1), VertexId(0), VertexId(1), a);
        engine.process(t, &mut sink);
        let t2 = StreamTuple::insert(Timestamp(2), VertexId(0), VertexId(1), a);
        engine.process(t2, &mut sink);
        assert_eq!(sink.emitted().len(), 1);
        assert_eq!(engine.stats().results_emitted, 1);
    }

    #[test]
    fn refresh_policies_agree_on_results() {
        // All three refresh policies must produce the same result set on
        // the Figure 1 stream (they only differ in tree bookkeeping).
        let mut all_pairs = Vec::new();
        for policy in [
            RefreshPolicy::None,
            RefreshPolicy::Node,
            RefreshPolicy::Subtree,
        ] {
            let mut f = fig1_engine(policy, 1);
            let mut sink = CollectSink::default();
            for t in fig1_stream(&f, 19) {
                f.engine.process(t, &mut sink);
            }
            f.engine.delta.validate().unwrap();
            let mut pairs: Vec<_> = sink.pairs().into_iter().collect();
            pairs.sort_unstable();
            all_pairs.push(pairs);
        }
        assert_eq!(all_pairs[0], all_pairs[1]);
        assert_eq!(all_pairs[1], all_pairs[2]);
    }

    #[test]
    fn self_loop_accepting_path() {
        let mut labels = LabelInterner::new();
        let query = CompiledQuery::compile("a+", &mut labels).unwrap();
        let config = EngineConfig::with_window(WindowPolicy::new(100, 1));
        let mut engine = RapqEngine::new(query, config);
        let a = labels.get("a").unwrap();
        let mut sink = CollectSink::default();
        engine.process(
            StreamTuple::insert(Timestamp(1), VertexId(0), VertexId(0), a),
            &mut sink,
        );
        assert!(engine.has_result(ResultPair::new(VertexId(0), VertexId(0))));
    }
}
