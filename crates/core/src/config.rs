//! Engine configuration knobs.

use srpq_graph::WindowPolicy;

/// How Algorithm RAPQ treats a Δ node that is re-reached through a path
/// with a *fresher* timestamp (line 7 of Algorithm RAPQ).
///
/// The paper's pseudocode updates the node's parent pointer and
/// timestamp without re-expanding its subtree; its worked example
/// (Figure 2a) shows the node untouched, relying on expiry-time
/// reconnection instead. Both are correct — stale timestamps are lower
/// bounds that `ExpiryRAPQ` self-heals — so we expose all three points
/// of the design space as an ablation (`ablation_refresh` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshPolicy {
    /// Never refresh: matches Figure 2(a); maximum expiry work.
    None,
    /// Refresh the re-reached node only (parent pointer + timestamp):
    /// matches the pseudocode of Algorithm RAPQ / Insert. Default.
    #[default]
    Node,
    /// Refresh the node and propagate improved timestamps through its
    /// subtree eagerly: minimum expiry work, extra per-tuple work.
    Subtree,
}

/// Tunables shared by the RAPQ and RSPQ engines.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Sliding-window size and slide interval.
    pub window: WindowPolicy,
    /// Deduplicate the result stream: each `(x, y)` pair is emitted at
    /// most once until it is invalidated (implicit windows make results
    /// monotonic, so re-derivations carry no information). Default true.
    pub dedup_results: bool,
    /// Report invalidations for results whose last witness path was
    /// destroyed by an explicit deletion (§3.2). Default true.
    pub report_invalidations: bool,
    /// Timestamp-refresh behaviour on re-reached nodes (RAPQ only).
    pub refresh: RefreshPolicy,
    /// RSPQ safety valve: maximum `Extend` invocations a single tuple
    /// may trigger before the traversal is aborted (conflicted
    /// instances are worst-case exponential, and one tuple can run
    /// unboundedly long). `None` (default) means unlimited. When the
    /// budget trips, processing of that tuple stops — results may be
    /// incomplete — and `EngineStats::budget_exhausted` is bumped so
    /// callers can flag the run.
    pub rspq_extend_budget: Option<u64>,
    /// Multi-query sharing: when true (default), registrations whose
    /// automata have equal canonical signatures attach to one shared
    /// evaluation group (one Δ forest, one emitted-set) and emissions
    /// are fanned out per subscriber. When false every registration
    /// founds a private group — the unshared baseline the equivalence
    /// suite and the `mqo_scaling` bench compare against. Per-subscriber
    /// event streams are byte-identical either way.
    pub shared_groups: bool,
}

impl EngineConfig {
    /// Configuration with the given window and paper-default behaviour.
    pub fn with_window(window: WindowPolicy) -> Self {
        EngineConfig {
            window,
            ..Default::default()
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            window: WindowPolicy::default(),
            dedup_results: true,
            report_invalidations: true,
            refresh: RefreshPolicy::Node,
            rspq_extend_budget: None,
            shared_groups: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_behaviour() {
        let c = EngineConfig::default();
        assert!(c.dedup_results);
        assert!(c.report_invalidations);
        assert_eq!(c.refresh, RefreshPolicy::Node);
    }

    #[test]
    fn with_window_preserves_defaults() {
        let c = EngineConfig::with_window(WindowPolicy::new(100, 10));
        assert_eq!(c.window.window_size, 100);
        assert_eq!(c.window.slide, 10);
        assert!(c.dedup_results);
    }
}
