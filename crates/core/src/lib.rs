//! Persistent Regular Path Query evaluation over streaming graphs.
//!
//! This crate implements the algorithms of *Regular Path Query Evaluation
//! on Streaming Graphs* (Pacaci, Bonifati, Özsu — SIGMOD 2020):
//!
//! * [`rapq::RapqEngine`] — incremental RPQ evaluation under **arbitrary
//!   path semantics** (§3): Algorithm RAPQ with the Δ spanning-tree
//!   index, `Insert`, lazy `ExpiryRAPQ`, and `Delete` for explicit
//!   deletions via negative tuples.
//! * [`rspq::RspqEngine`] — incremental RPQ evaluation under **simple
//!   path semantics** (§4): Algorithm RSPQ with markings, conflict
//!   detection through suffix-language containment, `Extend`, `Unmark`,
//!   and `ExpiryRSPQ`.
//! * [`engine::Engine`] — a uniform front-end over both, driving the
//!   sliding-window policy (eager evaluation, lazy expiry) and the
//!   result stream.
//!
//! # Quick start
//!
//! ```
//! use srpq_common::{LabelInterner, StreamTuple, Timestamp, VertexInterner};
//! use srpq_core::engine::{Engine, PathSemantics};
//! use srpq_core::sink::CollectSink;
//! use srpq_graph::WindowPolicy;
//!
//! let mut labels = LabelInterner::new();
//! let mut verts = VertexInterner::new();
//! let follows = labels.intern("follows");
//! let mentions = labels.intern("mentions");
//!
//! // Q1 of Figure 1: (follows ◦ mentions)+ over a 15-unit window.
//! let mut engine = Engine::from_str(
//!     "(follows mentions)+",
//!     &mut labels,
//!     WindowPolicy::new(15, 1),
//!     PathSemantics::Arbitrary,
//! )
//! .unwrap();
//!
//! let (x, y, u) = (verts.intern("x"), verts.intern("y"), verts.intern("u"));
//! let mut sink = CollectSink::default();
//! engine.process(StreamTuple::insert(Timestamp(1), x, y, follows), &mut sink);
//! engine.process(StreamTuple::insert(Timestamp(2), y, u, mentions), &mut sink);
//! assert_eq!(sink.pairs().len(), 1); // (x, u)
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bitset;
pub mod config;
pub mod delta;
pub mod engine;
pub mod multi;
pub mod parallel;
pub mod parallel_multi;
pub mod rapq;
pub mod reorder;
pub mod rspq;
pub mod sink;
pub mod stats;

pub use config::EngineConfig;
pub use engine::{Engine, PathSemantics};
pub use multi::{
    MultiCollectSink, MultiQueryEngine, MultiSink, NullMultiSink, QueryError, QueryId,
};
pub use parallel::ParallelRapqEngine;
pub use parallel_multi::ParallelMultiEngine;
pub use reorder::ReorderBuffer;
pub use sink::{CollectSink, CountSink, NullSink, ResultSink};
pub use stats::{DeltaProfile, EngineStats, IndexSize, StageTotals};
