//! Inter-query parallel evaluation: a [`MultiQueryEngine`] whose
//! per-group work fans out over a long-lived worker pool (§5.1 of the
//! paper, lifted from trees-within-one-query to queries-within-one-host).
//!
//! The unit of parallelism is the **shared evaluation group** (see
//! [`crate::multi`]): language-equivalent registrations share one Δ
//! forest, one emitted-pair set, and one statistics block, so the group
//! — not the registration slot — is the thing that must never be
//! touched by two threads. [`ParallelMultiEngine`] hash-partitions live
//! groups over `n_workers` long-lived threads (group id modulo worker
//! count, re-derived every batch, so registration changes rebalance
//! automatically) and processes each caller batch as a sequence of
//! **micro-batches** in two phases:
//!
//! 1. **Plan + apply** (single-threaded): the batch is cut at slide
//!    boundaries, explicit deletions, and timestamp-changing edge
//!    refreshes; the coordinator then purges the shared graph at each
//!    crossed boundary and applies the micro-batch's inserts once,
//!    stamping every *new* edge with its batch position
//!    ([`WindowGraph::insert_visible_from`]).
//! 2. **Extend/expire** (parallel): each worker receives its groups'
//!    engines plus an `Arc` of the (now read-only) graph and drives the
//!    engines' read-only traversal path
//!    ([`Engine::extend_with_graph`]) tuple by tuple. A [`Visibility`]
//!    horizon per tuple hides in-batch edges a sequential per-tuple run
//!    would not have seen yet — and makes each group's slide-expiry run
//!    against the pre-mutation graph, exactly like the sequential
//!    engine — so each group computes *exactly* what it would under
//!    [`MultiQueryEngine`].
//!
//! Per-worker outboxes are then merged in deterministic
//! `(arrival position, group)` order and each group's event run is
//! fanned out to its subscribers in ascending slot order — the same
//! order the sequential engine's fan-out stage uses — so the tagged
//! event stream is **byte-identical** to [`MultiQueryEngine`] (pinned
//! by `tests/parallel_equivalence.rs`, including mid-stream
//! `register_backfilled`/`deregister`).
//!
//! # Panic safety
//!
//! A panic in a worker (or in the caller's sink during the merge)
//! leaves the engine **poisoned**: every subsequent call panics with a
//! poisoned-engine message instead of silently computing on
//! half-applied state. Rebuild the engine after catching an unwind.
//!
//! The two-phase plan-then-execute shape mirrors deterministic batch
//! execution in BOHM (Faleiro & Abadi, VLDB 2015); because recovery
//! replay funnels through [`ParallelMultiEngine::process_batch`], WAL
//! replay after a crash is parallel per group for free, as in
//! multicore fast failure recovery (Wu et al.).

use crate::bitset::DenseBitSet;
use crate::config::EngineConfig;
use crate::engine::{Engine, PathSemantics};
#[cfg(doc)]
use crate::multi::MultiQueryEngine;
use crate::multi::{semantics_tag, MultiSink, QueryError, QueryId, TagSink};
use crate::sink::ResultSink;
use crate::stats::{EngineStats, IndexSize, StageTotals};
use srpq_automata::{CompiledQuery, DfaSignature};
use srpq_common::{FxHashMap, Label, Op, ResultPair, StreamTuple, Timestamp};
use srpq_graph::{Visibility, WindowGraph, WindowPolicy};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One registration slot: the subscriber's name and the evaluation
/// group it rides (mirrors `MultiQueryEngine`'s).
struct Slot {
    name: String,
    group: u32,
}

/// One shared evaluation group (engines travel to worker threads and
/// back every micro-batch; the subscriber tags ride along so the
/// registry entry is whole wherever it is).
struct ParGroup {
    engine: Engine,
    /// Live subscriber slots, ascending.
    subscribers: Vec<u32>,
    /// Whether the group's Δ forest covers the whole current window
    /// (see `crate::multi`: only complete groups are signature-indexed
    /// and joinable).
    complete: bool,
    /// The canonical signature of the group's automaton.
    signature: DfaSignature,
}

/// One untagged result event staged in a worker outbox, keyed for the
/// deterministic merge. Fan-out to subscriber tags happens on the
/// coordinator, after the merge.
struct Ev {
    /// Arrival position within the micro-batch (`u32::MAX` groups the
    /// events of an explicit expiry pass, which has no driving tuple).
    pos: u32,
    group: u32,
    invalidated: bool,
    pair: ResultPair,
    ts: Timestamp,
}

/// Buffers one group engine's events under a fixed `(pos, group)` key.
struct EvSink<'a> {
    events: &'a mut Vec<Ev>,
    pos: u32,
    group: u32,
}

impl ResultSink for EvSink<'_> {
    fn emit(&mut self, pair: ResultPair, ts: Timestamp) {
        self.events.push(Ev {
            pos: self.pos,
            group: self.group,
            invalidated: false,
            pair,
            ts,
        });
    }

    fn invalidate(&mut self, pair: ResultPair, ts: Timestamp) {
        self.events.push(Ev {
            pos: self.pos,
            group: self.group,
            invalidated: true,
            pair,
            ts,
        });
    }
}

/// Work shipped to a worker thread for one micro-batch.
enum Job {
    /// Extend/expire the shipped groups over the micro-batch.
    Batch {
        graph: Arc<WindowGraph>,
        tuples: Arc<Vec<StreamTuple>>,
        groups: Vec<(u32, ParGroup)>,
    },
    /// Run an explicit eager expiry pass over the shipped groups.
    Expire {
        graph: Arc<WindowGraph>,
        groups: Vec<(u32, ParGroup)>,
    },
}

/// A worker's reply: the groups (with their Δ forests mutated) and the
/// events they produced, in `(pos, own-groups-ascending)` order, plus
/// the job's evaluation/expiry wall-clock so the coordinator can keep
/// honest per-worker totals (mirroring every `eval_ns` increment the
/// job applied to per-group stats).
struct JobOut {
    groups: Vec<(u32, ParGroup)>,
    events: Vec<Ev>,
    eval_ns: u64,
    expiry_ns: u64,
}

struct Worker {
    jobs: Option<Sender<Job>>,
    results: Receiver<JobOut>,
    handle: Option<JoinHandle<()>>,
    /// Stage beacon published by the worker thread (sampling profiler).
    beacon: Arc<srpq_common::StageBeacon>,
}

fn worker_loop(
    jobs: Receiver<Job>,
    results: Sender<JobOut>,
    beacon: Arc<srpq_common::StageBeacon>,
) {
    use srpq_common::beacon::stage;
    while let Ok(job) = jobs.recv() {
        let out = match job {
            Job::Batch {
                graph,
                tuples,
                mut groups,
            } => {
                beacon.set(stage::EXTEND);
                let mut events = Vec::new();
                let mut eval_ns = 0u64;
                let mut expiry_ns = 0u64;
                for (pos, t) in tuples.iter().enumerate() {
                    for (gi, grp) in groups.iter_mut() {
                        // Label routing, per group: alphabet membership
                        // is exactly the routing-table criterion.
                        if !grp.engine.query().dfa().knows_label(t.label) {
                            continue;
                        }
                        let expiry0 = grp.engine.stats().expiry_nanos;
                        let t0 = std::time::Instant::now();
                        let mut sink = EvSink {
                            events: &mut events,
                            pos: pos as u32,
                            group: *gi,
                        };
                        // `extend` = advance at `upto(pos).before()` —
                        // slide-expiry against the pre-mutation graph,
                        // as the sequential engine runs it — then
                        // dispatch at `upto(pos)`, which admits the
                        // tuple's own edge.
                        grp.engine
                            .extend_with_graph(&graph, Visibility::upto(pos), *t, &mut sink);
                        let elapsed = t0.elapsed().as_nanos() as u64;
                        let stats = grp.engine.stats_mut();
                        stats.tuples_routed += 1;
                        stats.eval_ns += elapsed;
                        eval_ns += elapsed;
                        expiry_ns += stats.expiry_nanos - expiry0;
                    }
                }
                // Release the graph before replying: the coordinator
                // regains exclusive `Arc` access once every worker has
                // answered.
                drop(graph);
                drop(tuples);
                JobOut {
                    groups,
                    events,
                    eval_ns,
                    expiry_ns,
                }
            }
            Job::Expire { graph, mut groups } => {
                beacon.set(stage::EXPIRY);
                let mut events = Vec::new();
                let mut eval_ns = 0u64;
                let mut expiry_ns = 0u64;
                for (gi, grp) in groups.iter_mut() {
                    let expiry0 = grp.engine.stats().expiry_nanos;
                    let t0 = std::time::Instant::now();
                    let mut sink = EvSink {
                        events: &mut events,
                        pos: u32::MAX,
                        group: *gi,
                    };
                    grp.engine
                        .expire_delta_with_graph(&graph, Visibility::ALL, &mut sink);
                    let elapsed = t0.elapsed().as_nanos() as u64;
                    let stats = grp.engine.stats_mut();
                    stats.eval_ns += elapsed;
                    eval_ns += elapsed;
                    expiry_ns += stats.expiry_nanos - expiry0;
                }
                drop(graph);
                JobOut {
                    groups,
                    events,
                    eval_ns,
                    expiry_ns,
                }
            }
        };
        beacon.set(stage::HANDOFF);
        let sent = results.send(out);
        beacon.set(stage::IDLE);
        beacon.advance();
        if sent.is_err() {
            return; // coordinator gone
        }
    }
    beacon.set(stage::IDLE);
}

/// A multi-query engine whose evaluation stage scales across worker
/// threads (see the module docs). API-compatible with
/// [`MultiQueryEngine`]; the event stream is byte-identical.
pub struct ParallelMultiEngine {
    config: EngineConfig,
    window: WindowPolicy,
    /// The shared window graph. Workers hold clones only while a
    /// micro-batch is in flight; between batches the coordinator has
    /// exclusive access (`Arc::get_mut`).
    graph: Arc<WindowGraph>,
    /// Registration slots; `None` marks a deregistered query. Slot
    /// indexes are query ids and are never reused.
    slots: Vec<Option<Slot>>,
    /// Evaluation groups; `None` marks a freed group (or one currently
    /// shipped to a worker, mid-batch).
    groups: Vec<Option<ParGroup>>,
    /// Freed group ids, reused LIFO.
    free_groups: Vec<u32>,
    /// `(signature, semantics)` → joinable group. Only complete groups
    /// under `config.shared_groups` are indexed.
    sig_index: FxHashMap<(DfaSignature, u8), u32>,
    /// Live query name → slot (O(1) name lookups).
    by_name: FxHashMap<String, u32>,
    /// label → set of group ids whose alphabet contains it.
    routing: FxHashMap<Label, DenseBitSet>,
    now: Timestamp,
    tuples_seen: u64,
    tuples_routed: u64,
    pool: Vec<Worker>,
    /// Per-group `(src, dst, label) → ts` planning map (retained
    /// scratch).
    group_edges: FxHashMap<(u32, u32, u32), Timestamp>,
    /// Retained merge buffer.
    events_scratch: Vec<Ev>,
    /// Reusable routing-target buffer (singleton path).
    route_scratch: Vec<u32>,
    /// Reusable `(slot, run start, run end)` fan-out schedule per
    /// merged position segment.
    fan_scratch: Vec<(u32, usize, usize)>,
    poisoned: bool,
    /// Per-worker `(eval_ns, expiry_ns)` totals, index-aligned with
    /// `pool` (see [`Self::worker_totals`]).
    worker_ns: Vec<(u64, u64)>,
    /// Evaluation/expiry time spent inline on the coordinator
    /// (singleton stage A, backfill replay).
    coord_ns: (u64, u64),
    /// Worker-wait time of the batch in flight (reset per batch; what
    /// the coordinator spends blocked on worker replies, excluded from
    /// `route_ns`).
    wait_scratch_ns: u64,
    /// Cumulative batch counters (see [`Self::stage_totals`]).
    stage: StageTotals,
    /// Optional coordinator-thread stage beacon (see
    /// [`Self::set_beacon`]).
    beacon: Option<Arc<srpq_common::StageBeacon>>,
}

impl ParallelMultiEngine {
    /// Creates an empty engine over `window` with `n_workers` threads
    /// and paper-default per-query configuration (sharing enabled).
    pub fn new(window: WindowPolicy, n_workers: usize) -> ParallelMultiEngine {
        Self::with_config(EngineConfig::with_window(window), n_workers)
    }

    /// Creates an empty engine whose registered queries all share
    /// `config`, evaluated over `n_workers` long-lived threads.
    pub fn with_config(config: EngineConfig, n_workers: usize) -> ParallelMultiEngine {
        ParallelMultiEngine {
            config,
            window: config.window,
            graph: Arc::new(WindowGraph::new()),
            slots: Vec::new(),
            groups: Vec::new(),
            free_groups: Vec::new(),
            sig_index: FxHashMap::default(),
            by_name: FxHashMap::default(),
            routing: FxHashMap::default(),
            now: Timestamp::NEG_INFINITY,
            tuples_seen: 0,
            tuples_routed: 0,
            pool: spawn_pool(n_workers.max(1)),
            group_edges: FxHashMap::default(),
            events_scratch: Vec::new(),
            route_scratch: Vec::new(),
            fan_scratch: Vec::new(),
            poisoned: false,
            worker_ns: vec![(0, 0); n_workers.max(1)],
            coord_ns: (0, 0),
            wait_scratch_ns: 0,
            stage: StageTotals::default(),
            beacon: None,
        }
    }

    /// Attaches a coordinator-thread stage beacon (mirrors
    /// [`MultiQueryEngine::set_beacon`]): the batch path publishes
    /// route/expiry stages through relaxed atomic stores for the
    /// sampling profiler. Worker threads publish their own beacons —
    /// see [`Self::worker_beacons`].
    pub fn set_beacon(&mut self, beacon: Arc<srpq_common::StageBeacon>) {
        self.beacon = Some(beacon);
    }

    /// The per-worker stage beacons, index-aligned with the pool
    /// (thread `srpq-multi-worker-{i}`). Refreshed by
    /// [`Self::resize_workers`] — re-fetch after a resize.
    pub fn worker_beacons(&self) -> Vec<Arc<srpq_common::StageBeacon>> {
        self.pool.iter().map(|w| Arc::clone(&w.beacon)).collect()
    }

    /// Per-worker `(eval_ns, expiry_ns)` totals: the wall-clock each
    /// worker thread spent inside per-group evaluation calls, and the
    /// expiry slice thereof. Together with [`Self::coord_totals`] this
    /// partitions the cluster's evaluation time by the thread that
    /// actually spent it: summing `eval_ns` over the *group* engines
    /// equals worker totals plus coordinator totals (while no group has
    /// been freed — dropping a group drops its side of the ledger).
    pub fn worker_totals(&self) -> &[(u64, u64)] {
        &self.worker_ns
    }

    /// `(eval_ns, expiry_ns)` spent inline on the coordinator thread
    /// (mutating-singleton stage A and backfill replay).
    pub fn coord_totals(&self) -> (u64, u64) {
        self.coord_ns
    }

    /// Cumulative stage timings of the batch path. `route_ns` is
    /// coordinator-exclusive time (planning, graph application, merge —
    /// worker-wait excluded); `eval_ns`/`expiry_ns` are derived from
    /// the per-worker and coordinator ledgers, so they keep counting
    /// evaluation wall-clock even when workers overlap.
    pub fn stage_totals(&self) -> StageTotals {
        let mut totals = self.stage;
        totals.eval_ns = self.coord_ns.0 + self.worker_ns.iter().map(|w| w.0).sum::<u64>();
        totals.expiry_ns = self.coord_ns.1 + self.worker_ns.iter().map(|w| w.1).sum::<u64>();
        totals
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.pool.len()
    }

    /// Replaces the worker pool with `n_workers` fresh threads. Cheap
    /// and safe at any point between batches: workers hold no query
    /// state (groups live in the coordinator and only travel out per
    /// micro-batch), so the partition re-derives itself on the next
    /// batch.
    pub fn resize_workers(&mut self, n_workers: usize) {
        self.assert_usable();
        shutdown_pool(&mut self.pool);
        self.pool = spawn_pool(n_workers.max(1));
        // The outgoing pool's evaluation ledger folds into the
        // coordinator's, conserving total attributed time across the
        // resize; the new workers start from zero.
        for &(eval, expiry) in &self.worker_ns {
            self.coord_ns.0 += eval;
            self.coord_ns.1 += expiry;
        }
        self.worker_ns = vec![(0, 0); self.pool.len()];
    }

    fn assert_usable(&self) {
        assert!(
            !self.poisoned,
            "ParallelMultiEngine is poisoned: a previous batch panicked \
             (worker or sink) and engine state may be half-applied; \
             rebuild the engine instead of reusing it"
        );
    }

    /// Allocates a group for `query` (free-listed id, routing bits,
    /// fresh engine). The caller decides whether to signature-index it.
    fn alloc_group(
        &mut self,
        query: CompiledQuery,
        semantics: PathSemantics,
        complete: bool,
    ) -> u32 {
        let signature = query.signature();
        let g = match self.free_groups.pop() {
            Some(g) => g,
            None => {
                self.groups.push(None);
                (self.groups.len() - 1) as u32
            }
        };
        for &label in query.dfa().alphabet() {
            self.routing.entry(label).or_default().insert(g);
        }
        self.groups[g as usize] = Some(ParGroup {
            engine: Engine::new(query, self.config, semantics),
            subscribers: Vec::new(),
            complete,
            signature,
        });
        g
    }

    /// Frees group `g`: unthreads its routing bits, drops its signature
    /// index entry if it owns one, and recycles the id (mirrors
    /// `MultiQueryEngine`).
    fn free_group(&mut self, g: u32) {
        let grp = self.groups[g as usize]
            .take()
            .expect("freeing a live group");
        for &label in grp.engine.query().dfa().alphabet() {
            if let Some(set) = self.routing.get_mut(&label) {
                set.remove(g);
                if set.is_empty() {
                    self.routing.remove(&label);
                }
            }
        }
        let key = (grp.signature, semantics_tag(grp.engine.semantics()));
        if self.sig_index.get(&key) == Some(&g) {
            self.sig_index.remove(&key);
        }
        self.free_groups.push(g);
    }

    /// Appends a slot subscribed to group `g` under `name`.
    fn attach(&mut self, name: String, g: u32) -> QueryId {
        let id = QueryId(self.slots.len() as u32);
        self.by_name.insert(name.clone(), id.0);
        self.slots.push(Some(Slot { name, group: g }));
        self.groups[g as usize]
            .as_mut()
            .expect("attaching to a live group")
            .subscribers
            .push(id.0);
        id
    }

    /// Registers a query (see [`MultiQueryEngine::register`]): at
    /// stream start under [`EngineConfig::shared_groups`], a
    /// language-equivalent registration joins the existing shared
    /// group; mid-stream plain registrations found private groups.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        query: CompiledQuery,
        semantics: PathSemantics,
    ) -> Result<QueryId, QueryError> {
        self.assert_usable();
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(QueryError::DuplicateName(name));
        }
        let at_start = self.now == Timestamp::NEG_INFINITY;
        let g = if self.config.shared_groups && at_start {
            let key = (query.signature(), semantics_tag(semantics));
            match self.sig_index.get(&key) {
                Some(&g) => g,
                None => {
                    let g = self.alloc_group(query, semantics, true);
                    self.sig_index.insert(key, g);
                    g
                }
            }
        } else {
            self.alloc_group(query, semantics, at_start)
        };
        Ok(self.attach(name, g))
    }

    /// Registers a query and backfills it from the live window content
    /// (see [`MultiQueryEngine::register_backfilled`], including its
    /// coverage caveat). Joining an existing complete group replays
    /// only the backfill *events* through a throwaway scratch engine —
    /// the shared forest is untouched. The replay is single-threaded —
    /// registration is a control-plane operation — and produces the
    /// exact sequential event stream.
    pub fn register_backfilled<S: MultiSink>(
        &mut self,
        name: impl Into<String>,
        query: CompiledQuery,
        semantics: PathSemantics,
        sink: &mut S,
    ) -> Result<QueryId, QueryError> {
        self.assert_usable();
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(QueryError::DuplicateName(name));
        }
        if self.now == Timestamp::NEG_INFINITY {
            // Nothing to replay yet — identical to plain registration
            // (and joinable under sharing).
            return self.register(name, query, semantics);
        }
        let wm = self.window.watermark(self.now);
        let mut replay = {
            let graph = Arc::get_mut(&mut self.graph).expect("workers idle between batches");
            graph.edges(wm)
        };
        replay.sort_by_key(|&(.., ts)| ts);

        if self.config.shared_groups {
            let key = (query.signature(), semantics_tag(semantics));
            if let Some(&g) = self.sig_index.get(&key) {
                // Join: the shared forest already covers the window.
                // Replay through a scratch engine for the backfill
                // events only (graph mutations are idempotent
                // re-inserts at identical timestamps).
                let id = self.attach(name, g);
                let mut scratch = Engine::new(query, self.config, semantics);
                let mut tagged = TagSink { id, inner: sink };
                let t0 = std::time::Instant::now();
                {
                    let graph =
                        Arc::get_mut(&mut self.graph).expect("workers idle between batches");
                    for (u, v, label, ts) in replay {
                        scratch.process_with_graph(
                            graph,
                            StreamTuple::insert(ts, u, v, label),
                            &mut tagged,
                        );
                    }
                }
                let elapsed = t0.elapsed().as_nanos() as u64;
                self.groups[g as usize]
                    .as_mut()
                    .expect("joined group is live")
                    .engine
                    .stats_mut()
                    .eval_ns += elapsed;
                self.coord_ns.0 += elapsed;
                return Ok(id);
            }
            let g = self.alloc_group(query, semantics, true);
            self.sig_index.insert(key, g);
            return Ok(self.replay_into(name, g, replay, sink));
        }
        let g = self.alloc_group(query, semantics, true);
        Ok(self.replay_into(name, g, replay, sink))
    }

    /// Attaches `name` to freshly founded group `g` and replays the
    /// window content into its engine.
    fn replay_into<S: MultiSink>(
        &mut self,
        name: String,
        g: u32,
        replay: Vec<(
            srpq_common::VertexId,
            srpq_common::VertexId,
            Label,
            Timestamp,
        )>,
        sink: &mut S,
    ) -> QueryId {
        let id = self.attach(name, g);
        let grp = self.groups[g as usize].as_mut().expect("just founded");
        let graph = Arc::get_mut(&mut self.graph).expect("workers idle between batches");
        let mut tagged = TagSink { id, inner: sink };
        let expiry0 = grp.engine.stats().expiry_nanos;
        let t0 = std::time::Instant::now();
        for (u, v, label, ts) in replay {
            grp.engine
                .process_with_graph(graph, StreamTuple::insert(ts, u, v, label), &mut tagged);
        }
        // Attribute the replay to the group's evaluation time (as the
        // sequential engine does) and to the coordinator's ledger.
        let elapsed = t0.elapsed().as_nanos() as u64;
        let stats = grp.engine.stats_mut();
        stats.eval_ns += elapsed;
        self.coord_ns.0 += elapsed;
        self.coord_ns.1 += stats.expiry_nanos - expiry0;
        id
    }

    /// Deregisters query `id` (see [`MultiQueryEngine::deregister`]):
    /// the group's engine is dropped only when the last subscriber
    /// leaves.
    pub fn deregister(&mut self, id: QueryId) -> Result<(), QueryError> {
        self.assert_usable();
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .ok_or(QueryError::UnknownQuery(id))?;
        let s = slot.take().ok_or(QueryError::UnknownQuery(id))?;
        self.by_name.remove(&s.name);
        let grp = self.groups[s.group as usize]
            .as_mut()
            .expect("slot points at a live group");
        grp.subscribers.retain(|&qi| qi != id.0);
        if grp.subscribers.is_empty() {
            self.free_group(s.group);
        }
        Ok(())
    }

    /// Processes one tuple (a singleton batch; prefer
    /// [`Self::process_batch`] — per-tuple fan-out cannot amortize the
    /// worker hand-off).
    pub fn process<S: MultiSink>(&mut self, tuple: StreamTuple, sink: &mut S) {
        self.process_batch(std::slice::from_ref(&tuple), sink);
    }

    /// Processes a batch: split into micro-batches (cut at slide
    /// boundaries, deletions, and timestamp-changing refreshes), each
    /// run in the two-phase parallel scheme. The tagged event stream
    /// delivered to `sink` is byte-identical to
    /// [`MultiQueryEngine::process_batch`] over the same tuples.
    ///
    /// A panic from a worker or from `sink` poisons the engine: any
    /// later call panics instead of computing on half-applied state.
    pub fn process_batch<S: MultiSink>(&mut self, batch: &[StreamTuple], sink: &mut S) {
        self.assert_usable();
        if batch.is_empty() {
            return;
        }
        self.poisoned = true; // cleared on orderly completion
        if let Some(b) = &self.beacon {
            b.set(srpq_common::beacon::stage::ROUTE);
        }
        let t_batch = std::time::Instant::now();
        self.wait_scratch_ns = 0;
        let mut i = 0;
        while i < batch.len() {
            let (len, two_stage) = self.plan_group(&batch[i..]);
            if two_stage {
                debug_assert_eq!(len, 1);
                self.run_singleton(batch[i], sink);
            } else {
                self.run_group(&batch[i..i + len], sink);
            }
            i += len;
        }
        self.poisoned = false;
        // Coordinator-exclusive routing time: planning, graph
        // application, and merge — the blocked-on-workers span (whose
        // time the worker ledgers own) subtracted out.
        let total = t_batch.elapsed().as_nanos() as u64;
        self.stage.batches += 1;
        self.stage.route_ns += total.saturating_sub(self.wait_scratch_ns);
        if let Some(b) = &self.beacon {
            b.set(srpq_common::beacon::stage::IDLE);
            b.advance();
        }
    }

    /// Forces an expiry pass for every live group (and a shared graph
    /// purge) at the current eager watermark, in parallel. Event order
    /// matches [`MultiQueryEngine::expire_now`] (subscriber slots
    /// ascending).
    pub fn expire_now<S: MultiSink>(&mut self, sink: &mut S) {
        self.assert_usable();
        self.poisoned = true;
        if let Some(b) = &self.beacon {
            b.set(srpq_common::beacon::stage::EXPIRY);
        }
        Arc::get_mut(&mut self.graph)
            .expect("workers idle between batches")
            .purge_expired(self.window.watermark(self.now));
        let n = self.pool.len();
        let mut pending = Vec::new();
        for w in 0..n {
            let groups = self.take_partition(w, n);
            if groups.is_empty() {
                continue;
            }
            self.pool[w]
                .jobs
                .as_ref()
                .expect("pool is live")
                .send(Job::Expire {
                    graph: self.graph.clone(),
                    groups,
                })
                .expect("worker thread alive");
            pending.push(w);
        }
        let events = std::mem::take(&mut self.events_scratch);
        self.collect_and_emit(pending, events, sink);
        self.poisoned = false;
        if let Some(b) = &self.beacon {
            b.set(srpq_common::beacon::stage::IDLE);
            b.advance();
        }
    }

    /// Cuts the leading micro-batch out of `rest`: within one slide
    /// interval, stopping before any graph mutation a batched traversal
    /// must not see early — explicit deletions and timestamp-*changing*
    /// refreshes of existing edges (phase 1 applying them up front
    /// would retroactively change what earlier positions observe).
    /// Those run alone through the two-stage [`Self::run_singleton`]
    /// path (`true` in the return), which sequences every routed
    /// group's slide-expiry *before* the mutation, as the sequential
    /// engine does.
    fn plan_group(&mut self, rest: &[StreamTuple]) -> (usize, bool) {
        let t0 = &rest[0];
        if self.routing.contains_key(&t0.label) {
            let mutating = t0.op == Op::Delete
                || matches!(
                    self.graph.edge_ts(t0.edge.src, t0.edge.dst, t0.label),
                    Some(ts0) if ts0 != t0.ts
                );
            if mutating {
                return (1, true);
            }
        }
        let (slide_len, _) = self.window.slide_group(self.now, rest, |t| t.ts);
        let mut edges = std::mem::take(&mut self.group_edges);
        edges.clear();
        let mut len = slide_len;
        for (j, t) in rest[..slide_len].iter().enumerate() {
            if !self.routing.contains_key(&t.label) {
                continue; // inert: touches neither graph nor engines
            }
            if t.op == Op::Delete {
                len = j.max(1);
                break;
            }
            let key = (t.edge.src.0, t.edge.dst.0, t.label.0);
            let existing = edges
                .get(&key)
                .copied()
                .or_else(|| self.graph.edge_ts(t.edge.src, t.edge.dst, t.label));
            match existing {
                Some(ts0) if ts0 != t.ts && j > 0 => {
                    len = j;
                    break;
                }
                _ => {
                    edges.insert(key, t.ts);
                }
            }
        }
        self.group_edges = edges;
        (len, false)
    }

    /// Runs one mutating singleton (explicit deletion or ts-changing
    /// refresh) in two stages, reproducing the sequential interleaving
    /// exactly: (A) **every** routed group advances its clock and runs
    /// any due slide-expiry against the **pre-mutation** graph, inline
    /// on the coordinator; the mutation is then applied; (B) the tuple
    /// fans out normally — the routed groups' expiry already ran (their
    /// clocks moved), so the workers' advance is a no-op and they only
    /// dispatch the tuple against the post-mutation graph, which is
    /// unstamped and therefore visible at every horizon.
    fn run_singleton<S: MultiSink>(&mut self, t: StreamTuple, sink: &mut S) {
        let entry_now = t.ts.max(self.now);
        let crossing =
            self.now != Timestamp::NEG_INFINITY && self.window.crosses_slide(self.now, entry_now);
        if crossing {
            Arc::get_mut(&mut self.graph)
                .expect("workers idle between batches")
                .purge_expired(self.window.lazy_watermark(entry_now));
        }
        self.tuples_seen += 1;
        let mut targets = std::mem::take(&mut self.route_scratch);
        targets.clear();
        if let Some(set) = self.routing.get(&t.label) {
            targets.extend(set.iter_ones());
        }
        debug_assert!(!targets.is_empty(), "planned as routed");

        // Stage A — pre-mutation advance for every routed group,
        // inline (ascending group order; events carry pos 0, and the
        // stable merge keeps them ahead of the same group's stage-B
        // events).
        let mut events = std::mem::take(&mut self.events_scratch);
        events.clear();
        for &g in &targets {
            let grp = self.groups[g as usize]
                .as_mut()
                .expect("routing targets are live");
            self.tuples_routed += grp.subscribers.len() as u64;
            let mut ev = EvSink {
                events: &mut events,
                pos: 0,
                group: g,
            };
            let expiry0 = grp.engine.stats().expiry_nanos;
            let t0 = std::time::Instant::now();
            grp.engine
                .advance_with_graph(&self.graph, Visibility::ALL, t.ts, &mut ev);
            let elapsed = t0.elapsed().as_nanos() as u64;
            let stats = grp.engine.stats_mut();
            stats.eval_ns += elapsed;
            self.coord_ns.0 += elapsed;
            self.coord_ns.1 += stats.expiry_nanos - expiry0;
        }

        // Apply the mutation.
        {
            let graph = Arc::get_mut(&mut self.graph).expect("workers idle between batches");
            match t.op {
                Op::Insert => {
                    graph.insert(t.edge.src, t.edge.dst, t.label, t.ts);
                }
                Op::Delete => {
                    graph.remove(t.edge.src, t.edge.dst, t.label);
                }
            }
        }
        if t.ts > self.now {
            self.now = t.ts;
        }
        self.route_scratch = targets;

        // Stage B — normal fan-out of the singleton (the mutation is
        // unstamped, so every visibility admits it; the routed groups'
        // clocks already advanced, so their expiry does not re-run).
        let pending = self.fan_out(&[t]);
        self.collect_and_emit(pending, events, sink);
    }

    /// Runs one insert-only micro-batch through the two-phase scheme.
    fn run_group<S: MultiSink>(&mut self, group: &[StreamTuple], sink: &mut S) {
        // Phase 1 — shared window maintenance and graph application,
        // once, single-threaded (exactly what `MultiQueryEngine` does
        // per slide group, with position stamps added).
        let entry_now = group[0].ts.max(self.now);
        let crossing =
            self.now != Timestamp::NEG_INFINITY && self.window.crosses_slide(self.now, entry_now);
        {
            let graph = Arc::get_mut(&mut self.graph).expect("workers idle between batches");
            if crossing {
                graph.purge_expired(self.window.lazy_watermark(entry_now));
            }
            for (pos, t) in group.iter().enumerate() {
                self.tuples_seen += 1;
                if t.ts > self.now {
                    self.now = t.ts;
                }
                let Some(set) = self.routing.get(&t.label) else {
                    continue;
                };
                for g in set.iter_ones() {
                    self.tuples_routed += self.groups[g as usize]
                        .as_ref()
                        .expect("routed groups are live")
                        .subscribers
                        .len() as u64;
                }
                debug_assert_eq!(t.op, Op::Insert, "mutating tuples run as singletons");
                graph.insert_visible_from(t.edge.src, t.edge.dst, t.label, t.ts, pos);
            }
        }

        // Phases 2 + 3 — fan out to the long-lived workers; collect,
        // merge deterministically, deliver.
        let pending = self.fan_out(group);
        let events = std::mem::take(&mut self.events_scratch);
        self.collect_and_emit(pending, events, sink);
    }

    /// Ships `group` plus each worker's group partition to the pool;
    /// returns the workers owed a reply.
    fn fan_out(&mut self, group: &[StreamTuple]) -> Vec<usize> {
        let n = self.pool.len();
        let tuples = Arc::new(group.to_vec());
        let mut pending = Vec::new();
        for w in 0..n {
            let groups = self.take_partition(w, n);
            if groups.is_empty() {
                continue;
            }
            self.pool[w]
                .jobs
                .as_ref()
                .expect("pool is live")
                .send(Job::Batch {
                    graph: self.graph.clone(),
                    tuples: tuples.clone(),
                    groups,
                })
                .expect("worker thread alive");
            pending.push(w);
        }
        pending
    }

    /// Takes worker `w`'s partition (`group id % n == w`, ascending)
    /// out of the registry for shipment — a shared Δ forest is owned by
    /// exactly one worker per batch.
    fn take_partition(&mut self, w: usize, n: usize) -> Vec<(u32, ParGroup)> {
        let mut out = Vec::new();
        let mut g = w;
        while g < self.groups.len() {
            if let Some(grp) = self.groups[g].take() {
                out.push((g as u32, grp));
            }
            g += n;
        }
        out
    }

    /// Receives every pending worker's reply, restores the groups,
    /// merges the outboxes in `(arrival, group)` order (appending to
    /// `events`, which may carry a singleton's stage-A events — the
    /// stable sort keeps them ahead of the same group's stage-B
    /// events), clears the batch's visibility stamps, and fans each
    /// group's event run out to its subscribers in ascending slot
    /// order — the sequential engine's fan-out order.
    fn collect_and_emit<S: MultiSink>(
        &mut self,
        pending: Vec<usize>,
        mut events: Vec<Ev>,
        sink: &mut S,
    ) {
        for w in pending {
            let t_wait = std::time::Instant::now();
            let Ok(out) = self.pool[w].results.recv() else {
                // The worker unwound mid-batch; its groups are gone and
                // `poisoned` stays set — surface it loudly.
                panic!("ParallelMultiEngine worker {w} panicked; engine is poisoned");
            };
            self.wait_scratch_ns += t_wait.elapsed().as_nanos() as u64;
            self.worker_ns[w].0 += out.eval_ns;
            self.worker_ns[w].1 += out.expiry_ns;
            for (g, grp) in out.groups {
                self.groups[g as usize] = Some(grp);
            }
            events.extend(out.events);
        }
        // Each worker's outbox is already (pos asc, own groups asc);
        // the stable sort is a k-way merge that preserves per-(pos,
        // group) generation order.
        events.sort_by_key(|e| (e.pos, e.group));
        Arc::get_mut(&mut self.graph)
            .expect("workers idle after collection")
            .clear_stamps();
        // Fan-out: within each position, the sequential engine emits
        // group buffers per subscriber in ascending *slot* order (a
        // group with several subscribers appears once per subscriber,
        // interleaved by slot) — reproduce that by scheduling each
        // group's contiguous event run under each of its subscribers.
        let mut fan = std::mem::take(&mut self.fan_scratch);
        let mut i = 0;
        while i < events.len() {
            let pos = events[i].pos;
            let mut seg_end = i;
            while seg_end < events.len() && events[seg_end].pos == pos {
                seg_end += 1;
            }
            fan.clear();
            let mut j = i;
            while j < seg_end {
                let g = events[j].group;
                let mut run_end = j + 1;
                while run_end < seg_end && events[run_end].group == g {
                    run_end += 1;
                }
                let subs = &self.groups[g as usize]
                    .as_ref()
                    .expect("groups restored before emit")
                    .subscribers;
                fan.extend(subs.iter().map(|&slot| (slot, j, run_end)));
                j = run_end;
            }
            fan.sort_unstable_by_key(|&(slot, ..)| slot);
            for &(slot, s, e) in &fan {
                for ev in &events[s..e] {
                    if ev.invalidated {
                        sink.invalidate(QueryId(slot), ev.pair, ev.ts);
                    } else {
                        sink.emit(QueryId(slot), ev.pair, ev.ts);
                    }
                }
            }
            i = seg_end;
        }
        events.clear();
        self.events_scratch = events;
        self.fan_scratch = fan;
    }

    // ---- registry accessors (mirror `MultiQueryEngine`) -------------

    fn slot(&self, id: QueryId) -> Option<&Slot> {
        self.slots.get(id.0 as usize).and_then(Option::as_ref)
    }

    fn group(&self, g: u32) -> Option<&ParGroup> {
        self.groups.get(g as usize).and_then(Option::as_ref)
    }

    fn group_for(&self, id: QueryId) -> Option<&ParGroup> {
        self.slot(id).and_then(|s| self.group(s.group))
    }

    /// Number of live (registered, not deregistered) queries.
    pub fn n_queries(&self) -> usize {
        self.slots.iter().filter(|q| q.is_some()).count()
    }

    /// Number of registration slots ever allocated (ids are
    /// `0..n_slots`; persistence support).
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of live evaluation groups — at most [`Self::n_queries`];
    /// the gap is the sharing win.
    pub fn groups_live(&self) -> usize {
        self.groups.iter().filter(|g| g.is_some()).count()
    }

    /// Number of group table entries, freed ones included (persistence
    /// support).
    pub fn n_group_slots(&self) -> usize {
        self.groups.len()
    }

    /// Appends a vacant slot, burning one query id (persistence
    /// support; see [`MultiQueryEngine::push_vacant_slot`]).
    pub fn push_vacant_slot(&mut self) {
        self.slots.push(None);
    }

    /// Appends a vacant (freed) group entry and free-lists its id
    /// (persistence support).
    pub fn push_vacant_group(&mut self) {
        let g = self.groups.len() as u32;
        self.groups.push(None);
        self.free_groups.push(g);
    }

    /// Appends group `n_group_slots` holding a fresh engine for
    /// `query`, re-wiring routing and (for complete groups under
    /// sharing) the signature index; returns its id (persistence
    /// support; see [`MultiQueryEngine::restore_push_group`]).
    pub fn restore_push_group(
        &mut self,
        query: CompiledQuery,
        semantics: PathSemantics,
        complete: bool,
    ) -> u32 {
        let signature = query.signature();
        let g = self.groups.len() as u32;
        for &label in query.dfa().alphabet() {
            self.routing.entry(label).or_default().insert(g);
        }
        if complete && self.config.shared_groups {
            self.sig_index
                .entry((signature.clone(), semantics_tag(semantics)))
                .or_insert(g);
        }
        self.groups.push(Some(ParGroup {
            engine: Engine::new(query, self.config, semantics),
            subscribers: Vec::new(),
            complete,
            signature,
        }));
        g
    }

    /// Appends a slot subscribed to (already restored) group `group`
    /// under `name` (persistence support).
    pub fn restore_subscriber(&mut self, name: impl Into<String>, group: u32) -> QueryId {
        self.attach(name.into(), group)
    }

    /// Ids of all live queries, ascending.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, q)| q.as_ref().map(|_| QueryId(i as u32)))
            .collect()
    }

    /// Ids of all live groups, ascending.
    pub fn group_ids(&self) -> Vec<u32> {
        self.groups
            .iter()
            .enumerate()
            .filter_map(|(g, s)| s.as_ref().map(|_| g as u32))
            .collect()
    }

    /// The id of the live query registered under `name` (O(1)).
    pub fn query_id(&self, name: &str) -> Option<QueryId> {
        self.by_name.get(name).map(|&slot| QueryId(slot))
    }

    /// The name a query was registered under.
    pub fn name(&self, id: QueryId) -> Option<&str> {
        self.slot(id).map(|s| s.name.as_str())
    }

    /// The evaluation group query `id` rides.
    pub fn group_of(&self, id: QueryId) -> Option<u32> {
        self.slot(id).map(|s| s.group)
    }

    /// Live subscriber slots of group `g`, ascending.
    pub fn group_subscribers(&self, g: u32) -> Option<&[u32]> {
        self.group(g).map(|grp| grp.subscribers.as_slice())
    }

    /// The canonical automaton signature of group `g`.
    pub fn group_signature(&self, g: u32) -> Option<&DfaSignature> {
        self.group(g).map(|grp| &grp.signature)
    }

    /// Whether group `g`'s Δ forest covers the whole window (joinable
    /// by backfilled registrations).
    pub fn group_is_complete(&self, g: u32) -> Option<bool> {
        self.group(g).map(|grp| grp.complete)
    }

    /// Per-query engine statistics (shared with any co-subscribers —
    /// aggregate over [`Self::group_ids`] to avoid double counting).
    pub fn stats(&self, id: QueryId) -> Option<&EngineStats> {
        self.group_for(id).map(|grp| grp.engine.stats())
    }

    /// Per-query Δ index size (shared with any co-subscribers).
    pub fn index_size(&self, id: QueryId) -> Option<IndexSize> {
        self.group_for(id).map(|grp| grp.engine.index_size())
    }

    /// Aggregate Δ index size over all live groups.
    pub fn total_index_size(&self) -> IndexSize {
        let mut total = IndexSize::default();
        for grp in self.groups.iter().flatten() {
            let s = grp.engine.index_size();
            total.trees += s.trees;
            total.nodes += s.nodes;
            total.arena_bytes += s.arena_bytes;
        }
        total
    }

    /// Routing-table footprint as `(labels, entries)`.
    pub fn routing_table_size(&self) -> (usize, usize) {
        (
            self.routing.len(),
            self.routing.values().map(DenseBitSet::count).sum(),
        )
    }

    /// Whether query `id` currently reports `pair`.
    pub fn has_result(&self, id: QueryId, pair: ResultPair) -> bool {
        self.group_for(id)
            .map(|grp| grp.engine.has_result(pair))
            .unwrap_or(false)
    }

    /// The shared window graph.
    pub fn graph(&self) -> &WindowGraph {
        &self.graph
    }

    /// Mutable shared window graph (persistence support).
    pub fn graph_mut(&mut self) -> &mut WindowGraph {
        Arc::get_mut(&mut self.graph).expect("workers idle between batches")
    }

    /// The shared per-query configuration template.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The shared window policy.
    pub fn window(&self) -> WindowPolicy {
        self.window
    }

    /// Stream time of the last processed tuple.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The group engine behind query `id` (shared with any
    /// co-subscribers).
    pub fn engine(&self, id: QueryId) -> Option<&Engine> {
        self.group_for(id).map(|grp| &grp.engine)
    }

    /// Mutable access to the group engine behind query `id`
    /// (persistence support).
    pub fn engine_mut(&mut self, id: QueryId) -> Option<&mut Engine> {
        let g = self.group_of(id)?;
        self.group_engine_mut(g)
    }

    /// The engine of group `g`.
    pub fn group_engine(&self, g: u32) -> Option<&Engine> {
        self.group(g).map(|grp| &grp.engine)
    }

    /// Mutable engine of group `g` (persistence support).
    pub fn group_engine_mut(&mut self, g: u32) -> Option<&mut Engine> {
        self.groups
            .get_mut(g as usize)
            .and_then(Option::as_mut)
            .map(|grp| &mut grp.engine)
    }

    /// Overwrites the shared clock and routing counters with
    /// checkpointed values (persistence support).
    pub fn restore_cursor(&mut self, now: Timestamp, tuples_seen: u64, tuples_routed: u64) {
        self.now = now;
        self.tuples_seen = tuples_seen;
        self.tuples_routed = tuples_routed;
    }

    /// Tuples seen and logical per-subscriber dispatches performed.
    pub fn routing_stats(&self) -> (u64, u64) {
        (self.tuples_seen, self.tuples_routed)
    }
}

impl Drop for ParallelMultiEngine {
    fn drop(&mut self) {
        shutdown_pool(&mut self.pool);
    }
}

fn spawn_pool(n_workers: usize) -> Vec<Worker> {
    (0..n_workers)
        .map(|i| {
            let (job_tx, job_rx) = channel::<Job>();
            let (res_tx, res_rx) = channel::<JobOut>();
            let beacon = Arc::new(srpq_common::StageBeacon::new());
            let worker_beacon = Arc::clone(&beacon);
            let handle = std::thread::Builder::new()
                .name(format!("srpq-multi-worker-{i}"))
                .spawn(move || worker_loop(job_rx, res_tx, worker_beacon))
                .expect("spawn worker thread");
            Worker {
                jobs: Some(job_tx),
                results: res_rx,
                handle: Some(handle),
                beacon,
            }
        })
        .collect()
}

fn shutdown_pool(pool: &mut Vec<Worker>) {
    for w in pool.iter_mut() {
        w.jobs.take(); // closing the channel ends the worker loop
    }
    for w in pool.iter_mut() {
        if let Some(h) = w.handle.take() {
            let _ = h.join();
        }
    }
    pool.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::{MultiCollectSink, MultiQueryEngine};
    use srpq_common::{LabelInterner, VertexId};

    fn setup(n_workers: usize) -> (ParallelMultiEngine, LabelInterner, QueryId, QueryId) {
        let mut labels = LabelInterner::new();
        let q1 = CompiledQuery::compile("a b", &mut labels).unwrap();
        let q2 = CompiledQuery::compile("b+", &mut labels).unwrap();
        let mut multi = ParallelMultiEngine::new(WindowPolicy::new(100, 10), n_workers);
        let id1 = multi.register("ab", q1, PathSemantics::Arbitrary).unwrap();
        let id2 = multi
            .register("bplus", q2, PathSemantics::Arbitrary)
            .unwrap();
        (multi, labels, id1, id2)
    }

    #[test]
    fn routes_by_label_and_tags_results() {
        for n_workers in [1, 2, 4] {
            let (mut multi, labels, id1, id2) = setup(n_workers);
            let a = labels.get("a").unwrap();
            let b = labels.get("b").unwrap();
            let v = VertexId;
            let mut sink = MultiCollectSink::default();
            multi.process_batch(
                &[
                    StreamTuple::insert(Timestamp(1), v(0), v(1), a),
                    StreamTuple::insert(Timestamp(2), v(1), v(2), b),
                    StreamTuple::insert(Timestamp(3), v(2), v(3), b),
                ],
                &mut sink,
            );
            assert!(multi.has_result(id1, ResultPair::new(v(0), v(2))));
            assert!(multi.has_result(id2, ResultPair::new(v(1), v(3))));
            assert!(!multi.has_result(id1, ResultPair::new(v(1), v(3))));
            for &(id, pair, _) in &sink.emitted {
                assert!(multi.has_result(id, pair));
            }
            let (seen, routed) = multi.routing_stats();
            assert_eq!(seen, 3);
            // a → {ab}; each b → {ab, bplus}.
            assert_eq!(routed, 5);
            assert_eq!(multi.graph().n_edges(), 3);
        }
    }

    #[test]
    fn matches_sequential_multi_event_stream() {
        // The headline guarantee in miniature (the full pinned suite
        // lives in tests/parallel_equivalence.rs): identical tagged
        // event streams, any worker count.
        let mut labels = LabelInterner::new();
        let qa = CompiledQuery::compile("a b*", &mut labels).unwrap();
        let qb = CompiledQuery::compile("(a | b)+", &mut labels).unwrap();
        let window = WindowPolicy::new(20, 4);
        let a = labels.get("a").unwrap();
        let b = labels.get("b").unwrap();
        let v = VertexId;
        let stream: Vec<StreamTuple> = (0..120)
            .map(|i| {
                let src = v(i % 7);
                let dst = v((i * 3 + 1) % 7);
                let label = if i % 2 == 0 { a } else { b };
                StreamTuple::insert(Timestamp(i as i64 / 2), src, dst, label)
            })
            .collect();

        let mut seq = MultiQueryEngine::new(window);
        seq.register("qa", qa.clone(), PathSemantics::Arbitrary)
            .unwrap();
        seq.register("qb", qb.clone(), PathSemantics::Arbitrary)
            .unwrap();
        let mut seq_sink = MultiCollectSink::default();
        for chunk in stream.chunks(16) {
            seq.process_batch(chunk, &mut seq_sink);
        }
        seq.expire_now(&mut seq_sink);

        for n_workers in [1, 2, 3, 8] {
            let mut par = ParallelMultiEngine::new(window, n_workers);
            par.register("qa", qa.clone(), PathSemantics::Arbitrary)
                .unwrap();
            par.register("qb", qb.clone(), PathSemantics::Arbitrary)
                .unwrap();
            let mut par_sink = MultiCollectSink::default();
            for chunk in stream.chunks(16) {
                par.process_batch(chunk, &mut par_sink);
            }
            par.expire_now(&mut par_sink);
            assert_eq!(
                seq_sink.emitted, par_sink.emitted,
                "{n_workers} workers: emission stream diverged"
            );
            assert_eq!(seq_sink.invalidated, par_sink.invalidated);
            assert_eq!(par.graph().n_edges(), seq.graph().n_edges());
        }
    }

    #[test]
    fn shared_groups_fan_out_across_workers() {
        // Language-equivalent registrations share one group; the
        // parallel fan-out must still deliver per-subscriber streams
        // identical to the sequential engine's, at any worker count.
        let mut labels = LabelInterner::new();
        let window = WindowPolicy::new(20, 4);
        let exprs = ["(a | b)+", "(b | a)+", "(a | b) (a | b)*", "a b"];
        let a = labels.intern("a");
        let b = labels.intern("b");
        let v = VertexId;
        let stream: Vec<StreamTuple> = (0..80)
            .map(|i| {
                let label = if i % 2 == 0 { a } else { b };
                StreamTuple::insert(Timestamp(i as i64 / 2), v(i % 5), v((i * 3 + 1) % 5), label)
            })
            .collect();

        let mut seq = MultiQueryEngine::new(window);
        for (i, e) in exprs.iter().enumerate() {
            let q = CompiledQuery::compile(e, &mut labels).unwrap();
            seq.register(format!("q{i}"), q, PathSemantics::Arbitrary)
                .unwrap();
        }
        assert_eq!(seq.groups_live(), 2); // three rewrites + one distinct
        let mut seq_sink = MultiCollectSink::default();
        for chunk in stream.chunks(16) {
            seq.process_batch(chunk, &mut seq_sink);
        }
        seq.expire_now(&mut seq_sink);

        for n_workers in [1, 2, 4] {
            let mut par = ParallelMultiEngine::new(window, n_workers);
            for (i, e) in exprs.iter().enumerate() {
                let q = CompiledQuery::compile(e, &mut labels).unwrap();
                par.register(format!("q{i}"), q, PathSemantics::Arbitrary)
                    .unwrap();
            }
            assert_eq!(par.groups_live(), 2);
            assert_eq!(par.n_queries(), 4);
            let mut par_sink = MultiCollectSink::default();
            for chunk in stream.chunks(16) {
                par.process_batch(chunk, &mut par_sink);
            }
            par.expire_now(&mut par_sink);
            assert_eq!(
                seq_sink.emitted, par_sink.emitted,
                "{n_workers} workers: shared-group stream diverged"
            );
            assert_eq!(seq_sink.invalidated, par_sink.invalidated);
        }
    }

    #[test]
    fn deletions_and_refresh_cut_batches() {
        let (mut multi, labels, id1, id2) = setup(2);
        let a = labels.get("a").unwrap();
        let b = labels.get("b").unwrap();
        let v = VertexId;
        let mut sink = MultiCollectSink::default();
        // Insert, refresh (same edge, later ts), and delete all in one
        // caller batch: the planner must cut so the stream still equals
        // the sequential engine's.
        let batch = [
            StreamTuple::insert(Timestamp(1), v(0), v(1), a),
            StreamTuple::insert(Timestamp(2), v(1), v(2), b),
            StreamTuple::insert(Timestamp(3), v(1), v(2), b), // refresh
            StreamTuple::delete(Timestamp(4), v(1), v(2), b),
            StreamTuple::insert(Timestamp(5), v(1), v(2), b),
        ];
        multi.process_batch(&batch, &mut sink);
        assert!(multi.has_result(id1, ResultPair::new(v(0), v(2))));
        assert!(multi.has_result(id2, ResultPair::new(v(1), v(2))));

        let mut seq = MultiQueryEngine::new(WindowPolicy::new(100, 10));
        let mut labels2 = LabelInterner::new();
        let q1 = CompiledQuery::compile("a b", &mut labels2).unwrap();
        let q2 = CompiledQuery::compile("b+", &mut labels2).unwrap();
        seq.register("ab", q1, PathSemantics::Arbitrary).unwrap();
        seq.register("bplus", q2, PathSemantics::Arbitrary).unwrap();
        let mut seq_sink = MultiCollectSink::default();
        seq.process_batch(&batch, &mut seq_sink);
        assert_eq!(sink.emitted, seq_sink.emitted);
        assert_eq!(sink.invalidated, seq_sink.invalidated);
    }

    #[test]
    fn mid_stream_registration_and_deregistration() {
        let mut labels = LabelInterner::new();
        let q1 = CompiledQuery::compile("a", &mut labels).unwrap();
        let a = labels.get("a").unwrap();
        let v = VertexId;
        let mut multi = ParallelMultiEngine::new(WindowPolicy::new(100, 10), 3);
        let id1 = multi
            .register("first", q1, PathSemantics::Arbitrary)
            .unwrap();
        let mut sink = MultiCollectSink::default();
        multi.process(StreamTuple::insert(Timestamp(1), v(0), v(1), a), &mut sink);

        let q2 = CompiledQuery::compile("a a", &mut labels).unwrap();
        let id2 = multi
            .register_backfilled("second", q2, PathSemantics::Arbitrary, &mut sink)
            .unwrap();
        multi.process(StreamTuple::insert(Timestamp(2), v(1), v(2), a), &mut sink);
        assert!(multi.has_result(id2, ResultPair::new(v(0), v(2))));
        assert!(multi.index_size(id2).unwrap().nodes > 0);

        multi.deregister(id1).unwrap();
        sink.emitted.clear();
        multi.process(StreamTuple::insert(Timestamp(3), v(2), v(3), a), &mut sink);
        assert!(sink.emitted.iter().all(|&(id, ..)| id != id1));
        assert_eq!(multi.query_ids(), vec![id2]);
        assert_eq!(multi.n_slots(), 2);
        // The vacated name is reusable; the id is not.
        let q3 = CompiledQuery::compile("a", &mut labels).unwrap();
        let id3 = multi
            .register("first", q3, PathSemantics::Arbitrary)
            .unwrap();
        assert_eq!(id3, QueryId(2));
    }

    #[test]
    fn resize_workers_keeps_state() {
        let (mut multi, labels, id1, _) = setup(1);
        let a = labels.get("a").unwrap();
        let b = labels.get("b").unwrap();
        let v = VertexId;
        let mut sink = MultiCollectSink::default();
        multi.process_batch(
            &[
                StreamTuple::insert(Timestamp(1), v(0), v(1), a),
                StreamTuple::insert(Timestamp(2), v(1), v(2), b),
            ],
            &mut sink,
        );
        assert!(multi.has_result(id1, ResultPair::new(v(0), v(2))));
        multi.resize_workers(4);
        assert_eq!(multi.n_workers(), 4);
        multi.process_batch(
            &[StreamTuple::insert(Timestamp(3), v(2), v(3), b)],
            &mut sink,
        );
        assert!(multi.has_result(id1, ResultPair::new(v(0), v(2))));
        assert_eq!(multi.n_queries(), 2);
    }

    #[test]
    fn eval_time_ledger_is_conserved_across_workers() {
        // Per-group `eval_ns` must sum to exactly what the per-worker
        // and coordinator ledgers recorded: every increment applied to
        // a group's stats is mirrored into whichever thread spent it
        // (worker batch/expire jobs, coordinator singleton stage A and
        // backfill replay).
        for n_workers in [1, 2, 3] {
            let mut labels = LabelInterner::new();
            let qa = CompiledQuery::compile("a b*", &mut labels).unwrap();
            let qb = CompiledQuery::compile("(a | b)+", &mut labels).unwrap();
            let a = labels.get("a").unwrap();
            let b = labels.get("b").unwrap();
            let v = VertexId;
            let mut multi = ParallelMultiEngine::new(WindowPolicy::new(20, 4), n_workers);
            multi.register("qa", qa, PathSemantics::Arbitrary).unwrap();
            multi.register("qb", qb, PathSemantics::Arbitrary).unwrap();
            let mut sink = MultiCollectSink::default();
            let stream: Vec<StreamTuple> = (0..100)
                .map(|i| {
                    let label = if i % 2 == 0 { a } else { b };
                    StreamTuple::insert(
                        Timestamp(i as i64 / 2),
                        v(i % 6),
                        v((i * 5 + 1) % 6),
                        label,
                    )
                })
                .collect();
            for chunk in stream.chunks(16) {
                multi.process_batch(chunk, &mut sink);
            }
            // Exercise every eval site: deletion singleton, explicit
            // expiry, and a backfilled registration.
            multi.process(StreamTuple::delete(Timestamp(49), v(0), v(1), a), &mut sink);
            multi.expire_now(&mut sink);
            let qc = CompiledQuery::compile("b a", &mut labels).unwrap();
            multi
                .register_backfilled("qc", qc, PathSemantics::Arbitrary, &mut sink)
                .unwrap();

            let per_group_eval: u64 = multi
                .group_ids()
                .iter()
                .map(|&g| multi.group_engine(g).unwrap().stats().eval_ns)
                .sum();
            let per_group_expiry: u64 = multi
                .group_ids()
                .iter()
                .map(|&g| multi.group_engine(g).unwrap().stats().expiry_nanos)
                .sum();
            let ledger_eval: u64 =
                multi.coord_totals().0 + multi.worker_totals().iter().map(|w| w.0).sum::<u64>();
            let ledger_expiry: u64 =
                multi.coord_totals().1 + multi.worker_totals().iter().map(|w| w.1).sum::<u64>();
            assert_eq!(
                per_group_eval, ledger_eval,
                "{n_workers} workers: eval ledger diverged"
            );
            assert_eq!(
                per_group_expiry, ledger_expiry,
                "{n_workers} workers: expiry ledger diverged"
            );
            assert!(per_group_eval > 0, "work happened, so time was spent");
            let stage = multi.stage_totals();
            assert_eq!(stage.eval_ns, ledger_eval);
            assert_eq!(stage.expiry_ns, ledger_expiry);
            assert!(stage.batches > 0);

            // Resizing folds worker ledgers into the coordinator's —
            // the total is conserved.
            multi.resize_workers(2);
            assert_eq!(
                multi.coord_totals().0 + multi.worker_totals().iter().map(|w| w.0).sum::<u64>(),
                ledger_eval
            );
        }
    }

    #[test]
    fn poisoned_engine_refuses_reuse() {
        struct PanicSink;
        impl MultiSink for PanicSink {
            fn emit(&mut self, _: QueryId, _: ResultPair, _: Timestamp) {
                panic!("sink exploded");
            }
        }
        let (mut multi, labels, ..) = setup(2);
        let b = labels.get("b").unwrap();
        let v = VertexId;
        let batch = [StreamTuple::insert(Timestamp(1), v(0), v(1), b)];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            multi.process_batch(&batch, &mut PanicSink);
        }));
        assert!(err.is_err(), "the sink panic must propagate");
        // The contract: a poisoned engine refuses reuse loudly rather
        // than silently corrupting downstream state.
        let reuse = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            multi.process_batch(&batch, &mut MultiCollectSink::default());
        }));
        let payload = reuse.expect_err("poisoned engine must refuse");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("<non-string panic payload>");
        assert!(msg.contains("poisoned"), "unexpected message: {msg}");
    }
}
