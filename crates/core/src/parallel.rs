//! Intra-query parallel RAPQ evaluation (§5.1.1).
//!
//! The paper's prototype "employs intra-query parallelism by deploying a
//! thread pool to process multiple spanning trees in parallel that are
//! accessed for each incoming edge. Window management is parallelized
//! similarly." The Δ index partitions naturally: a spanning tree `T_x`
//! is touched only through its root `x`, and a result `(x, y)` belongs
//! to exactly one tree — so trees, their reverse index, *and* the
//! result-deduplication sets shard cleanly by root vertex.
//!
//! [`ParallelRapqEngine`] hash-partitions trees into `n_shards` shards
//! and processes tuples in **micro-batches**: all graph updates of a
//! batch are applied first (single-threaded, cheap), then one scoped
//! thread per shard extends its trees for every tuple of the batch.
//! Batching amortizes thread-coordination overhead that per-tuple
//! fan-out could never recoup; batches are cut at slide boundaries and
//! at explicit deletions so window semantics are preserved exactly.
//!
//! Applying a batch's edges before traversing changes *when* a result
//! inside the batch is discovered (an early tuple may already see a
//! later tuple's edge), but not the result set at batch end — every
//! path is discovered by its last-arriving edge in the sequential
//! engine anyway. The `matches_sequential_engine` test pins this
//! equivalence.

use crate::config::EngineConfig;
use crate::delta::{NodeId, PairKey};
use crate::rapq::Delta;
use crate::rapq::{run_insert, WorkItem};
use crate::sink::ResultSink;
use crate::stats::{EngineStats, IndexSize};
use srpq_automata::CompiledQuery;
use srpq_common::{FxHashSet, ResultPair, StreamTuple, Timestamp, VertexId};
use srpq_graph::{Visibility, WindowGraph};

/// One shard: a slice of the Δ index plus its private result set.
struct Shard {
    delta: Delta,
    emitted: FxHashSet<ResultPair>,
    stats: EngineStats,
    /// Results discovered in the current batch, drained to the caller's
    /// sink after the parallel section (`drain` retains capacity, so
    /// these warm up once and never reallocate in steady state).
    outbox: Vec<(ResultPair, Timestamp)>,
    invalidated: Vec<(ResultPair, Timestamp)>,
    /// Reusable work stack for the shard's traversal (avoids a fresh
    /// allocation per batch and per expired tree).
    work: Vec<WorkItem>,
    /// Reusable root-list scratch (per-tuple tree lookups and per-slide
    /// sweeps).
    roots_scratch: Vec<VertexId>,
    /// Reusable dirty-tree scratch for deletions.
    dirty_scratch: Vec<VertexId>,
    /// Reusable expiry-candidate scratch.
    expired_scratch: Vec<PairKey>,
    /// Reusable compaction remap scratch.
    compact_scratch: Vec<NodeId>,
}

/// A buffering sink living inside a shard during the parallel section.
struct OutboxSink<'a> {
    outbox: &'a mut Vec<(ResultPair, Timestamp)>,
    invalidated: &'a mut Vec<(ResultPair, Timestamp)>,
}

impl ResultSink for OutboxSink<'_> {
    fn emit(&mut self, pair: ResultPair, ts: Timestamp) {
        self.outbox.push((pair, ts));
    }

    fn invalidate(&mut self, pair: ResultPair, ts: Timestamp) {
        self.invalidated.push((pair, ts));
    }
}

/// A parallel RAPQ engine: tree maintenance and window management fan
/// out over `n_shards` worker threads per micro-batch.
pub struct ParallelRapqEngine {
    query: CompiledQuery,
    config: EngineConfig,
    graph: WindowGraph,
    shards: Vec<Shard>,
    now: Timestamp,
    batch: Vec<StreamTuple>,
    batch_capacity: usize,
    /// Reusable phase-1 buffer of in-alphabet tuples (capacity retained
    /// across batches).
    relevant_scratch: Vec<StreamTuple>,
}

impl ParallelRapqEngine {
    /// Creates an engine with `n_shards` tree shards and the given
    /// micro-batch size (tuples are buffered until the batch fills, a
    /// slide boundary is crossed, a deletion arrives, or
    /// [`Self::flush`] is called).
    pub fn new(
        query: CompiledQuery,
        config: EngineConfig,
        n_shards: usize,
        batch_capacity: usize,
    ) -> ParallelRapqEngine {
        let n_shards = n_shards.max(1);
        ParallelRapqEngine {
            query,
            config,
            graph: WindowGraph::new(),
            shards: (0..n_shards)
                .map(|_| Shard {
                    delta: Delta::new(),
                    emitted: FxHashSet::default(),
                    stats: EngineStats::default(),
                    outbox: Vec::new(),
                    invalidated: Vec::new(),
                    work: Vec::new(),
                    roots_scratch: Vec::new(),
                    dirty_scratch: Vec::new(),
                    expired_scratch: Vec::new(),
                    compact_scratch: Vec::new(),
                })
                .collect(),
            now: Timestamp::NEG_INFINITY,
            batch: Vec::with_capacity(batch_capacity.max(1)),
            batch_capacity: batch_capacity.max(1),
            relevant_scratch: Vec::new(),
        }
    }

    #[inline]
    fn shard_of(&self, root: VertexId) -> usize {
        // Cheap deterministic partition; roots are dense interned ids.
        (root.0 as usize) % self.shards.len()
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Aggregated Δ index size over all shards.
    pub fn index_size(&self) -> IndexSize {
        let mut total = IndexSize::default();
        for s in &self.shards {
            total.trees += s.delta.n_trees();
            total.nodes += s.delta.n_nodes();
            total.arena_bytes += s.delta.arena_bytes();
        }
        total
    }

    /// Aggregated engine statistics over all shards.
    pub fn stats(&self) -> EngineStats {
        let mut out = EngineStats::default();
        for s in &self.shards {
            out.tuples_processed += s.stats.tuples_processed;
            out.tuples_discarded += s.stats.tuples_discarded;
            out.deletions_processed += s.stats.deletions_processed;
            out.insert_calls += s.stats.insert_calls;
            out.results_emitted += s.stats.results_emitted;
            out.results_invalidated += s.stats.results_invalidated;
            out.expiry_runs += s.stats.expiry_runs;
            out.nodes_expired += s.stats.nodes_expired;
            out.expiry_nanos += s.stats.expiry_nanos;
            out.delta_nodes_live += s.stats.delta_nodes_live;
            out.delta_capacity += s.stats.delta_capacity;
            out.compactions += s.stats.compactions;
        }
        out
    }

    /// Whether `pair` has been reported.
    pub fn has_result(&self, pair: ResultPair) -> bool {
        self.shards[self.shard_of(pair.src)].emitted.contains(&pair)
    }

    /// Number of distinct reported pairs.
    pub fn result_count(&self) -> usize {
        self.shards.iter().map(|s| s.emitted.len()).sum()
    }

    /// The window graph.
    pub fn graph(&self) -> &WindowGraph {
        &self.graph
    }

    /// The registered query.
    pub fn query(&self) -> &CompiledQuery {
        &self.query
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The micro-batch capacity (tuples buffered before an automatic
    /// flush).
    pub fn batch_capacity(&self) -> usize {
        self.batch_capacity
    }

    /// Stream time of the last *flushed* tuple.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Shard `i`'s currently reported pairs, sorted (persistence
    /// support).
    pub fn shard_emitted(&self, i: usize) -> Vec<ResultPair> {
        let mut out: Vec<ResultPair> = self.shards[i].emitted.iter().copied().collect();
        out.sort_unstable();
        out
    }

    /// Shard `i`'s statistics.
    pub fn shard_stats(&self, i: usize) -> &EngineStats {
        &self.shards[i].stats
    }

    /// Shard `i`'s Δ index (persistence support: `Full` checkpoints
    /// serialize each shard's forest).
    pub fn shard_delta(&self, i: usize) -> &Delta {
        &self.shards[i].delta
    }

    /// Mutable window graph (persistence support).
    pub fn graph_mut(&mut self) -> &mut WindowGraph {
        &mut self.graph
    }

    /// Overwrites the engine clock with a checkpointed value
    /// (persistence support). The pending micro-batch must be empty.
    pub fn restore_clock(&mut self, now: Timestamp) {
        assert!(self.batch.is_empty(), "restore with a pending micro-batch");
        self.now = now;
    }

    /// Overwrites shard `i`'s result-deduplication set and statistics
    /// with checkpointed values (persistence support).
    pub fn restore_shard_cursor(
        &mut self,
        i: usize,
        emitted: impl IntoIterator<Item = ResultPair>,
        stats: EngineStats,
    ) {
        let shard = &mut self.shards[i];
        shard.emitted = emitted.into_iter().collect();
        shard.stats = stats;
    }

    /// Replaces shard `i`'s Δ index wholesale (persistence support:
    /// `Full` recovery restores the exact checkpointed forests).
    pub fn set_shard_delta(&mut self, i: usize, delta: Delta) {
        self.shards[i].delta = delta;
    }

    /// Processes one tuple; results may be delivered on this call or on
    /// the call that flushes the containing micro-batch.
    pub fn process<S: ResultSink>(&mut self, tuple: StreamTuple, sink: &mut S) {
        let boundary = self.now != Timestamp::NEG_INFINITY
            && self
                .config
                .window
                .crosses_slide(self.now, tuple.ts.max(self.now));
        let deletion = tuple.op == srpq_common::Op::Delete;
        if boundary || deletion {
            self.flush(sink);
        }
        self.batch.push(tuple);
        if deletion || self.batch.len() >= self.batch_capacity {
            self.flush(sink);
        }
    }

    /// Ingests a caller-sized batch as the shard hand-off unit: the
    /// slice is cut only at slide boundaries and deletions (the
    /// engine's own `batch_capacity` does not apply — the caller chose
    /// the batch size), each cut fanning out to the shard threads once.
    /// The pending batch is flushed before returning, so all results
    /// for these tuples reach `sink` by the time this call ends.
    pub fn process_batch<S: ResultSink>(&mut self, tuples: &[StreamTuple], sink: &mut S) {
        for &tuple in tuples {
            let boundary = self.now != Timestamp::NEG_INFINITY
                && self
                    .config
                    .window
                    .crosses_slide(self.now, tuple.ts.max(self.now));
            let deletion = tuple.op == srpq_common::Op::Delete;
            if boundary || deletion {
                self.flush(sink);
            }
            self.batch.push(tuple);
            if deletion {
                self.flush(sink);
            }
        }
        self.flush(sink);
    }

    /// Flushes the pending micro-batch: applies graph updates, then
    /// extends all shards in parallel and drains their outboxes.
    pub fn flush<S: ResultSink>(&mut self, sink: &mut S) {
        if self.batch.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.batch);
        let prev = self.now;
        let batch_end = batch.last().map(|t| t.ts).unwrap_or(self.now);
        if batch_end > self.now {
            self.now = batch_end;
        }

        // Window maintenance once per crossed slide boundary.
        if prev != Timestamp::NEG_INFINITY && self.config.window.crosses_slide(prev, self.now) {
            let wm = self.config.window.lazy_watermark(self.now);
            self.graph.purge_expired(wm);
            self.parallel_expire(wm, false);
        }

        // Phase 1 (sequential): apply all graph mutations. Both the
        // relevant-tuple buffer and the batch buffer are retained
        // scratch space — no allocation in steady state.
        let mut relevant = std::mem::take(&mut self.relevant_scratch);
        relevant.clear();
        for &t in &batch {
            if !self.query.dfa().knows_label(t.label) {
                self.shards[0].stats.tuples_discarded += 1;
                continue;
            }
            match t.op {
                srpq_common::Op::Insert => {
                    self.graph.insert(t.edge.src, t.edge.dst, t.label, t.ts);
                }
                srpq_common::Op::Delete => {
                    self.graph.remove(t.edge.src, t.edge.dst, t.label);
                }
            }
            relevant.push(t);
        }

        // Phase 2 (parallel): every shard processes the whole batch
        // against its own trees. Watermarks advance per tuple inside the
        // shard loop, matching the sequential engine's eager evaluation.
        let query = &self.query;
        let config = &self.config;
        let graph = &self.graph;
        let prev_now = prev;
        let n_shards = self.shards.len();
        let relevant_ref = &relevant;
        std::thread::scope(|scope| {
            for (si, shard) in self.shards.iter_mut().enumerate() {
                scope.spawn(move || {
                    shard_process_batch(
                        shard,
                        si,
                        n_shards,
                        query,
                        config,
                        graph,
                        relevant_ref,
                        prev_now,
                    );
                });
            }
        });

        // Phase 3 (sequential): drain outboxes in shard order.
        for shard in &mut self.shards {
            for (pair, ts) in shard.outbox.drain(..) {
                sink.emit(pair, ts);
            }
            for (pair, ts) in shard.invalidated.drain(..) {
                sink.invalidate(pair, ts);
            }
        }

        // Hand the buffers back with their capacity intact.
        relevant.clear();
        self.relevant_scratch = relevant;
        let mut batch = batch;
        batch.clear();
        self.batch = batch;
    }

    /// Parallel `ExpiryRAPQ` across shards.
    fn parallel_expire(&mut self, wm: Timestamp, invalidate: bool) {
        let query = &self.query;
        let config = &self.config;
        let graph = &self.graph;
        let now = self.now;
        std::thread::scope(|scope| {
            for shard in self.shards.iter_mut() {
                scope.spawn(move || {
                    shard_expire(shard, query, config, graph, wm, invalidate, now);
                });
            }
        });
    }

    /// Forces an expiry pass (flushing first).
    pub fn expire_now<S: ResultSink>(&mut self, sink: &mut S) {
        self.flush(sink);
        let wm = self.config.window.watermark(self.now);
        self.graph.purge_expired(wm);
        self.parallel_expire(wm, false);
        for shard in &mut self.shards {
            for (pair, ts) in shard.outbox.drain(..) {
                sink.emit(pair, ts);
            }
            for (pair, ts) in shard.invalidated.drain(..) {
                sink.invalidate(pair, ts);
            }
        }
    }
}

/// Runs one micro-batch against one shard (worker-thread body).
#[allow(clippy::too_many_arguments)]
fn shard_process_batch(
    shard: &mut Shard,
    shard_index: usize,
    n_shards: usize,
    query: &CompiledQuery,
    config: &EngineConfig,
    graph: &WindowGraph,
    batch: &[StreamTuple],
    prev_now: Timestamp,
) {
    let dfa = query.dfa();
    let s0 = dfa.start();
    let mut work = std::mem::take(&mut shard.work);
    let mut tnow = prev_now;
    for t in batch {
        if t.ts > tnow {
            tnow = t.ts;
        }
        let now = tnow;
        let wm = config.window.watermark(now);
        if shard_index == 0 {
            shard.stats.tuples_processed += 1;
        }
        let (u, v) = (t.edge.src, t.edge.dst);
        match t.op {
            srpq_common::Op::Insert => {
                // Materialize T_u lazily iff u belongs to this shard.
                if (u.0 as usize) % n_shards == shard_index
                    && dfa.transitions_for(t.label).iter().any(|&(s, _)| s == s0)
                {
                    shard.delta.ensure_tree(u, s0);
                }
                let mut roots = std::mem::take(&mut shard.roots_scratch);
                shard.delta.collect_trees_containing(u, &mut roots);
                for &root in &roots {
                    let Some(tree) = shard.delta.tree(root) else {
                        continue;
                    };
                    work.clear();
                    for &(s, st) in dfa.transitions_for(t.label) {
                        let child = (v, st);
                        let Some(pid) = tree.first_occurrence((u, s)) else {
                            continue;
                        };
                        let Some(pts) = tree.ts_of(pid) else { continue };
                        if pts <= wm {
                            continue;
                        }
                        let should = match tree.ts(child) {
                            None => true,
                            Some(cts) => cts < pts.min(t.ts),
                        };
                        if should {
                            work.push(WorkItem {
                                parent_id: pid,
                                child,
                                via: t.label,
                                edge_ts: t.ts,
                            });
                        }
                    }
                    if !work.is_empty() {
                        let mut outbox = OutboxSink {
                            outbox: &mut shard.outbox,
                            invalidated: &mut shard.invalidated,
                        };
                        let (tree, idx) = shard
                            .delta
                            .tree_with_index(root)
                            .expect("tree checked above");
                        run_insert(
                            tree,
                            idx,
                            &mut work,
                            dfa,
                            graph,
                            Visibility::ALL,
                            config.refresh,
                            config.dedup_results,
                            wm,
                            now,
                            &mut shard.emitted,
                            &mut shard.stats,
                            &mut outbox,
                        );
                    }
                }
                shard.roots_scratch = roots;
            }
            srpq_common::Op::Delete => {
                if shard_index == 0 {
                    shard.stats.deletions_processed += 1;
                }
                let mut roots = std::mem::take(&mut shard.roots_scratch);
                shard.delta.collect_trees_containing(v, &mut roots);
                let mut dirty = std::mem::take(&mut shard.dirty_scratch);
                dirty.clear();
                for &root in &roots {
                    if let Some(tree) = shard.delta.tree_mut(root) {
                        let mut touched = false;
                        for &(s, st) in dfa.transitions_for(t.label) {
                            let key = (v, st);
                            if let Some(node) = tree.get(key) {
                                if node.via_label == t.label && tree.parent_key(key) == Some((u, s))
                                {
                                    tree.set_subtree_ts_key(key, Timestamp::NEG_INFINITY);
                                    touched = true;
                                }
                            }
                        }
                        if touched {
                            dirty.push(root);
                        }
                    }
                }
                for &root in &dirty {
                    expire_shard_tree(shard, &mut work, root, query, config, graph, wm, true, now);
                    shard.delta.drop_if_trivial(root);
                }
                shard.dirty_scratch = dirty;
                shard.roots_scratch = roots;
                shard.stats.delta_nodes_live = shard.delta.n_nodes() as u64;
                shard.stats.delta_capacity = shard.delta.n_slots() as u64;
            }
        }
    }
    work.clear();
    shard.work = work;
}

/// `ExpiryRAPQ` over one shard's trees.
fn shard_expire(
    shard: &mut Shard,
    query: &CompiledQuery,
    config: &EngineConfig,
    graph: &WindowGraph,
    wm: Timestamp,
    invalidate: bool,
    now: Timestamp,
) {
    let t0 = std::time::Instant::now();
    shard.stats.expiry_runs += 1;
    let mut work = std::mem::take(&mut shard.work);
    let mut roots = std::mem::take(&mut shard.roots_scratch);
    shard.delta.collect_roots(&mut roots);
    for &root in &roots {
        expire_shard_tree(
            shard, &mut work, root, query, config, graph, wm, invalidate, now,
        );
        shard.delta.drop_if_trivial(root);
    }
    shard.roots_scratch = roots;
    work.clear();
    shard.work = work;
    shard.stats.delta_nodes_live = shard.delta.n_nodes() as u64;
    shard.stats.delta_capacity = shard.delta.n_slots() as u64;
    shard.stats.expiry_nanos += t0.elapsed().as_nanos() as u64;
}

/// The single-tree expiry body shared by window expiry and deletions
/// (mirrors `RapqEngine::expire_tree`).
#[allow(clippy::too_many_arguments)]
fn expire_shard_tree(
    shard: &mut Shard,
    work: &mut Vec<WorkItem>,
    root: VertexId,
    query: &CompiledQuery,
    config: &EngineConfig,
    graph: &WindowGraph,
    wm: Timestamp,
    invalidate: bool,
    now: Timestamp,
) {
    let dfa = query.dfa();
    let mut expired = std::mem::take(&mut shard.expired_scratch);
    let mut remap = std::mem::take(&mut shard.compact_scratch);
    let Some((tree, idx)) = shard.delta.tree_with_index(root) else {
        shard.expired_scratch = expired;
        shard.compact_scratch = remap;
        return;
    };
    tree.remove_expired_keys(wm, &mut expired);
    if expired.is_empty() {
        shard.expired_scratch = expired;
        shard.compact_scratch = remap;
        return;
    }
    for &(ev, _) in &expired {
        idx.note_removed(root, ev);
    }
    work.clear();
    let mut outbox = OutboxSink {
        outbox: &mut shard.outbox,
        invalidated: &mut shard.invalidated,
    };
    for &(ev, et) in &expired {
        let adj = graph.in_view(ev);
        for &(s, label) in dfa.transitions_into(et) {
            for e in adj.edges(label, wm) {
                let Some(pid) = tree.first_occurrence((e.other, s)) else {
                    continue;
                };
                let Some(pts) = tree.ts_of(pid) else { continue };
                if pts <= wm {
                    continue;
                }
                let should = match tree.ts((ev, et)) {
                    None => true,
                    Some(cts) => cts < pts.min(e.ts),
                };
                if should {
                    work.push(WorkItem {
                        parent_id: pid,
                        child: (ev, et),
                        via: label,
                        edge_ts: e.ts,
                    });
                    run_insert(
                        tree,
                        idx,
                        work,
                        dfa,
                        graph,
                        Visibility::ALL,
                        config.refresh,
                        config.dedup_results,
                        wm,
                        now,
                        &mut shard.emitted,
                        &mut shard.stats,
                        &mut outbox,
                    );
                }
            }
        }
    }
    let mut permanently_removed = 0u64;
    for &(ev, et) in &expired {
        if !tree.contains((ev, et)) {
            permanently_removed += 1;
            if invalidate && config.report_invalidations && dfa.is_accepting(et) {
                let witnessed = dfa.accepting_states().any(|f| tree.contains((ev, f)));
                if !witnessed {
                    let pair = ResultPair::new(root, ev);
                    if shard.emitted.remove(&pair) {
                        shard.stats.results_invalidated += 1;
                        outbox.invalidate(pair, now);
                    }
                }
            }
        }
    }
    shard.stats.nodes_expired += permanently_removed;
    // Per-slide compaction, mirroring `RapqEngine::expire_tree`.
    if tree.maybe_compact(&mut remap) {
        shard.stats.compactions += 1;
    }
    shard.expired_scratch = expired;
    shard.compact_scratch = remap;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rapq::RapqEngine;
    use crate::sink::CollectSink;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use srpq_common::{Label, LabelInterner};
    use srpq_graph::WindowPolicy;

    fn random_stream(n: usize, n_vertices: u32, seed: u64) -> Vec<StreamTuple> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ts = 0i64;
        let mut inserted: Vec<StreamTuple> = Vec::new();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            ts += rng.gen_range(0..=2i64);
            if !inserted.is_empty() && rng.gen_bool(0.1) {
                let v = inserted[rng.gen_range(0..inserted.len())];
                out.push(StreamTuple::delete(
                    Timestamp(ts),
                    v.edge.src,
                    v.edge.dst,
                    v.label,
                ));
                continue;
            }
            let src = VertexId(rng.gen_range(0..n_vertices));
            let mut dst = VertexId(rng.gen_range(0..n_vertices));
            if dst == src {
                dst = VertexId((dst.0 + 1) % n_vertices);
            }
            let t = StreamTuple::insert(Timestamp(ts), src, dst, Label(rng.gen_range(0..2)));
            inserted.push(t);
            out.push(t);
        }
        out
    }

    fn compile(expr: &str) -> CompiledQuery {
        let mut labels = LabelInterner::new();
        labels.intern("a");
        labels.intern("b");
        CompiledQuery::compile(expr, &mut labels).unwrap()
    }

    #[test]
    fn matches_sequential_engine() {
        for &expr in &["a b*", "(a | b)+", "a b a"] {
            for seed in 0..3u64 {
                let stream = random_stream(300, 12, seed);
                let query = compile(expr);
                let window = WindowPolicy::new(20, 5);
                let config = EngineConfig::with_window(window);

                let mut sequential = RapqEngine::new(query.clone(), config);
                let mut parallel = ParallelRapqEngine::new(query, config, 4, 16);

                let mut ss = CollectSink::default();
                let mut sp = CollectSink::default();
                for &t in &stream {
                    sequential.process(t, &mut ss);
                    parallel.process(t, &mut sp);
                }
                sequential.expire_now(&mut ss);
                parallel.expire_now(&mut sp);
                assert_eq!(
                    ss.pairs(),
                    sp.pairs(),
                    "query {expr}, seed {seed}: parallel/sequential diverge"
                );
            }
        }
    }

    #[test]
    fn single_shard_single_tuple_batches() {
        // Degenerate configuration must behave like the plain engine.
        let stream = random_stream(150, 8, 7);
        let query = compile("(a b)+");
        let window = WindowPolicy::new(15, 3);
        let config = EngineConfig::with_window(window);
        let mut sequential = RapqEngine::new(query.clone(), config);
        let mut parallel = ParallelRapqEngine::new(query, config, 1, 1);
        let mut ss = CollectSink::default();
        let mut sp = CollectSink::default();
        for &t in &stream {
            sequential.process(t, &mut ss);
            parallel.process(t, &mut sp);
        }
        assert_eq!(ss.pairs(), sp.pairs());
    }

    #[test]
    fn result_lookup_and_stats_aggregate() {
        let query = compile("a");
        let config = EngineConfig::with_window(WindowPolicy::new(100, 10));
        let mut engine = ParallelRapqEngine::new(query, config, 3, 4);
        let mut sink = CollectSink::default();
        for i in 0..9u32 {
            engine.process(
                StreamTuple::insert(
                    Timestamp(i as i64 + 1),
                    VertexId(i),
                    VertexId(i + 1),
                    Label(0),
                ),
                &mut sink,
            );
        }
        engine.flush(&mut sink);
        assert_eq!(engine.result_count(), 9);
        for i in 0..9u32 {
            assert!(engine.has_result(ResultPair::new(VertexId(i), VertexId(i + 1))));
        }
        assert_eq!(engine.n_shards(), 3);
        assert!(engine.index_size().nodes >= 18);
        assert_eq!(engine.stats().results_emitted, 9);
    }

    #[test]
    fn deletion_cuts_batch_and_invalidates() {
        let query = compile("a b");
        let config = EngineConfig::with_window(WindowPolicy::new(100, 10));
        let mut engine = ParallelRapqEngine::new(query, config, 2, 64);
        let mut sink = CollectSink::default();
        let v = VertexId;
        engine.process(
            StreamTuple::insert(Timestamp(1), v(0), v(1), Label(0)),
            &mut sink,
        );
        engine.process(
            StreamTuple::insert(Timestamp(2), v(1), v(2), Label(1)),
            &mut sink,
        );
        // Deletion forces a flush of the pending inserts first.
        engine.process(
            StreamTuple::delete(Timestamp(3), v(0), v(1), Label(0)),
            &mut sink,
        );
        assert!(!engine.has_result(ResultPair::new(v(0), v(2))));
        assert_eq!(sink.invalidated().len(), 1);
    }
}
