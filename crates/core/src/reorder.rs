//! Out-of-order tuple handling (left as future work in §2 of the paper;
//! Definition 3 assumes source-timestamp-ordered arrival).
//!
//! [`ReorderBuffer`] fronts an engine with the standard bounded-lateness
//! discipline of stream processors: tuples are buffered and released in
//! timestamp order once the low-watermark `max_seen_ts − max_lateness`
//! passes them. Tuples arriving later than `max_lateness` behind the
//! newest seen timestamp cannot be reordered safely; they are counted
//! and dropped (the usual "too-late" policy), keeping the engine's
//! in-order contract intact.

use srpq_common::{StreamTuple, Timestamp};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Heap entry ordered by timestamp then arrival sequence (stable for
/// equal timestamps).
#[derive(PartialEq, Eq)]
struct Pending {
    ts: Timestamp,
    seq: u64,
    tuple: StreamTuple,
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ts, self.seq).cmp(&(other.ts, other.seq))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded-lateness reorder buffer.
pub struct ReorderBuffer {
    max_lateness: i64,
    heap: BinaryHeap<Reverse<Pending>>,
    max_seen: Timestamp,
    last_released: Timestamp,
    seq: u64,
    dropped_late: u64,
}

impl ReorderBuffer {
    /// Creates a buffer tolerating tuples up to `max_lateness` time
    /// units behind the newest seen timestamp.
    pub fn new(max_lateness: i64) -> ReorderBuffer {
        assert!(max_lateness >= 0);
        ReorderBuffer {
            max_lateness,
            heap: BinaryHeap::new(),
            max_seen: Timestamp::NEG_INFINITY,
            last_released: Timestamp::NEG_INFINITY,
            seq: 0,
            dropped_late: 0,
        }
    }

    /// Number of buffered tuples.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Tuples dropped for arriving beyond the lateness bound.
    pub fn dropped_late(&self) -> u64 {
        self.dropped_late
    }

    /// Offers a possibly out-of-order tuple; invokes `deliver` (in
    /// timestamp order) for every tuple the advancing watermark
    /// releases. Returns `false` if the tuple itself was too late and
    /// dropped.
    pub fn push(&mut self, tuple: StreamTuple, mut deliver: impl FnMut(StreamTuple)) -> bool {
        // Too late: would have to be delivered before something already
        // released.
        if tuple.ts < self.last_released
            || (self.max_seen != Timestamp::NEG_INFINITY
                && tuple.ts < self.max_seen.saturating_sub(self.max_lateness))
        {
            self.dropped_late += 1;
            return false;
        }
        if tuple.ts > self.max_seen {
            self.max_seen = tuple.ts;
        }
        self.heap.push(Reverse(Pending {
            ts: tuple.ts,
            seq: self.seq,
            tuple,
        }));
        self.seq += 1;

        let watermark = self.max_seen.saturating_sub(self.max_lateness);
        while let Some(Reverse(top)) = self.heap.peek() {
            if top.ts > watermark {
                break;
            }
            let Reverse(p) = self.heap.pop().expect("peeked");
            self.last_released = p.ts;
            deliver(p.tuple);
        }
        true
    }

    /// Releases everything still buffered (stream end), in order.
    pub fn flush(&mut self, mut deliver: impl FnMut(StreamTuple)) {
        while let Some(Reverse(p)) = self.heap.pop() {
            self.last_released = p.ts;
            deliver(p.tuple);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srpq_common::{Label, VertexId};

    fn t(ts: i64) -> StreamTuple {
        StreamTuple::insert(Timestamp(ts), VertexId(0), VertexId(1), Label(0))
    }

    fn collect_push(buf: &mut ReorderBuffer, ts: i64, out: &mut Vec<i64>) -> bool {
        buf.push(t(ts), |tp| out.push(tp.ts.0))
    }

    #[test]
    fn reorders_within_lateness() {
        let mut buf = ReorderBuffer::new(5);
        let mut out = Vec::new();
        for ts in [3, 1, 2, 9, 7, 8, 15] {
            collect_push(&mut buf, ts, &mut out);
        }
        buf.flush(|tp| out.push(tp.ts.0));
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(out, sorted, "released out of order: {out:?}");
        assert_eq!(out.len(), 7);
        assert_eq!(buf.dropped_late(), 0);
    }

    #[test]
    fn drops_too_late() {
        let mut buf = ReorderBuffer::new(2);
        let mut out = Vec::new();
        assert!(collect_push(&mut buf, 10, &mut out));
        // 10 - 2 = 8 watermark: ts 5 is too late.
        assert!(!collect_push(&mut buf, 5, &mut out));
        assert_eq!(buf.dropped_late(), 1);
        // ts 9 is within lateness.
        assert!(collect_push(&mut buf, 9, &mut out));
    }

    #[test]
    fn zero_lateness_is_pass_through() {
        let mut buf = ReorderBuffer::new(0);
        let mut out = Vec::new();
        for ts in [1, 2, 3] {
            collect_push(&mut buf, ts, &mut out);
        }
        assert_eq!(out, vec![1, 2, 3]);
        assert!(buf.is_empty());
    }

    #[test]
    fn never_releases_below_last_released() {
        let mut buf = ReorderBuffer::new(3);
        let mut out = Vec::new();
        for ts in [5, 1, 9, 2, 6, 20] {
            collect_push(&mut buf, ts, &mut out);
        }
        buf.flush(|tp| out.push(tp.ts.0));
        for w in out.windows(2) {
            assert!(w[0] <= w[1], "inversion in {out:?}");
        }
    }

    #[test]
    fn stable_for_equal_timestamps() {
        let mut buf = ReorderBuffer::new(2);
        let mut out: Vec<(i64, u32)> = Vec::new();
        let mk = |ts: i64, v: u32| {
            StreamTuple::insert(Timestamp(ts), VertexId(v), VertexId(v + 1), Label(0))
        };
        for (ts, v) in [(1, 0), (1, 1), (1, 2), (10, 3)] {
            buf.push(mk(ts, v), |tp| out.push((tp.ts.0, tp.edge.src.0)));
        }
        buf.flush(|tp| out.push((tp.ts.0, tp.edge.src.0)));
        assert_eq!(out, vec![(1, 0), (1, 1), (1, 2), (10, 3)]);
    }

    #[test]
    fn feeds_engine_in_order() {
        use crate::engine::{Engine, PathSemantics};
        use crate::sink::CollectSink;
        use srpq_common::LabelInterner;
        use srpq_graph::WindowPolicy;

        let mut labels = LabelInterner::new();
        let a = labels.intern("a");
        let b = labels.intern("b");
        let mut engine = Engine::from_str(
            "a b",
            &mut labels,
            WindowPolicy::new(100, 10),
            PathSemantics::Arbitrary,
        )
        .unwrap();
        let mut sink = CollectSink::default();
        let mut buf = ReorderBuffer::new(5);
        // Arrive out of order: (b @3) before (a @1).
        let (x, y, z) = (VertexId(0), VertexId(1), VertexId(2));
        for tuple in [
            StreamTuple::insert(Timestamp(3), y, z, b),
            StreamTuple::insert(Timestamp(1), x, y, a),
            StreamTuple::insert(Timestamp(50), x, x, a),
        ] {
            buf.push(tuple, |tp| engine.process(tp, &mut sink));
        }
        buf.flush(|tp| engine.process(tp, &mut sink));
        assert!(engine.has_result(srpq_common::ResultPair::new(x, z)));
    }
}
