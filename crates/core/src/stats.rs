//! Engine statistics: Δ index size and operation counters.
//!
//! Figure 5 plots the number of spanning trees and the total number of
//! nodes in Δ per query; Figure 9 correlates Δ size with throughput;
//! Figure 6(b) reports time spent in window management. [`EngineStats`]
//! exposes all three.

/// A point-in-time measurement of the Δ tree index size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexSize {
    /// Number of spanning trees in Δ.
    pub trees: usize,
    /// Total number of nodes over all spanning trees (roots included).
    pub nodes: usize,
    /// Resident bytes of the struct-of-arrays node arenas (live slots
    /// plus not-yet-compacted dead slots; excludes occurrence maps).
    pub arena_bytes: usize,
}

/// Cumulative operation counters maintained by the engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Tuples processed (insertions + deletions), excluding discarded
    /// foreign-label tuples.
    pub tuples_processed: u64,
    /// Tuples discarded because their label is outside Σ_Q.
    pub tuples_discarded: u64,
    /// Explicit deletions processed.
    pub deletions_processed: u64,
    /// Calls to the tree-extension procedure (Insert / Extend) — the
    /// quantity the amortized analysis (Theorems 2 and 5) bounds.
    pub insert_calls: u64,
    /// Results pushed to the sink (after deduplication).
    pub results_emitted: u64,
    /// Invalidations pushed to the sink.
    pub results_invalidated: u64,
    /// Expiry passes executed.
    pub expiry_runs: u64,
    /// Nodes removed by expiry passes (not reconnected).
    pub nodes_expired: u64,
    /// Nanoseconds spent inside expiry passes (window management time,
    /// Figure 6b).
    pub expiry_nanos: u64,
    /// Conflicts detected (RSPQ only).
    pub conflicts_detected: u64,
    /// Nodes unmarked due to conflicts (RSPQ only).
    pub nodes_unmarked: u64,
    /// Tuples whose RSPQ traversal was aborted by the per-tuple extend
    /// budget (results possibly incomplete; see
    /// `EngineConfig::rspq_extend_budget`).
    pub budget_exhausted: u64,
    /// Tuples routed to this engine by a multi-query host (label
    /// routing hits; zero for engines driven directly). Deterministic —
    /// it equals the count of alphabet-matching tuples since
    /// registration.
    pub tuples_routed: u64,
    /// Nanoseconds a multi-query host spent inside this engine's
    /// evaluation calls (extension, expiry, deletions). Wall-clock:
    /// operators compare queries within one run (`srpq query list`) to
    /// find the hot one; never compare across runs or recoveries.
    pub eval_ns: u64,
    /// Bytes appended to the write-ahead log (maintained by
    /// `srpq_persist::Durable`; zero for undurable engines).
    pub wal_bytes: u64,
    /// Records appended to the write-ahead log.
    pub wal_appends: u64,
    /// `fsync` calls issued by the WAL (see `srpq_persist::SyncPolicy`).
    pub fsyncs: u64,
    /// Checkpoints written.
    pub checkpoints_written: u64,
    /// Wall-clock milliseconds the most recent recovery took (zero if
    /// this engine was never recovered).
    pub last_recovery_ms: u64,
    /// Live Δ nodes (gauge, refreshed after deletions and expiry).
    pub delta_nodes_live: u64,
    /// Total Δ arena slots, live + free-listed (gauge). The gap to
    /// [`EngineStats::delta_nodes_live`] is the fragmentation the
    /// per-slide compactor bounds.
    pub delta_capacity: u64,
    /// Arena compactions performed (per-tree, per-slide).
    pub compactions: u64,
}

/// A structural profile of one query's Δ spanning forest, computed on
/// demand for introspection (`ctl explain`). Walking every node is
/// O(|Δ|) — this never runs on the tuple path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaProfile {
    /// Number of spanning trees.
    pub trees: usize,
    /// Live nodes over all trees.
    pub nodes: usize,
    /// Arena slots (live + free-listed).
    pub slots: usize,
    /// Resident bytes of the node arenas.
    pub arena_bytes: usize,
    /// Live node count per DFA state, sorted by state id. States with
    /// no live nodes are omitted.
    pub nodes_per_state: Vec<(u32, u64)>,
    /// Node count by depth (root = 0); index `DEPTH_BUCKETS - 1`
    /// accumulates everything at or beyond that depth.
    pub depth_histogram: Vec<u64>,
}

impl DeltaProfile {
    /// Length of [`DeltaProfile::depth_histogram`]; the last bucket is
    /// an overflow bucket.
    pub const DEPTH_BUCKETS: usize = 33;

    /// The deepest non-empty depth bucket (0 when the forest is empty).
    pub fn max_depth(&self) -> usize {
        self.depth_histogram
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0)
    }
}

/// Cumulative per-stage time spent inside a multi-query host's batch
/// path, split the way the serving pipeline is staged: routing (label
/// lookup, slide grouping, shared-graph maintenance, fan-out
/// bookkeeping), evaluation (per-query Δ extension — includes expiry),
/// and expiry alone (the window-management slice of evaluation,
/// Fig. 6b). An observability layer records per-batch deltas of these
/// counters into stage histograms; the engines themselves stay free of
/// any metrics dependency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTotals {
    /// Batches processed through the batch path.
    pub batches: u64,
    /// Nanoseconds of batch time outside per-query evaluation calls.
    pub route_ns: u64,
    /// Nanoseconds inside per-query evaluation calls (expiry included).
    pub eval_ns: u64,
    /// Nanoseconds of evaluation spent in expiry passes.
    pub expiry_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let s = EngineStats::default();
        assert_eq!(s.tuples_processed, 0);
        assert_eq!(s.insert_calls, 0);
        assert_eq!(IndexSize::default().nodes, 0);
    }
}
